"""Asyncio serving front over a degradation ladder.

:class:`AsyncQueryServer` is the event-loop sibling of the thread-based
:class:`~repro.service.server.QueryServer`, reusing the same building
blocks — the :class:`~repro.service.admission.TokenBucket` rate limiter,
:class:`~repro.service.admission.AdmissionStats` accounting, per-tier
hedging driven by the shared
:class:`~repro.service.server.LatencyTracker`, shedding onto the
always-available tier — but with coroutine-shaped control flow:

* **await-based admission** — a bounded in-flight pool guarded by an
  ``asyncio.Semaphore``; a query that cannot get a slot within its
  bounded wait (or its own deadline) is shed, never queued unboundedly.
* **await-based bulkheads** — one ``asyncio.Semaphore`` per tier caps
  concurrent entries; a saturated bulkhead makes the ladder degrade past
  the tier rather than block the loop.
* **hedged tier attempts** — tier ``i+1`` fires when tier ``i`` has run
  for its observed latency percentile (floored at ``hedge_after``); the
  first contract-valid answer wins and the losers are cancelled through
  their :class:`~repro.service.deadline.CancellableDeadline`.

Tier searches themselves are synchronous index walks, so each attempt
runs in the default thread executor (``asyncio.to_thread``); the loop
only ever awaits. This is the natural front for the
:class:`~repro.parallel.executor.ProcessShardedEstimator`: the event loop
multiplexes many in-flight queries while the actual searching happens in
worker processes.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Mapping, Optional, Union

from ..errors import (
    AllTiersFailedError,
    DeadlineExceededError,
    InvalidParameterError,
    PatternError,
    ServerClosedError,
)
from ..service.admission import AdmissionStats, TokenBucket
from ..service.deadline import CancellableDeadline, Deadline
from ..service.outcome import QueryOutcome, ShedOutcome
from ..service.resilient import ResilientEstimator
from ..service.server import LatencyTracker, ServerStats, upgrade_shed_answer
from ..service.tiers import Tier, TierDeclined


class AsyncBulkhead:
    """Per-tier concurrency caps as asyncio semaphores (non-blocking)."""

    def __init__(
        self,
        limits: Optional[Mapping[str, int]] = None,
        *,
        default_limit: Optional[int] = None,
    ):
        limits = dict(limits or {})
        for name, limit in limits.items():
            if limit < 1:
                raise InvalidParameterError(
                    f"bulkhead limit for {name!r} must be >= 1, got {limit}"
                )
        if default_limit is not None and default_limit < 1:
            raise InvalidParameterError(
                f"default_limit must be >= 1 or None, got {default_limit}"
            )
        self._limits = limits
        self._default_limit = default_limit
        self._semaphores: dict = {}
        self.saturation: dict = {}

    def _semaphore(self, name: str) -> Optional[asyncio.Semaphore]:
        if name in self._semaphores:
            return self._semaphores[name]
        limit = self._limits.get(name, self._default_limit)
        if limit is None:
            return None
        semaphore = asyncio.Semaphore(limit)
        self._semaphores[name] = semaphore
        return semaphore

    async def acquire(self, tier: Tier, wait: float = 0.0) -> bool:
        """Await a slot for at most ``wait`` seconds; count saturations.

        With ``wait = 0`` this never suspends: a free semaphore's
        ``acquire()`` completes synchronously, and a locked one is
        reported as saturated immediately — the ladder degrades past the
        tier instead of piling tasks up behind it.
        """
        semaphore = self._semaphore(tier.name)
        if semaphore is None:
            return True
        if not semaphore.locked():
            await semaphore.acquire()
            return True
        if wait > 0:
            try:
                await asyncio.wait_for(semaphore.acquire(), wait)
                return True
            except asyncio.TimeoutError:
                pass
        self.saturation[tier.name] = self.saturation.get(tier.name, 0) + 1
        return False

    def release(self, tier: Tier) -> None:
        semaphore = self._semaphore(tier.name)
        if semaphore is not None:
            semaphore.release()


class AsyncQueryServer:
    """Coroutine-native serving front over a degradation ladder.

    Mirrors the :class:`~repro.service.server.QueryServer` contract:
    :meth:`query` returns a :class:`~repro.service.outcome.QueryOutcome`
    when the ladder ran, or a :class:`~repro.service.outcome.ShedOutcome`
    when admission answered from the always-available tier instead.
    ``query`` may be awaited from any number of tasks concurrently.
    """

    def __init__(
        self,
        service: ResilientEstimator,
        *,
        max_concurrent: int = 8,
        max_waiting: int = 16,
        max_wait: float = 0.05,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        bulkhead_limits: Optional[Mapping[str, int]] = None,
        bulkhead_default: Optional[int] = None,
        bulkhead_wait: float = 0.0,
        hedge_after: Optional[float] = None,
        hedge_percentile: float = 95.0,
    ):
        if max_concurrent < 1:
            raise InvalidParameterError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_waiting < 0:
            raise InvalidParameterError(
                f"max_waiting must be >= 0, got {max_waiting}"
            )
        if max_wait < 0:
            raise InvalidParameterError(f"max_wait must be >= 0, got {max_wait}")
        if hedge_after is not None and hedge_after <= 0:
            raise InvalidParameterError(
                f"hedge_after must be > 0 or None, got {hedge_after}"
            )
        self._service = service
        self._shed_tiers = [
            tier for tier in service.tiers if tier.always_available
        ]
        if not self._shed_tiers:
            raise InvalidParameterError(
                "AsyncQueryServer needs a ladder with an always-available "
                "tier to shed load onto"
            )
        self._hot_rungs = [
            tier for tier in service.tiers if hasattr(tier, "shed_lookup")
        ]
        self._bucket = (
            TokenBucket(rate, burst if burst is not None else max(1.0, rate))
            if rate is not None
            else None
        )
        self._max_concurrent = max_concurrent
        self._max_waiting = max_waiting
        self._max_wait = max_wait
        self._inflight_sem = asyncio.Semaphore(max_concurrent)
        self._inflight = 0
        self._waiting = 0
        if bulkhead_wait < 0:
            raise InvalidParameterError(
                f"bulkhead_wait must be >= 0, got {bulkhead_wait}"
            )
        self._bulkhead = AsyncBulkhead(
            bulkhead_limits, default_limit=bulkhead_default
        )
        self._bulkhead_wait = bulkhead_wait
        self._hedge_after = hedge_after
        self._hedge_percentile = hedge_percentile
        self._latency = LatencyTracker()
        self._admission_stats = AdmissionStats()
        self._served = 0
        self._shed = 0
        self._hedges_fired = 0
        self._hedge_wins = 0
        self._draining = False
        self._closed = False
        self._idle = asyncio.Event()
        self._idle.set()

    # -- lifecycle ------------------------------------------------------------

    @property
    def service(self) -> ResilientEstimator:
        return self._service

    async def drain(self, timeout: Optional[float] = 5.0) -> bool:
        """Shed new arrivals; wait for in-flight queries to finish."""
        self._draining = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def close(self, *, drain: bool = True,
                    timeout: Optional[float] = 5.0) -> None:
        """Drain (optionally) and refuse further queries."""
        if drain:
            await self.drain(timeout)
        else:
            self._draining = True
        self._closed = True

    async def __aenter__(self) -> "AsyncQueryServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- statistics -----------------------------------------------------------

    def stats(self) -> ServerStats:
        """Snapshot, in the same shape the thread server reports."""
        return ServerStats(
            admission=self._admission_stats.copy(),
            inflight=self._inflight,
            bulkhead_saturation=dict(self._bulkhead.saturation),
            hedges_fired=self._hedges_fired,
            hedge_wins=self._hedge_wins,
            served=self._served,
            shed=self._shed,
            watchdog_rounds=0,
            watchdog_events=0,
        )

    # -- admission ------------------------------------------------------------

    async def _admit(self, budget: Deadline) -> Optional[str]:
        """``None`` on admission (pair with :meth:`_release`), else the
        shed reason — the same reasons the sync controller reports."""
        if self._draining:
            self._admission_stats.drained += 1
            return "draining"
        if self._bucket is not None and not self._bucket.try_acquire():
            self._admission_stats.rate_limited += 1
            return "rate limited"
        if self._inflight_sem.locked():
            if self._waiting >= self._max_waiting:
                self._admission_stats.queue_full += 1
                return "admission queue full"
            wait = min(self._max_wait, budget.remaining())
            if wait <= 0:
                self._admission_stats.queue_full += 1
                return "admission queue full"
            self._waiting += 1
            try:
                await asyncio.wait_for(self._inflight_sem.acquire(), wait)
            except asyncio.TimeoutError:
                self._admission_stats.queue_timeout += 1
                return "admission queue timeout"
            finally:
                self._waiting -= 1
        else:
            await self._inflight_sem.acquire()
        if self._draining:
            self._inflight_sem.release()
            self._admission_stats.drained += 1
            return "draining"
        self._inflight += 1
        self._idle.clear()
        self._admission_stats.admitted += 1
        return None

    def _release(self) -> None:
        self._inflight -= 1
        self._inflight_sem.release()
        if self._inflight == 0:
            self._idle.set()

    # -- serving --------------------------------------------------------------

    async def query(
        self,
        pattern: str,
        *,
        deadline: Union[Deadline, float, None] = None,
    ) -> Union[QueryOutcome, ShedOutcome]:
        """Serve one pattern; never blocks the loop past bounded awaits."""
        if self._closed:
            raise ServerClosedError("AsyncQueryServer is closed")
        if not isinstance(pattern, str) or not pattern:
            raise PatternError("pattern must be a non-empty string")
        started = time.monotonic()
        if isinstance(deadline, Deadline):
            budget = deadline
        elif deadline is not None:
            budget = Deadline(deadline)
        else:
            budget = Deadline(self._service._deadline_seconds)
        reason = await self._admit(budget)
        if reason is not None:
            return await self._shed_answer(pattern, reason, started)
        try:
            outcome = await self._query_hedged(pattern, budget, started)
            self._served += 1
            return outcome
        finally:
            self._release()

    async def query_many(
        self, patterns: List[str]
    ) -> List[Union[QueryOutcome, ShedOutcome]]:
        """Serve a batch concurrently (each under its own admission slot)."""
        return list(
            await asyncio.gather(*(self.query(p) for p in patterns))
        )

    async def _shed_answer(
        self, pattern: str, reason: str, started: float
    ) -> ShedOutcome:
        tier = self._shed_tiers[0]
        count, model, threshold, _reliable = await asyncio.to_thread(
            tier.answer, pattern, None
        )
        name = tier.name
        upgraded = False
        if self._hot_rungs:
            count, model, threshold, name, upgraded = await asyncio.to_thread(
                upgrade_shed_answer,
                self._hot_rungs, pattern, count, model, threshold, name,
            )
        self._shed += 1
        return ShedOutcome(
            pattern=pattern,
            count=count,
            tier=name,
            error_model=model,
            threshold=threshold,
            reason=reason,
            elapsed=time.monotonic() - started,
            upgraded=upgraded,
        )

    # -- hedged ladder walk ---------------------------------------------------

    def _hedge_delay(self, tier: Tier) -> Optional[float]:
        if self._hedge_after is None:
            return None
        observed = self._latency.percentile(tier.name, self._hedge_percentile)
        if observed is None:
            return self._hedge_after
        return max(self._hedge_after, observed)

    async def _attempt(
        self, tier: Tier, index: int, pattern: str,
        cancel: CancellableDeadline,
    ) -> tuple:
        """One tier attempt on the thread executor; returns a tagged tuple."""
        attempt_started = time.monotonic()
        guarded = not tier.always_available
        if guarded and not await self._bulkhead.acquire(
            tier, self._bulkhead_wait
        ):
            return ("skip", index, "skipped: bulkhead saturated", 0.0)
        try:
            effective = None if tier.always_available else cancel
            payload = await asyncio.to_thread(tier.answer, pattern, effective)
        except TierDeclined:
            tier.breaker.record_success()
            return ("declined", index, "declined: cannot certify",
                    time.monotonic() - attempt_started)
        except DeadlineExceededError as exc:
            if cancel.cancelled:
                return ("cancelled", index, str(exc), 0.0)
            tier.breaker.record_failure()
            return ("deadline", index, str(exc),
                    time.monotonic() - attempt_started)
        except Exception as exc:  # noqa: BLE001 - attempt boundary
            tier.breaker.record_failure()
            return ("fail", index, f"{type(exc).__name__}: {exc}",
                    time.monotonic() - attempt_started)
        else:
            elapsed = time.monotonic() - attempt_started
            tier.breaker.record_success()
            self._latency.record(tier.name, elapsed)
            return ("ok", index, payload, elapsed)
        finally:
            if guarded:
                self._bulkhead.release(tier)

    async def _query_hedged(
        self, pattern: str, budget: Deadline, started: float
    ) -> QueryOutcome:
        """Ladder walk with speculative next-tier launches.

        Without hedging (``hedge_after=None``) tiers run strictly in
        sequence (launch the next only after the current one fails or
        declines) — the classic ladder, just awaitable. With hedging, a
        slow tier's successor fires after the observed latency percentile.
        """
        tiers = self._service.tiers
        cancels: List[CancellableDeadline] = []
        failures: List[tuple] = []
        tasks: dict = {}
        launched = 0
        next_index = 0

        def try_launch() -> bool:
            nonlocal launched, next_index
            while next_index < len(tiers):
                index = next_index
                next_index += 1
                tier = tiers[index]
                if tier.quarantined:
                    failures.append((
                        tier.name,
                        f"skipped: quarantined ({tier.quarantine_reason})",
                    ))
                    continue
                if not tier.breaker.allow():
                    failures.append((
                        tier.name,
                        f"skipped: circuit {tier.breaker.state.value}",
                    ))
                    continue
                cancel = CancellableDeadline.from_deadline(budget)
                cancels.append(cancel)
                task = asyncio.ensure_future(
                    self._attempt(tier, index, pattern, cancel)
                )
                tasks[task] = index
                launched += 1
                return True
            return False

        try_launch()
        winner = None
        try:
            while tasks or next_index < len(tiers):
                if not tasks:
                    if not try_launch():
                        break
                    continue
                timeout = None
                if next_index < len(tiers):
                    timeout = self._hedge_delay(tiers[next_index - 1])
                done, _ = await asyncio.wait(
                    set(tasks), timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # Hedge timer fired: current tier is slow, launch next.
                    if try_launch():
                        self._hedges_fired += 1
                    continue
                for task in done:
                    tasks.pop(task)
                    kind, index, payload, elapsed = task.result()
                    if kind == "ok" and winner is None:
                        winner = (index, payload)
                    elif kind != "cancelled":
                        failures.append((tiers[index].name, str(payload)))
                if winner is not None:
                    break
                if not tasks:
                    try_launch()
        finally:
            for cancel in cancels:
                cancel.cancel()
            for task in tasks:
                # Let losers finish on the executor; their next deadline
                # check aborts. Don't cancel the asyncio task mid-thread.
                task.add_done_callback(lambda t: t.exception())
        if winner is None:
            raise AllTiersFailedError(pattern, failures)
        index, payload = winner
        count, model, threshold, reliable = payload
        if index > 0:
            self._hedge_wins += 1
        return QueryOutcome(
            pattern=pattern,
            count=count,
            tier=tiers[index].name,
            tier_index=index,
            error_model=model,
            threshold=threshold,
            reliable=reliable,
            elapsed=time.monotonic() - started,
            attempts=launched,
            failures=tuple(failures),
            engine=None,
            hedged=launched > 1,
        )

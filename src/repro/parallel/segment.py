"""Checksummed, mmap-aligned index segments.

A **segment** is one contiguous byte blob holding everything a worker
process needs to serve one shard: a JSON header describing the structure
tree (via :meth:`repro.bits.storage.StorageBundle.header`) plus a
**relocation table** mapping every flat array (dotted path) to its byte
offset, and the raw array payloads, each padded to an 8-byte boundary so
a mapped reader can view ``uint64`` words in place.

Layout (all integers big-endian, mirroring the ``io.py`` framings)::

    REPROSEG | version:2 | header_len:8 | sha256(header):32 | pad:6
    | header JSON (utf-8) | zero pad to 8 | array payloads (8-aligned)

The fixed part is 56 bytes — a multiple of 8, like the v3 artifact
framing — so every relocation offset measured from the start of the blob
is also 8-aligned. The header digest covers the JSON bytes; the header
itself carries ``payload_digest`` over the payload region, so
:meth:`Segment.parse` with ``verify=True`` detects any flipped bit before
a worker ever dereferences a view.

Attaching never copies: :meth:`Segment.bundle` materialises read-only
``np.frombuffer`` views into the caller's buffer (shared memory, an mmap,
or plain bytes), and :meth:`Segment.attach` hands the bundle to the
structure registry. Multiple processes parsing the same shared-memory
block therefore serve the same physical bytes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import IndexCorruptedError, InvalidParameterError
from ..io import atomic_write_bytes
from ..bits.storage import StorageBundle, attach_structure

# Importing the family modules populates the structure registry, so a
# freshly spawned worker can attach any index kind a segment may hold.
from ..core import approx as _approx  # noqa: F401
from ..core import approx_ef as _approx_ef  # noqa: F401
from ..core import combined as _combined  # noqa: F401
from ..core import cpst as _cpst  # noqa: F401
from ..baselines import fm as _fm  # noqa: F401

SEGMENT_MAGIC = b"REPROSEG"
SEGMENT_VERSION = 1
_FIXED_HEADER = len(SEGMENT_MAGIC) + 2 + 8 + 32 + 6  # = 56, a multiple of 8
ALIGNMENT = 8


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


class SegmentWriter:
    """Serialise exported structures into one aligned, checksummed blob.

    ``add(key, obj)`` accepts anything implementing the storage protocol
    (or a ready :class:`StorageBundle`); ``meta`` carries free-form
    JSON-safe annotations (shard name, index kind, threshold, ...).
    """

    def __init__(self, name: str, meta: Optional[Dict[str, Any]] = None):
        self.name = name
        self.meta: Dict[str, Any] = dict(meta or {})
        self._bundles: Dict[str, StorageBundle] = {}

    def add(self, key: str, obj: Any) -> None:
        """Add one structure (or prepared bundle) under ``key``."""
        if "." in key or ":" in key:
            raise InvalidParameterError(
                f"segment keys must not contain '.' or ':', got {key!r}"
            )
        if key in self._bundles:
            raise InvalidParameterError(f"duplicate segment key {key!r}")
        if isinstance(obj, StorageBundle):
            self._bundles[key] = obj
            return
        export = getattr(obj, "export_storage", None)
        if export is None:
            raise InvalidParameterError(
                f"{type(obj).__name__} does not implement the buffer-backed "
                "storage protocol (no export_storage)"
            )
        self._bundles[key] = export()

    def to_bytes(self) -> bytes:
        """Serialise: header JSON + relocation table + aligned payloads."""
        if not self._bundles:
            raise InvalidParameterError("segment has no structures")
        relocation: List[Dict[str, Any]] = []
        chunks: List[bytes] = []
        cursor = 0  # relative to payload region start
        for key, bundle in self._bundles.items():
            for path, arr in bundle.walk_arrays(prefix=f"{key}:"):
                data = np.ascontiguousarray(arr).tobytes()
                relocation.append({
                    "name": path,
                    "dtype": str(arr.dtype),
                    "shape": list(arr.shape),
                    "offset": cursor,
                    "nbytes": len(data),
                })
                chunks.append(data)
                pad = _align(len(data)) - len(data)
                if pad:
                    chunks.append(bytes(pad))
                cursor += _align(len(data))
        payload = b"".join(chunks)
        header = {
            "format": SEGMENT_VERSION,
            "name": self.name,
            "meta": self.meta,
            "bundles": {
                key: bundle.header() for key, bundle in self._bundles.items()
            },
            "relocation": relocation,
            "payload_size": len(payload),
            "payload_digest": hashlib.sha256(payload).hexdigest(),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        head = (
            SEGMENT_MAGIC
            + SEGMENT_VERSION.to_bytes(2, "big")
            + len(header_bytes).to_bytes(8, "big")
            + hashlib.sha256(header_bytes).digest()
            + bytes(6)
            + header_bytes
        )
        head += bytes(_align(len(head)) - len(head))
        return head + payload

    def write(self, path: str | Path) -> Path:
        """Atomically persist the segment to ``path``."""
        return atomic_write_bytes(path, self.to_bytes())


class Segment:
    """A parsed segment: header + zero-copy views over the source buffer.

    The buffer may be ``bytes``, a ``memoryview`` (e.g.
    ``SharedMemory.buf``) or an ``mmap``; it must stay alive as long as
    any attached structure does. All views are marked read-only, so an
    attached structure can never scribble on the shared bytes.
    """

    def __init__(
        self,
        header: Dict[str, Any],
        buffer: Any,
        payload_start: int,
    ):
        self.header = header
        self.name = header.get("name", "")
        self.meta: Dict[str, Any] = header.get("meta", {})
        self._buffer = buffer
        self._payload_start = payload_start
        self._relocation: Dict[str, Dict[str, Any]] = {
            entry["name"]: entry for entry in header["relocation"]
        }

    @classmethod
    def parse(cls, buffer: Any, *, verify: bool = True) -> "Segment":
        """Parse a segment blob; ``verify`` checks both digests."""
        view = memoryview(buffer)
        if len(view) < _FIXED_HEADER:
            raise IndexCorruptedError("segment shorter than its fixed header")
        if bytes(view[: len(SEGMENT_MAGIC)]) != SEGMENT_MAGIC:
            raise IndexCorruptedError(
                f"not a repro segment (bad magic "
                f"{bytes(view[:len(SEGMENT_MAGIC)])!r})"
            )
        version = int.from_bytes(view[8:10], "big")
        if version != SEGMENT_VERSION:
            raise IndexCorruptedError(f"unsupported segment version {version}")
        header_len = int.from_bytes(view[10:18], "big")
        digest = bytes(view[18:50])
        if bytes(view[50:_FIXED_HEADER]) != bytes(_FIXED_HEADER - 50):
            raise IndexCorruptedError(
                "segment fixed-header padding is not zero"
            )
        header_start = _FIXED_HEADER
        header_end = header_start + header_len
        if header_end > len(view):
            raise IndexCorruptedError("truncated segment header")
        header_bytes = bytes(view[header_start:header_end])
        if verify and hashlib.sha256(header_bytes).digest() != digest:
            raise IndexCorruptedError("segment header failed its digest check")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise IndexCorruptedError(
                f"segment header is not valid JSON: {exc}"
            ) from None
        if not isinstance(header, dict):
            raise IndexCorruptedError("segment header is not a JSON object")
        try:
            payload_start = _align(header_end)
            payload_size = int(header["payload_size"])
            _ = header["relocation"]
            _ = header["bundles"]
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexCorruptedError(
                f"segment header is missing or mistypes a required field: "
                f"{exc}"
            ) from None
        if payload_size < 0:
            raise IndexCorruptedError("negative segment payload size")
        if payload_start + payload_size > len(view):
            raise IndexCorruptedError("truncated segment payload")
        if verify:
            actual = hashlib.sha256(
                view[payload_start:payload_start + payload_size]
            ).hexdigest()
            if actual != header["payload_digest"]:
                raise IndexCorruptedError(
                    "segment payload failed its digest check"
                )
        return cls(header, buffer, payload_start)

    @property
    def nbytes(self) -> int:
        """Total segment size (fixed header through end of payload)."""
        return self._payload_start + int(self.header["payload_size"])

    @property
    def keys(self) -> List[str]:
        """Structure keys stored in this segment."""
        return list(self.header["bundles"])

    def _resolve(self, path: str) -> np.ndarray:
        try:
            entry = self._relocation[path]
        except KeyError:
            raise IndexCorruptedError(
                f"segment has no relocation entry for array {path!r}"
            ) from None
        dtype = np.dtype(entry["dtype"])
        count = int(np.prod(entry["shape"])) if entry["shape"] else 1
        if count * dtype.itemsize != entry["nbytes"]:
            raise IndexCorruptedError(
                f"relocation entry {path!r} is inconsistent"
            )
        offset = self._payload_start + int(entry["offset"])
        arr = np.frombuffer(self._buffer, dtype=dtype, count=count, offset=offset)
        arr = arr.reshape(entry["shape"])
        arr.flags.writeable = False
        return arr

    def bundle(self, key: str) -> StorageBundle:
        """The bundle under ``key``, arrays resolved as read-only views."""
        try:
            header = self.header["bundles"][key]
        except KeyError:
            raise InvalidParameterError(
                f"segment {self.name!r} has no structure {key!r} "
                f"(have {self.keys})"
            ) from None
        return StorageBundle.from_header(header, self._resolve, prefix=f"{key}:")

    def attach(self, key: str) -> Any:
        """Reconstruct the structure under ``key`` as zero-copy views."""
        return attach_structure(self.bundle(key))


def write_estimator_segment(
    estimator: Any,
    name: str,
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Convenience: one estimator under key ``"index"`` with serving meta.

    The header meta records everything the parent process needs to merge
    per-shard answers without holding the estimator itself: the error
    model, the threshold, the text length, and the alphabet characters.
    """
    from ..core.interface import ErrorModel  # local: avoid cycle at import

    model = estimator.error_model
    full_meta = {
        "kind": type(estimator).__name__,
        "error_model": model.value if isinstance(model, ErrorModel) else str(model),
        "threshold": int(estimator.threshold),
        "text_length": int(estimator.text_length),
        "characters": estimator.alphabet.characters,
    }
    full_meta.update(meta or {})
    writer = SegmentWriter(name, meta=full_meta)
    writer.add("index", estimator)
    return writer.to_bytes()

"""Shared-memory segment pool: map each segment into RAM exactly once.

:class:`SegmentPool` owns a set of named ``multiprocessing.shared_memory``
blocks, one per published segment. The publishing process copies the
segment bytes in **once**; every worker process then attaches the block
by name and parses it in place — the payload arrays are served from the
same physical pages in every process, which is what makes the
:class:`~repro.parallel.executor.ProcessShardedEstimator`'s memory cost
``O(segments + k * private_state)`` instead of ``O(k * segments)``.

CPython quirk this module hides: until 3.13 every ``SharedMemory``
attachment registers itself with the ``resource_tracker`` — and spawned
workers *share* the parent's tracker, so a worker's attach/exit cycle
would first double-register and then deregister (and eventually unlink)
a block the parent still serves from. :func:`attach_shared_segment`
suppresses the registration at open time (the creating pool remains the
single owner responsible for ``unlink``).
"""

from __future__ import annotations

import atexit
import sys
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Tuple

from ..errors import InvalidParameterError
from .segment import Segment

#: Every live pool, so interpreter exit unlinks what a forgotten (or
#: exception-interrupted) owner left mapped. Weak references only: a
#: pool that was garbage collected already ran ``close`` via __del__.
_LIVE_POOLS: "weakref.WeakSet[SegmentPool]" = weakref.WeakSet()


@atexit.register
def _close_live_pools() -> None:  # pragma: no cover - exercised in a subprocess
    """Unlink every still-open pool's blocks at interpreter exit.

    Normal exits (including ``sys.exit`` from a failing test run) reach
    this even when the owner never called ``close``; the shared blocks
    must not outlive the process that published them. SIGKILL bypasses
    atexit, but then the multiprocessing resource tracker — a separate
    process — reclaims the (tracked, pool-created) blocks instead, so
    either way ``/dev/shm`` ends clean.
    """
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


def _open_untracked(shm_name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without registering it with the tracker."""
    if sys.version_info >= (3, 13):  # pragma: no cover - newer interpreters
        return shared_memory.SharedMemory(name=shm_name, track=False)  # type: ignore[call-arg]
    # Pre-3.13 there is no track= parameter: registration happens
    # unconditionally inside __init__, so blank it out for the call.
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def attach_shared_segment(
    shm_name: str, *, verify: bool = True
) -> Tuple[shared_memory.SharedMemory, Segment]:
    """Open an existing shared block and parse the segment inside it.

    The returned ``SharedMemory`` must outlive every structure attached
    from the segment (their arrays are views into its buffer). The caller
    attaches only — it must ``close()`` but never ``unlink()``.
    """
    shm = _open_untracked(shm_name)
    try:
        segment = Segment.parse(shm.buf, verify=verify)
    except Exception:
        shm.close()
        raise
    return shm, segment


class PublishedSegment:
    """One segment resident in a shared block (created by a pool)."""

    __slots__ = ("key", "shm_name", "nbytes", "meta", "_shm")

    def __init__(
        self,
        key: str,
        shm: shared_memory.SharedMemory,
        nbytes: int,
        meta: Dict[str, Any],
    ):
        self.key = key
        self._shm = shm
        self.shm_name = shm.name
        self.nbytes = nbytes
        self.meta = meta

    @property
    def bits(self) -> int:
        """Segment size in bits (for shared-space accounting)."""
        return self.nbytes * 8


class SegmentPool:
    """Create, hand out and eventually unlink shared segment blocks.

    The pool is the single *owner* of its blocks: :meth:`publish` creates
    and fills them, :meth:`close` closes the local mapping and unlinks the
    names. Workers use :func:`attach_shared_segment` and only ever close.
    """

    def __init__(self, name_prefix: str = "repro-seg"):
        self._prefix = name_prefix
        self._segments: Dict[str, PublishedSegment] = {}
        self._closed = False
        _LIVE_POOLS.add(self)

    def publish(self, key: str, blob: bytes) -> PublishedSegment:
        """Copy one serialised segment into a fresh shared block."""
        if self._closed:
            raise InvalidParameterError("SegmentPool is closed")
        if key in self._segments:
            raise InvalidParameterError(f"segment {key!r} already published")
        # Parse the bytes first: never publish a blob workers cannot load,
        # and capture the header meta for the parent's bookkeeping.
        parsed = Segment.parse(blob, verify=True)
        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
        published = PublishedSegment(key, shm, len(blob), dict(parsed.meta))
        self._segments[key] = published
        return published

    def get(self, key: str) -> PublishedSegment:
        try:
            return self._segments[key]
        except KeyError:
            raise InvalidParameterError(
                f"no published segment {key!r} (have {sorted(self._segments)})"
            ) from None

    @property
    def keys(self) -> List[str]:
        return list(self._segments)

    @property
    def total_bytes(self) -> int:
        """Bytes resident in shared blocks — once per host, not per worker."""
        return sum(seg.nbytes for seg in self._segments.values())

    def close(self) -> None:
        """Close and unlink every block. Idempotent."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        for seg in self._segments.values():
            try:
                seg._shm.close()
                seg._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __enter__(self) -> "SegmentPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

"""Empirical entropy of texts (paper Section 2).

``H0(T) = (1/n) * sum_c n_c * log2(n / n_c)`` lower-bounds any symbolwise
fixed-code compressor; ``Hk`` conditions each symbol on its k preceding
symbols: ``Hk(T) = (1/n) * sum_{w in Sigma^k} |w_T| * H0(w_T)`` where
``w_T`` collects the symbols following occurrences of ``w``.

Space reports use ``n*H0``/``n*Hk`` as the information-theoretic yardstick
the paper compares compressed indexes against.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict

import numpy as np

from ..errors import InvalidParameterError


def zeroth_order_entropy(text: str | np.ndarray) -> float:
    """``H0(T)`` in bits per symbol.

    >>> zeroth_order_entropy("abab")
    1.0
    >>> zeroth_order_entropy("aaaa")
    0.0
    """
    counts = _symbol_counts(text)
    n = sum(counts.values())
    if n == 0:
        raise InvalidParameterError("entropy of an empty text is undefined")
    return float(sum(c * np.log2(n / c) for c in counts.values()) / n)


def kth_order_entropy(text: str | np.ndarray, k: int) -> float:
    """``Hk(T)`` in bits per symbol (``k = 0`` matches :func:`zeroth_order_entropy`)."""
    if k < 0:
        raise InvalidParameterError(f"k must be >= 0, got {k}")
    if k == 0:
        return zeroth_order_entropy(text)
    seq = _as_tuple(text)
    n = len(seq)
    if n == 0:
        raise InvalidParameterError("entropy of an empty text is undefined")
    contexts: Dict[tuple, Counter] = defaultdict(Counter)
    for i in range(n - k):
        contexts[seq[i : i + k]][seq[i + k]] += 1
    total_bits = 0.0
    for followers in contexts.values():
        m = sum(followers.values())
        total_bits += sum(c * np.log2(m / c) for c in followers.values())
    return float(total_bits / n)


def entropy_profile(text: str | np.ndarray, max_k: int = 4) -> Dict[int, float]:
    """``{k: Hk(T)}`` for ``k = 0 .. max_k`` (monotone non-increasing)."""
    return {k: kth_order_entropy(text, k) for k in range(max_k + 1)}


def _symbol_counts(text: str | np.ndarray) -> Counter:
    if isinstance(text, str):
        return Counter(text)
    arr = np.asarray(text)
    values, counts = np.unique(arr, return_counts=True)
    return Counter(dict(zip(values.tolist(), counts.tolist())))


def _as_tuple(text: str | np.ndarray) -> tuple:
    if isinstance(text, str):
        return tuple(text)
    return tuple(np.asarray(text).tolist())

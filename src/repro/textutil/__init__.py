"""Text model: alphabets, sentinel-terminated texts, empirical entropy."""

from .alphabet import SENTINEL, Alphabet
from .entropy import entropy_profile, kth_order_entropy, zeroth_order_entropy
from .patterns import (
    absent_patterns,
    adversarial_patterns,
    mixed_workload,
    random_patterns,
    sample_from_text,
    zipf_workload,
)
from .text import ROW_SEPARATOR, Text

__all__ = [
    "SENTINEL",
    "Alphabet",
    "ROW_SEPARATOR",
    "Text",
    "entropy_profile",
    "kth_order_entropy",
    "zeroth_order_entropy",
    "absent_patterns",
    "adversarial_patterns",
    "mixed_workload",
    "random_patterns",
    "sample_from_text",
    "zipf_workload",
]

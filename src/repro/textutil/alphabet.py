"""Alphabet mapping between user-facing strings/bytes and integer symbols.

Library convention (shared by every index):

* symbol ``0`` is the sentinel ``$`` — strictly smaller than every text
  symbol, appearing exactly once, at the end of the indexed sequence;
* the characters of the text are mapped to dense ids ``1 .. sigma_chars``
  in lexicographic order, so integer order equals character order;
* ``sigma`` (as reported by indexes) counts the sentinel too.

Patterns are encoded with the same mapping; a pattern containing a
character absent from the text trivially has zero occurrences, which
:meth:`Alphabet.encode_pattern` signals by returning ``None``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..errors import AlphabetError

SENTINEL = 0
"""Integer id reserved for the terminator symbol ``$``."""


class Alphabet:
    """A bijection between text characters and dense integer ids >= 1."""

    __slots__ = ("_char_to_id", "_id_to_char", "_decode_table")

    def __init__(self, characters: Iterable[str]):
        distinct = sorted(set(characters))
        if any(len(ch) != 1 for ch in distinct):
            raise AlphabetError("alphabet entries must be single characters")
        self._char_to_id: Dict[str, int] = {
            ch: i + 1 for i, ch in enumerate(distinct)
        }
        self._id_to_char: Dict[int, str] = {
            i + 1: ch for i, ch in enumerate(distinct)
        }
        # Dense decode table indexed by symbol id (entry 0 = sentinel).
        self._decode_table = np.array(["$"] + distinct, dtype="<U1")

    @classmethod
    def from_text(cls, text: str) -> "Alphabet":
        """Alphabet of the distinct characters of ``text``."""
        return cls(set(text))

    # -- properties --------------------------------------------------------

    @property
    def sigma(self) -> int:
        """Alphabet size *including* the sentinel (ids ``0 .. sigma-1``)."""
        return len(self._char_to_id) + 1

    @property
    def characters(self) -> str:
        """The mapped characters in id order."""
        return "".join(self._id_to_char[i] for i in range(1, self.sigma))

    # -- encoding ------------------------------------------------------------

    def encode(self, text: str) -> np.ndarray:
        """Map a string to its symbol ids; raises on unmapped characters.

        >>> Alphabet("cab").encode("abc").tolist()
        [1, 2, 3]
        """
        try:
            return np.fromiter(
                (self._char_to_id[ch] for ch in text), dtype=np.int64, count=len(text)
            )
        except KeyError as exc:
            raise AlphabetError(f"character {exc.args[0]!r} not in alphabet") from exc

    def encode_pattern(self, pattern: str) -> Optional[np.ndarray]:
        """Map a pattern, or return ``None`` if any character is unmapped
        (such a pattern cannot occur in the text)."""
        ids = [self._char_to_id.get(ch) for ch in pattern]
        if any(i is None for i in ids):
            return None
        return np.asarray(ids, dtype=np.int64)

    def decode(self, symbols: np.ndarray | Iterable[int]) -> str:
        """Map symbol ids back to a string (sentinel renders as ``$``)."""
        arr = np.asarray(
            symbols if isinstance(symbols, np.ndarray) else list(symbols),
            dtype=np.int64,
        )
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.sigma):
            raise AlphabetError("symbol id outside alphabet")
        return "".join(self._decode_table[arr])

    def __contains__(self, ch: str) -> bool:
        return ch in self._char_to_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._char_to_id == other._char_to_id

    def __repr__(self) -> str:
        preview = self.characters[:16]
        suffix = "…" if self.sigma - 1 > 16 else ""
        return f"Alphabet(sigma={self.sigma}, chars={preview!r}{suffix})"

"""Query-workload generators shared by experiments, benches and examples.

The paper's Figure 9 workload is "patterns of different lengths randomly
extracted from the text"; validation additionally needs *absent* patterns
(to exercise the empty-range paths) and adversarial shapes (unary runs,
whole-text patterns, single characters). This module centralises them so
every harness samples identically and deterministically.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .text import Text


def sample_from_text(
    text: Text | str, length: int, count: int, seed: int = 0
) -> List[str]:
    """``count`` substrings of the given length, uniform over positions.

    Mirrors the paper's Figure 9 workload (duplicates allowed, as there).
    """
    raw = text.raw if isinstance(text, Text) else text
    if length < 1:
        raise InvalidParameterError(f"pattern length must be >= 1, got {length}")
    if length > len(raw):
        raise InvalidParameterError(
            f"pattern length {length} exceeds text length {len(raw)}"
        )
    rng = np.random.default_rng(seed)
    limit = len(raw) - length + 1
    return [raw[s : s + length] for s in rng.integers(0, limit, size=count)]


def random_patterns(
    alphabet_chars: str, length: int, count: int, seed: int = 0
) -> List[str]:
    """Uniform random strings over the given characters (mostly absent
    from any specific text once the length exceeds a few symbols)."""
    if not alphabet_chars:
        raise InvalidParameterError("need a non-empty character set")
    rng = np.random.default_rng(seed)
    chars = list(alphabet_chars)
    picks = rng.integers(0, len(chars), size=(count, length))
    return ["".join(chars[i] for i in row) for row in picks]


def absent_patterns(
    text: Text | str, length: int, count: int, seed: int = 0, max_tries: int = 200
) -> List[str]:
    """Patterns of the given length verified to NOT occur in the text.

    Raises if the text is so saturated that absent strings of this length
    cannot be found (e.g. every bigram present and length = 2).
    """
    t = text if isinstance(text, Text) else Text(text)
    chars = t.alphabet.characters
    found: List[str] = []
    attempt = 0
    while len(found) < count:
        if attempt >= max_tries * count:
            raise InvalidParameterError(
                f"could not find {count} absent patterns of length {length}"
            )
        for candidate in random_patterns(chars, length, count, seed + attempt):
            if t.count_naive(candidate) == 0:
                found.append(candidate)
                if len(found) == count:
                    break
        attempt += 1
    return found


def adversarial_patterns(text: Text | str) -> List[str]:
    """Edge-case shapes every index must survive: single characters, the
    longest unary run, the full text, and one-past-the-end extensions."""
    raw = text.raw if isinstance(text, Text) else text
    patterns = [raw[0], raw[-1], raw, raw + raw[0]]
    best_char, best_run, run = raw[0], 1, 1
    for a, b in zip(raw, raw[1:]):
        run = run + 1 if a == b else 1
        if run > best_run:
            best_char, best_run = b, run
    patterns.append(best_char * best_run)
    patterns.append(best_char * (best_run + 1))
    return patterns


def zipf_workload(
    text: Text | str,
    num_queries: int = 500,
    distinct: int = 50,
    length_range: tuple[int, int] = (3, 12),
    exponent: float = 1.2,
    seed: int = 0,
) -> List[str]:
    """A query-log-like workload: ``num_queries`` draws over ``distinct``
    in-text patterns with Zipf(``exponent``) popularity.

    Mirrors how LIKE predicates arrive in production: a few hot patterns
    dominate, with a long tail — the regime batch counters and caches are
    evaluated on.
    """
    raw = text.raw if isinstance(text, Text) else text
    if distinct < 1 or num_queries < 1:
        raise InvalidParameterError("need distinct >= 1 and num_queries >= 1")
    lo, hi = length_range
    if not 1 <= lo <= hi <= len(raw):
        raise InvalidParameterError(f"bad length range {length_range}")
    rng = np.random.default_rng(seed)
    universe: List[str] = []
    for i in range(distinct):
        length = int(rng.integers(lo, hi + 1))
        start = int(rng.integers(0, len(raw) - length + 1))
        universe.append(raw[start : start + length])
    weights = 1.0 / np.arange(1, distinct + 1) ** exponent
    weights /= weights.sum()
    picks = rng.choice(distinct, size=num_queries, p=weights)
    return [universe[i] for i in picks]


def mixed_workload(
    text: Text | str,
    lengths: Sequence[int] = (1, 2, 4, 8, 16),
    per_length: int = 20,
    seed: int = 0,
    include_absent: bool = True,
) -> List[str]:
    """A deduplicated mixture of in-text, random and adversarial patterns."""
    t = text if isinstance(text, Text) else Text(text)
    patterns: set[str] = set(adversarial_patterns(t))
    for length in lengths:
        if length > len(t):
            continue
        patterns.update(sample_from_text(t, length, per_length, seed))
        if include_absent and length >= 2:
            patterns.update(
                random_patterns(t.alphabet.characters, length, per_length // 2, seed)
            )
    return sorted(patterns)

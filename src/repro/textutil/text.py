"""The text model shared by every index.

:class:`Text` owns the alphabet mapping and the sentinel-terminated integer
sequence that the suffix-array / BWT machinery consumes. It also implements
the paper's reduction from *collections of strings* (rows of a database
column) to a single text:

    "given the content of strings R1, R2, … Rn we introduce a new special
    symbol ▷ and create the text T(R) = ▷R1▷R2▷…▷Rn▷. A substring query is
    then performed directly on T(R)."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import AlphabetError, InvalidParameterError
from .alphabet import SENTINEL, Alphabet

ROW_SEPARATOR = "\x1e"
"""Default ▷ symbol for row collections (ASCII record separator)."""


class Text:
    """A text prepared for indexing: alphabet + sentinel-terminated ids."""

    __slots__ = ("_alphabet", "_data", "_raw")

    def __init__(self, raw: str, alphabet: Alphabet | None = None):
        if not isinstance(raw, str):
            raise InvalidParameterError("Text requires a str (use from_bytes for bytes)")
        if len(raw) == 0:
            raise InvalidParameterError("cannot index an empty text")
        self._raw = raw
        self._alphabet = alphabet if alphabet is not None else Alphabet.from_text(raw)
        body = self._alphabet.encode(raw)
        self._data = np.concatenate(
            [body, np.array([SENTINEL], dtype=np.int64)]
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Text":
        """Index a byte string (mapped via latin-1, preserving byte order)."""
        return cls(raw.decode("latin-1"))

    @classmethod
    def from_rows(cls, rows: Sequence[str], separator: str = ROW_SEPARATOR) -> "Text":
        """Build ``T(R) = ▷R1▷R2▷…▷Rn▷`` from database rows.

        The separator must not occur inside any row. Counting a pattern on
        the resulting text counts its occurrences across all rows (patterns
        never straddle rows because the separator interrupts them).
        """
        if not rows:
            raise InvalidParameterError("row collection must be non-empty")
        if len(separator) != 1:
            raise InvalidParameterError("separator must be a single character")
        if any(separator in row for row in rows):
            raise AlphabetError(
                f"separator {separator!r} occurs inside a row; choose another"
            )
        return cls(separator + separator.join(rows) + separator)

    # -- accessors --------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """The character-to-id mapping of this text."""
        return self._alphabet

    @property
    def raw(self) -> str:
        """The original string (without the sentinel)."""
        return self._raw

    @property
    def data(self) -> np.ndarray:
        """Sentinel-terminated int64 symbol sequence (length ``len(raw)+1``)."""
        return self._data

    @property
    def sigma(self) -> int:
        """Alphabet size including the sentinel."""
        return self._alphabet.sigma

    def __len__(self) -> int:
        """Length of the *original* text (sentinel excluded)."""
        return len(self._raw)

    def count_naive(self, pattern: str) -> int:
        """Reference overlapping-occurrence count by direct scanning."""
        if not pattern:
            raise InvalidParameterError("pattern must be non-empty")
        count = 0
        start = self._raw.find(pattern)
        while start >= 0:
            count += 1
            start = self._raw.find(pattern, start + 1)
        return count

    def __repr__(self) -> str:
        return f"Text(n={len(self)}, sigma={self.sigma})"

"""Suffix-tree machinery: lcp-interval enumeration and pruned trees."""

from .intervals import count_internal_nodes, lcp_intervals, lcp_intervals_pruned
from .pruned import PrunedNode, PrunedSuffixTreeStructure
from .render import figure5_report, render_pst
from .view import SuffixTreeView, TreeNode

__all__ = [
    "count_internal_nodes",
    "lcp_intervals",
    "lcp_intervals_pruned",
    "PrunedNode",
    "PrunedSuffixTreeStructure",
    "figure5_report",
    "render_pst",
    "SuffixTreeView",
    "TreeNode",
]

"""ASCII rendering of pruned suffix trees (paper Figure 5).

The paper's Figure 5 illustrates the whole CPST construction on
``banabananab`` with threshold 2: each node with its preorder id and
correction factor, the inverse suffix links, the unary string ``G`` and
the link string ``S``. :func:`render_pst` reproduces that picture for any
text/threshold, and :func:`figure5_report` emits the companion strings —
used by the documentation example and the Figure-5 regression test.
"""

from __future__ import annotations

from typing import List

from ..textutil import Text
from .pruned import PrunedNode, PrunedSuffixTreeStructure


def render_pst(structure: PrunedSuffixTreeStructure, max_label: int = 12) -> str:
    """Draw the pruned tree: one line per node, indentation by depth.

    Format per node: ``<preorder id> [g=<correction>] '<edge label>'
    (count=<C(u)>, depth=<|pathlabel|>) SL-><target>``.
    """
    lines: List[str] = []

    def visit(node: PrunedNode, indent: int) -> None:
        label = structure.edge_label(node)
        if len(label) > max_label:
            label = label[: max_label - 1] + "…"
        suffix_link = (
            f" SL->{node.suffix_link}" if node.suffix_link is not None else ""
        )
        isl = (
            " ISL{" + ",".join(
                structure.text.alphabet.decode([c]) for c in node.isl_symbols
            ) + "}"
            if node.isl_symbols
            else ""
        )
        lines.append(
            "  " * indent
            + f"{node.preorder_id} [g={node.g}] {label!r} "
            + f"(count={node.count}, depth={node.depth})"
            + suffix_link
            + isl
        )
        for child in node.children:
            visit(structure.nodes[child], indent + 1)

    visit(structure.root, 0)
    return "\n".join(lines)


def unary_g_string(structure: PrunedSuffixTreeStructure) -> str:
    """The literal ``G = 0^g(0) 1 0^g(1) 1 …`` of paper Lemma 3."""
    return "".join("0" * node.g + "1" for node in structure.nodes)


def link_s_string(structure: PrunedSuffixTreeStructure) -> str:
    """The literal ``S = Enc(D_0)#Enc(D_1)#…`` of paper Section 5.3."""
    alphabet = structure.text.alphabet
    pieces = []
    for node in structure.nodes:
        pieces.append(
            "".join(alphabet.decode([c]) for c in node.isl_symbols) + "#"
        )
    return "".join(pieces)


def figure5_report(text: str = "banabananab", l: int = 2) -> str:
    """The full Figure-5 style report: tree + G + S."""
    structure = PrunedSuffixTreeStructure(Text(text), l)
    return "\n".join(
        [
            f"PST of {text!r} with threshold {l} "
            f"({structure.num_nodes} nodes):",
            render_pst(structure),
            "",
            f"G = {unary_g_string(structure)}",
            f"S = {link_s_string(structure)}",
        ]
    )

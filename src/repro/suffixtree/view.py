"""A navigable suffix-tree view over (text, SA, LCP) — no node objects.

The classical "suffix tree without the suffix tree": every node is an
lcp-interval ``(depth, lb, rb)`` materialised on demand, so the view costs
three arrays (text, SA, LCP + an RMQ table) regardless of how much of the
tree a traversal touches. This is the substrate interface the paper's
Section 5.1 reviews; the pruned structures use a specialised bulk
construction instead, and this view exists for interactive exploration,
debugging and downstream users of the ``sa`` package.

Supported operations: root, locus of a pattern (exact SA interval via
binary search on the text), children enumeration (RMQ on LCP), suffix
links, path labels, subtree counts, and depth-first traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..errors import InvalidParameterError, PatternError
from .. import sa as sa_mod
from ..sa import inverse_suffix_array, lcp_array
from ..sa.rmq import RangeMinimum
from ..textutil import Text


@dataclass(frozen=True)
class TreeNode:
    """One suffix-tree node as an lcp-interval (depth, inclusive range)."""

    depth: int
    lb: int
    rb: int

    @property
    def count(self) -> int:
        """Number of leaves (suffixes) below this node."""
        return self.rb - self.lb + 1

    @property
    def is_leaf(self) -> bool:
        return self.lb == self.rb


class SuffixTreeView:
    """Lazy suffix-tree navigation over one text."""

    def __init__(self, text: Text | str):
        if isinstance(text, str):
            text = Text(text)
        self._text = text
        self._data = text.data
        self._sa = sa_mod.suffix_array(self._data)
        self._lcp = lcp_array(self._data, self._sa)
        self._isa = inverse_suffix_array(self._sa)
        self._rmq = RangeMinimum(self._lcp)
        self._n = int(self._data.size)

    # -- basics ---------------------------------------------------------------

    @property
    def text(self) -> Text:
        return self._text

    @property
    def root(self) -> TreeNode:
        return TreeNode(0, 0, self._n - 1)

    def interval_depth(self, lb: int, rb: int) -> int:
        """String depth of the node with SA interval ``[lb, rb]``."""
        if lb == rb:
            return self._n - int(self._sa[lb])  # leaf: full suffix length
        return self._rmq.query(lb + 1, rb + 1)

    def path_label(self, node: TreeNode) -> str:
        """The node's path label as a string."""
        start = int(self._sa[node.lb])
        return self._text.alphabet.decode(
            self._data[start : start + node.depth]
        )

    # -- pattern navigation -----------------------------------------------------

    def locus(self, pattern: str) -> Optional[TreeNode]:
        """The highest node whose path label is prefixed by the pattern,
        or ``None`` when the pattern does not occur."""
        if not isinstance(pattern, str) or not pattern:
            raise PatternError("pattern must be a non-empty string")
        encoded = self._text.alphabet.encode_pattern(pattern)
        if encoded is None:
            return None
        lb = self._lower_bound(encoded)
        rb = self._upper_bound(encoded)
        if lb > rb:
            return None
        return TreeNode(self.interval_depth(lb, rb), lb, rb)

    def count(self, pattern: str) -> int:
        """Exact number of occurrences of the pattern."""
        node = self.locus(pattern)
        return 0 if node is None else node.count

    def _compare(self, suffix_start: int, pattern: np.ndarray) -> int:
        """-1/0/+1: suffix vs pattern as a prefix comparison."""
        n = self._n
        for offset, symbol in enumerate(pattern):
            position = suffix_start + offset
            if position >= n or self._data[position] < symbol:
                return -1
            if self._data[position] > symbol:
                return 1
        return 0

    def _lower_bound(self, pattern: np.ndarray) -> int:
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(int(self._sa[mid]), pattern) < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _upper_bound(self, pattern: np.ndarray) -> int:
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(int(self._sa[mid]), pattern) <= 0:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    # -- tree navigation ---------------------------------------------------------

    def children(self, node: TreeNode) -> List[TreeNode]:
        """Child nodes, in lexicographic (SA) order."""
        if node.is_leaf:
            return []
        boundaries = [node.lb]
        # Positions inside (lb, rb] where lcp equals the node depth split
        # the interval into child subintervals.
        position = node.lb + 1
        while position <= node.rb:
            # Find the next index in [position, rb] with lcp == node.depth.
            nxt = self._next_split(position, node.rb, node.depth)
            if nxt is None:
                break
            boundaries.append(nxt)
            position = nxt + 1
        boundaries.append(node.rb + 1)
        children = []
        for lo, hi in zip(boundaries, boundaries[1:]):
            rb = hi - 1
            children.append(TreeNode(self.interval_depth(lo, rb), lo, rb))
        return children

    def _next_split(self, lo: int, rb: int, depth: int) -> Optional[int]:
        """Smallest index in [lo, rb] with lcp value == depth (binary search
        over the RMQ: the minimum of any prefix range reveals whether a
        split lies inside it)."""
        if self._rmq.query(lo, rb + 1) > depth:
            return None
        hi = rb
        while lo < hi:
            mid = (lo + hi) // 2
            if self._rmq.query(lo, mid + 1) <= depth:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def child_by_symbol(self, node: TreeNode, char: str) -> Optional[TreeNode]:
        """The child whose edge starts with ``char``, if any."""
        if len(char) != 1:
            raise PatternError("char must be a single character")
        encoded = self._text.alphabet.encode_pattern(char)
        if encoded is None:
            return None
        target = int(encoded[0])
        for child in self.children(node):
            start = int(self._sa[child.lb]) + node.depth
            if start < self._n and int(self._data[start]) == target:
                return child
        return None

    def suffix_link(self, node: TreeNode) -> Optional[TreeNode]:
        """The node for ``path_label[1:]`` (None for the root)."""
        if node.depth == 0:
            return None
        start = int(self._sa[node.lb]) + 1
        if start >= self._n:
            return self.root  # the sentinel leaf links to the root
        q = int(self._isa[start])
        # Walk outward to the interval of depth node.depth - 1 containing q.
        lb, rb = q, q
        target = node.depth - 1
        while self.interval_depth(lb, rb) > target:
            lb, rb = self._parent_interval(lb, rb)
        return TreeNode(target, lb, rb) if self.interval_depth(lb, rb) == target else None

    def _parent_interval(self, lb: int, rb: int) -> tuple[int, int]:
        """The smallest enclosing lcp-interval."""
        depth = self.interval_depth(lb, rb)
        left = self._lcp[lb] if lb > 0 else -1
        right = self._lcp[rb + 1] if rb + 1 < self._n else -1
        parent_depth = max(int(left), int(right))
        if parent_depth < 0:
            return 0, self._n - 1
        new_lb, new_rb = lb, rb
        while new_lb > 0 and int(self._lcp[new_lb]) >= parent_depth:
            new_lb -= 1
        while new_rb + 1 < self._n and int(self._lcp[new_rb + 1]) >= parent_depth:
            new_rb += 1
        return new_lb, new_rb

    def matching_statistics(self, query: str) -> List[tuple[int, int]]:
        """Per position ``i`` of ``query``: ``(length, count)`` of the
        longest prefix of ``query[i:]`` occurring in the indexed text.

        The classic similarity primitive (plagiarism detection, MUM
        anchoring). Implementation: per-position longest-match by extending
        through locus lookups — O(|query| * match * log n); fine for the
        interactive uses this view targets.
        """
        if not isinstance(query, str) or not query:
            raise PatternError("query must be a non-empty string")
        stats: List[tuple[int, int]] = []
        previous_length = 0
        for i in range(len(query)):
            # Matching statistics shrink by at most 1 per step: start from
            # the previous match length minus one and extend.
            length = max(0, previous_length - 1)
            node = self.locus(query[i : i + length]) if length else self.root
            if node is None:
                length = 0
                node = self.root
            while i + length < len(query):
                candidate = self.locus(query[i : i + length + 1])
                if candidate is None:
                    break
                length += 1
                node = candidate
            count = node.count if length else 0
            stats.append((length, count))
            previous_length = length
        return stats

    def walk(self, max_depth: int | None = None) -> Iterator[TreeNode]:
        """Depth-first preorder traversal of internal+leaf nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.is_leaf:
                continue
            if max_depth is not None and node.depth >= max_depth:
                continue
            for child in reversed(self.children(node)):
                stack.append(child)

    def __repr__(self) -> str:
        return f"SuffixTreeView(n={len(self._text)})"

"""Suffix-tree internal nodes as lcp-intervals (Abouelhoda et al., 2004).

An explicit suffix tree over megabyte texts is prohibitive in Python; the
classical equivalence with *lcp-intervals* gives us exactly what the paper's
structures need: every internal node of the suffix tree of ``T$``
corresponds to one triple ``(depth, lb, rb)`` where ``[lb, rb]`` is the
(inclusive) suffix-array interval of suffixes prefixed by the node's path
label and ``depth`` is the string depth. Leaves are the singleton SA
positions and never survive pruning (the library requires ``l >= 2``).

:func:`lcp_intervals` enumerates all internal nodes with the standard stack
sweep over the LCP array; :func:`lcp_intervals_pruned` filters to intervals
of at least ``min_size`` suffixes during the sweep (the pruning step of the
paper's Section 5, fused into enumeration so the full node set is never
materialised).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..errors import InvalidParameterError

Interval = Tuple[int, int, int]
"""(string_depth, lb, rb) — inclusive suffix-array interval of one node."""


def lcp_intervals(lcp: np.ndarray) -> Iterator[Interval]:
    """Yield every internal suffix-tree node as ``(depth, lb, rb)``.

    The order of emission is by right boundary (post-order-ish); callers
    needing preorder should sort by ``(lb, -rb)``.
    """
    arr = np.asarray(lcp, dtype=np.int64)
    n = int(arr.size)
    if n == 0:
        return
    lcp_list = arr.tolist()
    # Stack of (depth, lb) of currently open intervals.
    stack: List[List[int]] = [[0, 0]]
    for i in range(1, n):
        lb = i - 1
        current = lcp_list[i]
        while stack[-1][0] > current:
            depth, left = stack.pop()
            yield depth, left, i - 1
            lb = left
        if stack[-1][0] < current:
            stack.append([current, lb])
    while stack:
        depth, left = stack.pop()
        yield depth, left, n - 1


def lcp_intervals_pruned(lcp: np.ndarray, min_size: int) -> List[Interval]:
    """Internal nodes with at least ``min_size`` suffixes, in preorder.

    Preorder here means sorted by ``(lb, -rb)``: since children subintervals
    are ordered by suffix-array position (= lexicographic order of branching
    symbols), this is exactly the preorder traversal the paper's Section 5.2
    numbering requires.
    """
    if min_size < 1:
        raise InvalidParameterError(f"min_size must be >= 1, got {min_size}")
    kept = [
        (depth, lb, rb)
        for depth, lb, rb in lcp_intervals(lcp)
        if rb - lb + 1 >= min_size
    ]
    kept.sort(key=lambda node: (node[1], -node[2]))
    return kept


def count_internal_nodes(lcp: np.ndarray) -> int:
    """Number of internal suffix-tree nodes (test/statistics helper)."""
    return sum(1 for _ in lcp_intervals(lcp))

"""The pruned suffix tree structure ``PST_l(T)`` (paper Sections 1 and 5).

``PST_l(T)`` keeps exactly the suffix-tree nodes whose subtree holds at
least ``l`` leaves. Because subtree leaf counts are monotone along root
paths, pruning removes a downward-closed set: every kept node's suffix-tree
parent is kept, so kept nodes inherit the original tree shape and edge
labels.

This module builds the *structure* shared by the classical ``PST`` baseline
and our compact ``CPST``:

* kept nodes in **preorder** with lexicographically ordered children
  (the numbering scheme of paper Section 5.2),
* subtree counts ``C(u)`` (leaves below ``u`` in the original tree),
* correction factors ``g(u) = C(u) - sum_kept_children C(v)``
  (paper Observation 1: ``g(u) < sigma * l``),
* suffix links ``SL(u)`` and the incoming inverse-suffix-link symbol sets
  ``D_u`` (paper Section 5.3),
* first symbols of path labels and the per-symbol node counts ``C[c]``
  (the CPST navigation array),
* edge-label statistics for the Figure 7/8 reproduction.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import InvalidParameterError

# Module-attribute access (not from-imports) so the build layer's
# SA-call-accounting tests observe every suffix sort, monkeypatched or not.
from .. import sa as sa_mod
from ..sa import inverse_suffix_array, lcp_array
from ..textutil import Text
from .intervals import lcp_intervals_pruned


@dataclass
class PrunedNode:
    """One kept node of ``PST_l(T)``, identified by its preorder id."""

    preorder_id: int
    depth: int  # string depth |pathlabel|
    lb: int  # inclusive suffix-array interval
    rb: int
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)
    g: int = 0  # correction factor
    first_symbol: Optional[int] = None  # pathlabel[0]; None for the root
    suffix_link: Optional[int] = None  # SL(u); None for the root
    isl_symbols: List[int] = field(default_factory=list)  # sorted D_u

    @property
    def count(self) -> int:
        """``C(u)``: leaves below this node in the *original* suffix tree."""
        return self.rb - self.lb + 1

    @property
    def is_leaf(self) -> bool:
        """Leaf of the *pruned* tree (all original children were pruned)."""
        return not self.children


class PrunedSuffixTreeStructure:
    """Kept-node tree of ``PST_l(T)`` with all derived annotations."""

    def __init__(
        self,
        text: Text | str,
        l: int,
        sa: np.ndarray | None = None,
        lcp: np.ndarray | None = None,
    ):
        if isinstance(text, str):
            text = Text(text)
        if l < 2:
            raise InvalidParameterError(
                f"pruning threshold l must be >= 2, got {l} "
                "(l=1 keeps every suffix-tree leaf: use the FM-index instead)"
            )
        self._text = text
        self._l = l
        data = text.data
        # Callers sweeping over thresholds may pass precomputed arrays to
        # amortise suffix sorting across builds.
        self._sa = (
            sa_mod.suffix_array(data) if sa is None else np.asarray(sa, dtype=np.int64)
        )
        self._lcp = (
            lcp_array(data, self._sa) if lcp is None else np.asarray(lcp, dtype=np.int64)
        )
        if self._sa.size != data.size or self._lcp.size != data.size:
            raise InvalidParameterError("precomputed sa/lcp length mismatch")
        self._isa = inverse_suffix_array(self._sa)
        self._data = data
        self._build_nodes()
        self._compute_corrections()
        self._compute_suffix_links()
        self._compute_symbol_counts()

    # -- construction --------------------------------------------------------

    def _build_nodes(self) -> None:
        intervals = lcp_intervals_pruned(self._lcp, self._l)
        if not intervals:
            # Text shorter than l: only the root survives (any kept interval
            # would imply the maximal root interval is kept too).
            intervals = [(0, 0, len(self._sa) - 1)]
        self.nodes: List[PrunedNode] = []
        sa = self._sa
        data = self._data
        stack: List[int] = []  # preorder ids of open ancestors
        for depth, lb, rb in intervals:
            node_id = len(self.nodes)
            node = PrunedNode(node_id, depth, lb, rb)
            while stack and not self._contains(self.nodes[stack[-1]], lb, rb):
                stack.pop()
            if stack:
                parent = self.nodes[stack[-1]]
                node.parent = parent.preorder_id
                parent.children.append(node_id)
            if depth > 0:
                node.first_symbol = int(data[sa[lb]])
            self.nodes.append(node)
            stack.append(node_id)

    @staticmethod
    def _contains(outer: PrunedNode, lb: int, rb: int) -> bool:
        return outer.lb <= lb and rb <= outer.rb

    def _compute_corrections(self) -> None:
        for node in self.nodes:
            kept = sum(self.nodes[ch].count for ch in node.children)
            node.g = node.count - kept

    def _compute_suffix_links(self) -> None:
        """Suffix links of kept nodes (always kept, paper Section 5.3).

        For node ``v`` with path label ``c·alpha`` the target is the unique
        node of depth ``|alpha|`` whose interval contains the suffix-array
        position of ``sa[v.lb] + 1``.
        """
        isa = self._isa
        sa = self._sa
        for node in self.nodes:
            if node.depth == 0:
                continue
            # sa[lb] is a suffix of length >= depth >= 1 starting with a real
            # symbol, so sa[lb] + 1 is always a valid suffix start.
            q = int(isa[int(sa[node.lb]) + 1])
            target = self._locate(q, node.depth - 1)
            node.suffix_link = target.preorder_id
            bisect.insort(target.isl_symbols, node.first_symbol)

    def _locate(self, q: int, depth: int) -> PrunedNode:
        """Descend from the root to the kept node of ``depth`` containing
        suffix-array position ``q`` (exists whenever called: see Lemma 7
        discussion — suffix-link targets of kept nodes are kept)."""
        node = self.nodes[0]
        while node.depth != depth:
            idx = bisect.bisect_right([self.nodes[ch].lb for ch in node.children], q) - 1
            if idx < 0:
                raise InvalidParameterError(
                    "internal error: suffix-link target missing from PST"
                )
            child = self.nodes[node.children[idx]]
            if not (child.lb <= q <= child.rb) or child.depth > depth:
                raise InvalidParameterError(
                    "internal error: suffix-link target missing from PST"
                )
            node = child
        return node

    def _compute_symbol_counts(self) -> None:
        """``C[c]`` = number of kept nodes whose path label starts with a
        symbol smaller than ``c`` (length sigma+1; excludes the root)."""
        sigma = self._text.sigma
        counts = np.zeros(sigma + 1, dtype=np.int64)
        for node in self.nodes:
            if node.first_symbol is not None:
                counts[node.first_symbol + 1] += 1
        self.symbol_counts = np.cumsum(counts)

    # -- accessors --------------------------------------------------------

    @property
    def text(self) -> Text:
        """The indexed text."""
        return self._text

    @property
    def threshold(self) -> int:
        """The pruning threshold ``l``."""
        return self._l

    @property
    def num_nodes(self) -> int:
        """``m``: number of kept nodes (including the root)."""
        return len(self.nodes)

    @property
    def root(self) -> PrunedNode:
        return self.nodes[0]

    def edge_length(self, node: PrunedNode) -> int:
        """Length of the edge label into ``node`` (0 for the root)."""
        if node.parent is None:
            return 0
        return node.depth - self.nodes[node.parent].depth

    def edge_label(self, node: PrunedNode) -> str:
        """The edge label into ``node`` as a string (PST baseline storage)."""
        if node.parent is None:
            return ""
        start = int(self._sa[node.lb]) + self.nodes[node.parent].depth
        symbols = self._data[start : start + self.edge_length(node)]
        return self._text.alphabet.decode(symbols)

    def path_label(self, node: PrunedNode) -> str:
        """The full path label of ``node``."""
        start = int(self._sa[node.lb])
        return self._text.alphabet.decode(self._data[start : start + node.depth])

    def total_label_length(self) -> int:
        """``sum_i |edge(i)|`` over all kept edges (Figure 7 statistic)."""
        return sum(self.edge_length(node) for node in self.nodes)

    def rightmost_leaf(self, node: PrunedNode) -> PrunedNode:
        """Rightmost *pruned-tree* leaf in the subtree of ``node``.

        By the preorder numbering this is simply the kept node with the
        largest preorder id in the subtree, i.e. the last node whose
        interval nests in ``node``'s.
        """
        current = node
        while current.children:
            current = self.nodes[current.children[-1]]
        return current

    def subtree_last_id(self, node: PrunedNode) -> int:
        """Largest preorder id in ``node``'s subtree (== rightmost leaf id)."""
        return self.rightmost_leaf(node).preorder_id

    def correction_factors(self) -> np.ndarray:
        """``g(u)`` in preorder (drives the CPST's unary string ``G``)."""
        return np.asarray([node.g for node in self.nodes], dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"PrunedSuffixTreeStructure(n={len(self._text)}, l={self._l}, "
            f"m={self.num_nodes})"
        )

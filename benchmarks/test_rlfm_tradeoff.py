"""RLFM vs FM: the run-length trade-off across corpus regimes.

RLFM stores O(R) entries for R BWT runs: it must beat the plain FM-index
on the repetitive corpora (dblp/sources) and lose on dna-like
near-incompressible data. Also times the run-length backward search.
"""

from __future__ import annotations

import pytest

from repro.baselines.rlfm import RLFMIndex


def test_rlfm_space_regimes(benchmark, contexts, save_report):
    def build_all():
        return {
            name: RLFMIndex.from_bwt(ctx.bwt, ctx.text.alphabet)
            for name, ctx in contexts.items()
        }

    indexes = benchmark.pedantic(build_all, rounds=1, iterations=1)
    lines = ["RLFM vs FM payload bits per corpus:"]
    ratios = {}
    for name, ctx in contexts.items():
        rlfm_bits = indexes[name].space_report().payload_bits
        fm_bits = ctx.build_fm().space_report().payload_bits
        runs = indexes[name].num_runs
        ratios[name] = rlfm_bits / fm_bits
        lines.append(
            f"  {name:<8} runs={runs:>7,}  RLFM={rlfm_bits:>9,}  "
            f"FM={fm_bits:>9,}  ratio={ratios[name]:.2f}"
        )
    report = "\n".join(lines)
    save_report("rlfm_tradeoff", report)
    print("\n" + report)

    # Run structure tracks repetitiveness: fewer runs per symbol on the
    # template-heavy corpora than on dna.
    assert ratios["sources"] < ratios["dna"]
    assert ratios["dblp"] < ratios["dna"]


def test_rlfm_query_batch(benchmark, contexts):
    ctx = contexts["sources"]
    index = RLFMIndex.from_bwt(ctx.bwt, ctx.text.alphabet)
    fm = ctx.build_fm()
    patterns = ctx.sample_patterns(6, 40)

    def run() -> int:
        return sum(index.count(p) for p in patterns)

    total = benchmark(run)
    assert total == sum(fm.count(p) for p in patterns)

"""X0: corpus characterisation — DESIGN.md substitution claims, asserted."""

from __future__ import annotations

from repro.experiments import corpora
from .conftest import BENCH_SEED, BENCH_SIZE


def test_corpus_characterisation(benchmark, save_report):
    rows = benchmark.pedantic(
        corpora.run,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = corpora.format_results(rows)
    save_report("corpora", report)
    print("\n" + report)

    checks = corpora.headline_checks(rows)
    failing = [name for name, ok in checks.items() if not ok]
    assert not failing, (failing, report)
    # Every corpus keeps m under the n/l Figure 7 envelope at l = 64.
    for row in rows:
        assert row.m_at_64 <= 2 * row.size / 64, row.dataset

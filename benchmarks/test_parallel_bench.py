"""Process-parallel serving benchmarks.

Compares the multiprocess shard executor (shared-memory segments, one
batched protocol round per shard) against the thread-pooled
:class:`~repro.shard.estimator.ShardedEstimator` serving the *same* shard
indexes, and persists the comparison as ``results/parallel_report.json``
for CI to upload.

Correctness assertions (identical merged intervals, zero-copy attach
telemetry) always run. The throughput floor — the process executor must
at least double the thread executor's batch throughput at 4 workers — is
asserted only when the host actually has >= 4 CPUs; pure-Python shard
searches cannot run in parallel on fewer cores, and wall-clock numbers on
a starved host are reporting-only.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.shard import ShardPlan, build_process_sharded, build_sharded
from repro.textutil import ROW_SEPARATOR, mixed_workload

THRESHOLD = 16
WORKERS = 4
DOCUMENTS = 12
CPUS = os.cpu_count() or 1


@pytest.fixture(scope="module")
def corpus(contexts):
    raw = contexts["english"].text.raw
    n = len(raw)
    docs = [
        (f"doc{i:02d}", raw[i * n // DOCUMENTS : (i + 1) * n // DOCUMENTS])
        for i in range(DOCUMENTS)
    ]
    plan = ShardPlan.for_documents(docs, WORKERS)
    patterns = [
        p
        for p in mixed_workload(raw, per_length=40, seed=2)
        if ROW_SEPARATOR not in p
    ]
    return plan, patterns


def test_parallel_report_artifact(corpus, save_report):
    """Thread vs process executor over identical shard indexes."""
    plan, patterns = corpus

    thread_estimator, build_report = build_sharded(
        plan, "cpst", THRESHOLD, max_workers=WORKERS
    )
    t0 = time.perf_counter()
    thread_answers = [thread_estimator.merged_count(p) for p in patterns]
    thread_wall = time.perf_counter() - t0

    process_estimator, process_build = build_process_sharded(
        plan, "cpst", THRESHOLD, max_workers=WORKERS
    )
    with process_estimator:
        process_estimator.merged_count_many(patterns[:5])  # warm workers
        t0 = time.perf_counter()
        process_answers = process_estimator.merged_count_many(patterns)
        process_wall = time.perf_counter() - t0
        telemetry = process_estimator.attach_telemetry()
        space = process_estimator.space_report()

    # Identical intervals: the acceptance criterion of the process plane.
    mismatches = [
        pattern
        for pattern, a, b in zip(patterns, thread_answers, process_answers)
        if (a.lo, a.hi, a.error_model) != (b.lo, b.hi, b.error_model)
    ]
    assert not mismatches, mismatches[:5]

    # Zero-copy attach: per-worker allocation is bookkeeping, not payload.
    for name, slot in telemetry.items():
        assert slot["attach_alloc_bytes"] < max(
            64_000, slot["segment_bytes"]
        ), name

    speedup = thread_wall / process_wall if process_wall else float("inf")
    report = {
        "corpus": "english",
        "patterns": len(patterns),
        "workers": WORKERS,
        "cpus": CPUS,
        "thread": {
            "wall_seconds": thread_wall,
            "qps": len(patterns) / thread_wall,
        },
        "process": {
            "wall_seconds": process_wall,
            "qps": len(patterns) / process_wall,
            "build_wall_seconds": process_build.wall_seconds,
            "segment_bytes": {
                name: slot["segment_bytes"] for name, slot in telemetry.items()
            },
            "attach_alloc_bytes": {
                name: slot["attach_alloc_bytes"]
                for name, slot in telemetry.items()
            },
            "shared_bits": space.shared_bits,
            "resident_per_worker_bits": space.resident_per_worker_bits,
        },
        "speedup": speedup,
        "intervals_identical": True,
        "speedup_asserted": CPUS >= WORKERS,
    }
    path = save_report("parallel_report", json.dumps(report, indent=2))
    path.with_suffix(".json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    if CPUS >= WORKERS:
        assert speedup >= 2.0, (
            f"process executor only {speedup:.2f}x the thread executor "
            f"({CPUS} CPUs, {WORKERS} workers)"
        )


def test_spawn_and_respawn_cost(corpus, benchmark):
    """Worker respawn reuses the shared segment: no re-export, no copy."""
    plan, _ = corpus
    process_estimator, _ = build_process_sharded(
        plan, "cpst", THRESHOLD, max_workers=WORKERS
    )
    with process_estimator:
        victim = process_estimator.shard_names[0]

        def respawn():
            process_estimator.respawn_shard(victim)
            return process_estimator.merged_count("the")

        merged = benchmark.pedantic(respawn, rounds=3, iterations=1)
        assert merged.count >= 0
        assert not process_estimator.degraded_shards

"""Benchmarks for the extension indexes (combined / multiplicative / rows /
RRR-compressed FM): build + query cost and their contracts at bench scale."""

from __future__ import annotations

import pytest

from repro import CombinedIndex, MultiplicativeIndex
from repro.core.rows import RowSelectivityIndex


@pytest.fixture(scope="module")
def english(contexts):
    return contexts["english"]


def test_combined_query_batch(benchmark, english):
    index = CombinedIndex(english.text, 32)
    patterns = english.sample_patterns(4, 30) + english.sample_patterns(10, 30)

    def run() -> int:
        return sum(index.count(p) for p in patterns)

    total = benchmark(run)
    assert total >= 0
    for pattern in patterns[:20]:
        true = english.text.count_naive(pattern)
        assert true <= index.count(pattern) <= true + 32 - 1


def test_multiplicative_query_batch(benchmark, english):
    index = MultiplicativeIndex(english.text, epsilon=0.5, cutoff=32)
    patterns = english.sample_patterns(3, 40)

    def run() -> int:
        return sum(index.count(p) for p in patterns)

    benchmark(run)
    for pattern in patterns[:20]:
        true = english.text.count_naive(pattern)
        if true >= 32:
            assert true <= index.count(pattern) <= 1.5 * true


def test_row_selectivity_build_and_query(benchmark):
    rows = [
        f"user {i % 37} viewed item {i % 101} from campaign {i % 7}"
        for i in range(1500)
    ]

    index = benchmark.pedantic(
        RowSelectivityIndex, args=(rows, 16), rounds=1, iterations=1
    )
    matched = index.count_rows_or_none("campaign 3")
    assert matched == sum(1 for row in rows if "campaign 3" in row)


def test_fm_rrr_space_tradeoff(benchmark, english):
    """RRR-compressed FM: smaller than the plain wavelet matrix variant."""
    build = lambda: english.build_fm("matrix-rrr")
    packed = benchmark.pedantic(build, rounds=1, iterations=1)
    plain = english.build_fm("matrix")
    assert packed.space_report().payload_bits < plain.space_report().payload_bits
    for pattern in english.sample_patterns(5, 10):
        assert packed.count(pattern) == plain.count(pattern)

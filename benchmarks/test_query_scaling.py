"""X2c: query-cost scaling sweeps.

Backward-search-based indexes (FM, APX, CPST) cost O(|P|) rank/select
probes per query, *independent of l*; the PST walk costs O(|P|) symbol
comparisons. These benches sweep pattern length and threshold to expose
both facts as timing series.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def english(contexts):
    return contexts["english"]


@pytest.mark.parametrize("length", [2, 8, 32])
def test_apx_time_vs_pattern_length(benchmark, english, length):
    index = english.build_apx(32)
    patterns = english.sample_patterns(length, 20)

    def run() -> int:
        return sum(index.count(p) for p in patterns)

    benchmark.extra_info["pattern_length"] = length
    benchmark(run)


@pytest.mark.parametrize("length", [2, 8, 32])
def test_cpst_time_vs_pattern_length(benchmark, english, length):
    index = english.build_cpst(32)
    patterns = english.sample_patterns(length, 20)

    def run() -> int:
        return sum(index.count(p) for p in patterns)

    benchmark.extra_info["pattern_length"] = length
    benchmark(run)


@pytest.mark.parametrize("l", [8, 64, 512])
def test_apx_time_vs_threshold(benchmark, english, l):
    index = english.build_apx(l)
    patterns = english.sample_patterns(8, 20)

    def run() -> int:
        return sum(index.count(p) for p in patterns)

    benchmark.extra_info["threshold"] = l
    benchmark(run)


@pytest.mark.parametrize("l", [8, 64, 512])
def test_cpst_time_vs_threshold(benchmark, english, l):
    index = english.build_cpst(l)
    patterns = english.sample_patterns(8, 20)

    def run() -> int:
        return sum(index.count(p) for p in patterns)

    benchmark.extra_info["threshold"] = l
    benchmark(run)

"""Figure 9 (MOL estimation error at matched space) — regeneration bench.

Regenerates the paper's application-level table: per corpus, pick PST and
CPST thresholds with similar sizes, estimate random in-text patterns of
lengths 6/8/10/12 with MOL over each, and report mean ± std absolute error
plus the CPST improvement factor.
"""

from __future__ import annotations

from repro.experiments import figure9
from .conftest import BENCH_SEED, BENCH_SIZE


def test_figure9_mol_comparison(benchmark, save_report):
    size = min(BENCH_SIZE, 30_000)
    rows = benchmark.pedantic(
        figure9.run,
        kwargs={"size": size, "seed": BENCH_SEED, "patterns_per_length": 60},
        rounds=1,
        iterations=1,
    )
    report = figure9.format_results(rows)
    save_report("figure9", report)
    print("\n" + report)

    checks = figure9.headline_checks(rows)
    assert checks["cpst_always_improves"], (
        "paper: CPST-backed MOL beats PST-backed MOL on every corpus"
    )
    assert checks["sizes_actually_matched"], "thresholds must yield similar sizes"

    by_dataset = {row.dataset: row for row in rows}
    # The improvement is largest on the label-heavy corpus (sources), where
    # equal space forces the PST threshold far higher (790x in the paper).
    other_best = max(
        row.improvement for name, row in by_dataset.items() if name != "sources"
    )
    assert by_dataset["sources"].improvement >= other_best, (
        "paper: sources shows the largest improvement factor"
    )
    # Matched-space CPST always affords an equal or lower threshold.
    assert all(row.cpst_l <= row.pst_l for row in rows)

"""X3e: measured payloads vs the Theorem 3 information floor.

Theorem 3: any index with additive error l needs Omega(n log(sigma)/l)
bits. Theorem 5 says the APX matches it up to constants when
log l = O(log sigma). The bench checks every measured payload sits above
the floor and that the optimality gap stays within a constant band across
thresholds (no asymptotic drift).
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments import ablation
from .conftest import BENCH_SEED, BENCH_SIZE


def test_optimality_gaps(benchmark, save_report):
    rows = benchmark.pedantic(
        ablation.run_bounds,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = ablation.format_bounds(rows)
    save_report("spacebounds", report)
    print("\n" + report)

    for row in rows:
        assert row.gap >= 1.0, "no structure may beat the information floor"
        assert row.gap <= 40.0, (row.dataset, row.index, row.l, row.gap)

    # Constant-band check per (dataset, index) across thresholds.
    bands = defaultdict(list)
    for row in rows:
        bands[(row.dataset, row.index)].append(row.gap)
    for key, gaps in bands.items():
        assert max(gaps) / min(gaps) <= 8.0, (key, gaps)

"""Serving daemon benchmarks: startup, flip latency, recovery time.

Measures the supervised serving plane end to end and persists the
telemetry as ``results/daemon_report.json`` for CI to upload:

* **startup** — wall-clock from corpus directory to a serving fleet
  (publish + spawn + attach for every segment);
* **query latency** — single-pattern and batched round trips through
  the worker fleet's merge path;
* **hot reload** — wall-clock of an ingest→publish→flip cycle, and how
  many queries a concurrent client got answered while the flips ran
  (availability during reload is the whole point of the design);
* **crash recovery** — wall-clock from SIGKILLing a worker to the
  monitor restoring exact (non-degraded) answers.

Assertions are on soundness, error-freedom and convergence — things
that cannot flake; the wall-clock numbers are reporting only.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.daemon import BackoffPolicy, Supervisor
from repro.live import LiveCorpus

THRESHOLD = 16
SHARDS = 2
DOCUMENTS = 12
RELOAD_CYCLES = 6
PROBES = ("the", "an", "ing", "ou")


@pytest.fixture(scope="module")
def documents(contexts):
    raw = contexts["english"].text.raw
    n = len(raw)
    return {
        f"doc{i:02d}": raw[i * n // DOCUMENTS : (i + 1) * n // DOCUMENTS]
        for i in range(DOCUMENTS)
    }


def test_daemon_report_artifact(documents, tmp_path_factory, save_report):
    base = tmp_path_factory.mktemp("daemon") / "corpus"
    corpus = LiveCorpus.create(base, l=THRESHOLD, shards=SHARDS)
    for name, body in documents.items():
        corpus.append(name, body)
    corpus.compact()

    # -- startup: directory -> serving fleet -------------------------------
    t0 = time.perf_counter()
    supervisor = Supervisor(
        corpus,
        owns_corpus=True,
        heartbeat_interval=0.1,
        backoff=BackoffPolicy(base=0.02, cap=0.2, max_failures=10),
    )
    supervisor.start()
    startup_wall = time.perf_counter() - t0
    try:
        workers = len(supervisor.status()["workers"])
        truth = {
            pattern: corpus.count_interval(pattern) for pattern in PROBES
        }
        for pattern in PROBES:
            assert supervisor.count_interval(pattern) == truth[pattern]

        # -- query latency --------------------------------------------------
        rounds = 30
        t0 = time.perf_counter()
        for _ in range(rounds):
            for pattern in PROBES:
                supervisor.merged_count(pattern)
        single_wall = time.perf_counter() - t0
        singles = rounds * len(PROBES)

        t0 = time.perf_counter()
        for _ in range(rounds):
            supervisor.merged_count_many(list(PROBES))
        batch_wall = time.perf_counter() - t0

        # -- hot reload under concurrent fire -------------------------------
        stop = threading.Event()
        served = []
        errors = []

        def hammer():
            i = 0
            while not stop.is_set():
                try:
                    answer = supervisor.merged_count(
                        PROBES[i % len(PROBES)]
                    )
                    served.append(answer.generation)
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))
                i += 1

        client = threading.Thread(target=hammer)
        client.start()
        reload_walls = []
        try:
            for cycle in range(RELOAD_CYCLES):
                corpus.append(
                    f"reload{cycle}", f"hot reload cycle body {cycle}"
                )
                t0 = time.perf_counter()
                supervisor.reload(compact=False)
                reload_walls.append(time.perf_counter() - t0)
        finally:
            stop.set()
            client.join(timeout=30.0)
        assert not errors, errors[:3]
        assert served, "client starved during hot reloads"
        assert len(set(served)) >= 2, "flips never became visible"

        # -- crash recovery: SIGKILL -> exact answers again -----------------
        os.kill(supervisor.worker_pid(0), signal.SIGKILL)
        t0 = time.perf_counter()
        deadline = t0 + 60.0
        while time.perf_counter() < deadline:
            if not supervisor.merged_count("the").degraded:
                break
        recovery_wall = time.perf_counter() - t0
        assert not supervisor.merged_count("the").degraded
        assert supervisor.stats["respawns"] >= 1
        stats = dict(supervisor.stats)
        generation = supervisor.generation.number
    finally:
        supervisor.close()

    payload = {
        "documents": DOCUMENTS,
        "shards": SHARDS,
        "threshold": THRESHOLD,
        "workers": workers,
        "startup": {"wall_seconds": round(startup_wall, 6)},
        "query": {
            "single_queries": singles,
            "single_wall_seconds": round(single_wall, 6),
            "single_ms_per_query": round(1000 * single_wall / singles, 3),
            "batch_rounds": rounds,
            "batch_wall_seconds": round(batch_wall, 6),
            "batch_ms_per_query": round(
                1000 * batch_wall / singles, 3
            ),
        },
        "reload": {
            "cycles": RELOAD_CYCLES,
            "wall_seconds": [round(w, 6) for w in reload_walls],
            "mean_wall_seconds": round(
                sum(reload_walls) / len(reload_walls), 6
            ),
            "queries_served_during_reloads": len(served),
            "generations_observed": len(set(served)),
            "query_errors": len(errors),
        },
        "recovery": {
            "sigkill_to_exact_seconds": round(recovery_wall, 6),
        },
        "final_generation": generation,
        "stats": stats,
    }
    path = save_report("daemon_report", json.dumps(payload, indent=2))
    # save_report appends .txt; mirror to the canonical .json name too.
    json_path = path.with_suffix(".json")
    json_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    assert json_path.exists()

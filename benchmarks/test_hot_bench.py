"""Hot-tier benchmark: Zipfian serving over the sharded fan-out plane.

Drives a seeded Zipf(s) query log (s ∈ {0.8, 1.2}) through a k-sharded
estimator twice — once bare (every query fans out to all shards and
merges), once with the hot store attached (verified heavy hitters
short-circuit the fan-out entirely) — and persists the comparison as
``results/hot_report.json`` for CI to upload. A monolithic-ladder run
rides along as reporting (its suffix-sharing memo already absorbs
repeats, so the hot tier's throughput win lives where each query costs
k searches plus a merge).

The acceptance floors from the issue are asserted at s = 1.2 over
``>= 10_000`` queries, *cold start included* (promotion happens inside
the measured window, exactly as it would in production):

- at least half of the log is answered by the hot store without
  touching the shard fan-out, and
- the hot-attached plane clears a 3x throughput multiple over the bare
  fan-out on the same log.

Soundness is re-checked inline: every merged answer must contain the
naive truth — a benchmark that got fast by lying fails here.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.interface import ErrorModel
from repro.hot import HotPatternTier
from repro.service import build_default_ladder
from repro.service.server import QueryServer
from repro.shard import ShardPlan, build_sharded

THRESHOLD = 16
SHARDS = 4
DOCUMENTS = 8
QUERIES = 10_000
DISTINCT = 64

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def corpus(contexts):
    raw = contexts["english"].text.raw
    n = len(raw)
    docs = [
        (f"doc{i:02d}", raw[i * n // DOCUMENTS : (i + 1) * n // DOCUMENTS])
        for i in range(DOCUMENTS)
    ]
    return contexts["english"], docs


def _truth(docs, pattern: str) -> int:
    return sum(
        sum(
            body.startswith(pattern, i)
            for i in range(len(body) - len(pattern) + 1)
        )
        for _, body in docs
    )


def _zipf_log(docs, exponent: float, seed: int = 7):
    """Zipf(s) log whose head is genuinely frequent substrings.

    Popular queries are popular because they match: the universe is
    ranked by true count, so the heavy ranks are patterns every shard
    holds — the regime the hot tier (and any production cache) serves.
    """
    rng = np.random.default_rng(seed)
    bodies = [body for _, body in docs]
    seen = {}
    while len(seen) < DISTINCT:
        body = bodies[int(rng.integers(0, len(bodies)))]
        length = int(rng.integers(3, 9))
        start = int(rng.integers(0, len(body) - length + 1))
        pattern = body[start : start + length]
        if pattern not in seen:
            seen[pattern] = _truth(docs, pattern)
    universe = sorted(seen, key=seen.get, reverse=True)
    weights = 1.0 / np.arange(1, DISTINCT + 1) ** exponent
    weights /= weights.sum()
    picks = rng.choice(DISTINCT, size=QUERIES, p=weights)
    return [universe[i] for i in picks]


def _drain_sharded(estimator, log):
    t0 = time.perf_counter()
    answers = [estimator.merged_count(pattern) for pattern in log]
    return time.perf_counter() - t0, answers


def _run_exponent(docs, estimator, ladder, hot_ladder, exponent: float):
    log = _zipf_log(docs, exponent)
    truths = {pattern: _truth(docs, pattern) for pattern in set(log)}

    # Sharded fan-out plane: bare, then hot-attached (cold store).
    estimator.attach_hot(None)
    bare_wall, bare_answers = _drain_sharded(estimator, log)
    store = HotPatternTier.from_documents(docs)
    estimator.attach_hot(store)
    hot_wall, hot_answers = _drain_sharded(estimator, log)

    violations = 0
    for answers in (bare_answers, hot_answers):
        for pattern, answer in zip(log, answers):
            truth = truths[pattern]
            if not answer.lo <= truth <= answer.hi:
                violations += 1
            if answer.exact and answer.count != truth:
                violations += 1

    # Monolithic ladder (reporting only: its memo already caches repeats).
    t0 = time.perf_counter()
    for pattern in log:
        ladder.query(pattern)
    ladder_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    hot_outcomes = [hot_ladder.query(pattern) for pattern in log]
    hot_ladder_wall = time.perf_counter() - t0

    # Shed-answer tightness under forced overload: every query sheds
    # (rate ~0), the hot rung upgrades what it can, and no upgraded
    # interval may be wider than the weakest-tier bound it replaces.
    bare_srv = QueryServer(ladder, rate=1e-9, burst=1.0)
    hot_srv = QueryServer(hot_ladder, rate=1e-9, burst=1.0)
    bare_srv.query(log[0])  # spend the single burst token on each front
    hot_srv.query(log[0])
    shed_sample = log[:1000]
    shed_upgraded = shed_wider = 0
    bare_width_sum = hot_width_sum = 0
    for pattern in shed_sample:
        bare_shed = bare_srv.query(pattern)
        hot_shed = hot_srv.query(pattern)
        assert bare_shed.shed and hot_shed.shed
        bare_width = (
            0 if bare_shed.error_model is ErrorModel.EXACT
            else int(bare_shed.count)
        )
        hot_width = (
            0 if hot_shed.error_model is ErrorModel.EXACT
            else int(hot_shed.count)
        )
        bare_width_sum += bare_width
        hot_width_sum += hot_width
        shed_upgraded += bool(hot_shed.upgraded)
        shed_wider += hot_width > bare_width
    bare_srv.close()
    hot_srv.close()

    stats = store.stats
    return {
        "exponent": exponent,
        "queries": len(log),
        "distinct": DISTINCT,
        "shards": SHARDS,
        "bare_fanout_wall_s": round(bare_wall, 4),
        "hot_fanout_wall_s": round(hot_wall, 4),
        "bare_fanout_qps": round(len(log) / bare_wall, 1),
        "hot_fanout_qps": round(len(log) / hot_wall, 1),
        "speedup": round(bare_wall / hot_wall, 2),
        "fanouts_skipped": stats.fanouts_skipped,
        "hot_fraction": round(stats.fanouts_skipped / len(log), 4),
        "soundness_violations": violations,
        "hot_stats": stats.as_dict(),
        "ladder_wall_s": round(ladder_wall, 4),
        "hot_ladder_wall_s": round(hot_ladder_wall, 4),
        "hot_ladder_served": sum(
            1 for o in hot_outcomes if o.tier == "hot"
        ),
        "shed_sample": len(shed_sample),
        "shed_upgraded": shed_upgraded,
        "shed_wider_than_stats": shed_wider,
        "shed_mean_width_stats": round(
            bare_width_sum / len(shed_sample), 1
        ),
        "shed_mean_width_hot": round(
            hot_width_sum / len(shed_sample), 1
        ),
    }


def test_hot_report_artifact(corpus):
    """Both exponents, one JSON artifact, floors asserted at s = 1.2."""
    ctx, docs = corpus
    plan = ShardPlan.for_documents(docs, SHARDS)
    estimator, _ = build_sharded(plan, "fm", THRESHOLD, max_workers=SHARDS)
    ladder = build_default_ladder(ctx.text, THRESHOLD)
    hot_ladder = build_default_ladder(ctx.text, THRESHOLD, hot=True)

    report = {
        "corpus": "english",
        "size": len(ctx.text.raw),
        "threshold": THRESHOLD,
        "runs": [
            _run_exponent(docs, estimator, ladder, hot_ladder, s)
            for s in (0.8, 1.2)
        ],
    }
    RESULTS.mkdir(exist_ok=True)
    path = RESULTS / "hot_report.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for run in report["runs"]:
        assert run["soundness_violations"] == 0, run

    skewed = report["runs"][1]
    assert skewed["queries"] >= 10_000
    # The issue's acceptance floors: half the skewed log never touches
    # the shard fan-out, and the hot plane is a >= 3x throughput multiple.
    assert skewed["hot_fraction"] >= 0.5, skewed
    assert skewed["speedup"] >= 3.0, skewed
    # Shed upgrades fire and never widen the pre-refactor shed bound.
    for run in report["runs"]:
        assert run["shed_wider_than_stats"] == 0, run
        assert run["shed_upgraded"] > 0, run
    # The flatter log must still be sound and strictly cache-positive.
    assert report["runs"][0]["fanouts_skipped"] > 0
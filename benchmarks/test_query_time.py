"""X2a: query-time benchmarks for every index.

Times ``count()`` batches (mixed pattern lengths sampled from the text)
for the FM-index, APX, CPST, PST and Patricia at a representative
threshold, on the `english` corpus. The interesting comparison: APX and
CPST run O(|P|) rank/select operations like the FM-index, while PST walks
explicit labels and Patricia does blind descent.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def workload(contexts):
    ctx = contexts["english"]
    patterns = []
    for length in (2, 4, 8, 16):
        patterns.extend(ctx.sample_patterns(length, 25))
    return ctx, patterns


THRESHOLD = 32


@pytest.fixture(scope="module")
def built_indexes(workload):
    ctx, _ = workload
    return {
        "fm": ctx.build_fm(),
        "apx": ctx.build_apx(THRESHOLD),
        "cpst": ctx.build_cpst(THRESHOLD),
        "pst": ctx.build_pst(THRESHOLD),
        "patricia": ctx.build_patricia(THRESHOLD),
    }


@pytest.mark.parametrize("name", ["fm", "apx", "cpst", "pst", "patricia"])
def test_count_batch(benchmark, workload, built_indexes, name):
    _, patterns = workload
    index = built_indexes[name]

    def run() -> int:
        total = 0
        for pattern in patterns:
            total += index.count(pattern)
        return total

    total = benchmark(run)
    assert total >= 0


def test_mol_estimate_batch(benchmark, workload, built_indexes):
    """Selectivity estimation cost on top of the CPST (Figure 9 workload)."""
    from repro.selectivity import MOLEstimator

    ctx, _ = workload
    estimator = MOLEstimator(built_indexes["cpst"])
    patterns = ctx.sample_patterns(8, 20)

    def run() -> float:
        return sum(estimator.estimate(p) for p in patterns)

    value = benchmark(run)
    assert value >= 0.0

"""X6: APX error-distribution benchmark.

Asserts the Theorem 7 ceiling over the whole workload and the empirical
concentration: mean error well below the worst case (≈ l/2 or less), and
p95 strictly inside the bound.
"""

from __future__ import annotations

from repro.experiments import errordist
from .conftest import BENCH_SEED, BENCH_SIZE


def test_error_distribution(benchmark, save_report):
    rows = benchmark.pedantic(
        errordist.run,
        kwargs={"size": min(BENCH_SIZE, 30_000), "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = errordist.format_results(rows)
    save_report("errordist", report)
    print("\n" + report)

    assert errordist.all_within_bound(rows), report
    for row in rows:
        assert row.mean <= 0.55 * row.l, (row.dataset, row.l, row.mean)
        assert row.p95 <= row.l - 1, (row.dataset, row.l, row.p95)

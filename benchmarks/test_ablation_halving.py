"""X3a: threshold-halving ablation (paper: halving l costs 1.75–1.95x)."""

from __future__ import annotations

from repro.experiments import ablation
from .conftest import BENCH_SEED, BENCH_SIZE


def test_halving_ratios(benchmark, save_report):
    rows = benchmark.pedantic(
        ablation.run_halving,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = ablation.format_halving(rows)
    save_report("ablation_halving", report)
    print("\n" + report)

    ratios = [row.ratio for row in rows]
    assert ratios, "expected at least one halving pair"
    assert all(ratio >= 1.0 for ratio in ratios), "smaller l can never be smaller"
    mean = sum(ratios) / len(ratios)
    assert 1.5 <= mean <= 2.1, f"paper band is ~1.75-1.95, got mean {mean:.2f}"

"""X7: the paper's omitted KVI/MO/MOL comparison, regenerated.

Paper (Section 6): "We performed (details omitted) a comparison between
MO, MOL and KVI and found out that MOL delivered the best estimates."
Plus the MOC/MOLC variants the paper could not run at scale.
"""

from __future__ import annotations

from repro.experiments import estimators
from .conftest import BENCH_SEED, BENCH_SIZE


def test_estimator_comparison(benchmark, save_report):
    rows = benchmark.pedantic(
        estimators.run,
        kwargs={"size": min(BENCH_SIZE, 20_000), "seed": BENCH_SEED, "per_length": 40},
        rounds=1,
        iterations=1,
    )
    report = estimators.format_results(rows)
    save_report("estimator_comparison", report)
    print("\n" + report)

    checks = estimators.headline_checks(rows)
    assert checks["mol_family_beats_kvi"], (
        "paper: the maximal-overlap family beats pure independence"
    )
    assert checks["constraints_never_hurt_much"], report
    # Every estimator is unbiased enough to stay within a small multiple of
    # the best one on each corpus (sanity band, not a paper claim).
    for row in rows:
        best = min(row.mean_errors.values())
        worst = max(row.mean_errors.values())
        assert worst <= 5 * best + 5, (row.dataset, row.mean_errors)

"""X3d: discriminant-set encoding ablation — paper's B/V vs naive EF.

Both encodings are O(n log(sigma*l)/l) bits; the paper's block string
additionally supports the O(1)-probe predecessor of Lemma 2. Measured
finding at library scale (recorded in EXPERIMENTS.md): the naive
per-symbol Elias–Fano sets are comparable and often somewhat smaller —
B/V pays a block-directory premium for its constant-time operations, and
wins as sigma shrinks relative to l. The bench asserts the same-order
relationship and that answers are identical.
"""

from __future__ import annotations

from repro.experiments import ablation
from .conftest import BENCH_SEED, BENCH_SIZE


def test_encoding_same_order_and_equivalent(benchmark, save_report, contexts):
    rows = benchmark.pedantic(
        ablation.run_encoding,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = ablation.format_encoding(rows)
    save_report("ablation_encoding", report)
    print("\n" + report)

    for row in rows:
        assert 0.25 <= row.ef_over_bv <= 4.0, (row.dataset, row.l, row.ef_over_bv)

    # Functional equivalence on a live corpus: identical count ranges.
    from repro.core.approx_ef import ApproxIndexEF

    ctx = contexts["english"]
    paper = ctx.build_apx(32)
    naive = ApproxIndexEF.from_bwt(ctx.bwt, ctx.text.alphabet, 32)
    for pattern in ctx.sample_patterns(5, 30):
        assert paper.count_range(pattern) == naive.count_range(pattern), pattern

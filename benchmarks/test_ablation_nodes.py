"""X3b: kept nodes m vs the n/l heuristic (paper Section 1 / Figure 7).

The CPST beats APX exactly when m = O(n/l); the paper observes that real
corpora satisfy this. Verify our stand-ins do too.
"""

from __future__ import annotations

from repro.experiments import ablation
from .conftest import BENCH_SEED, BENCH_SIZE


def test_m_close_to_n_over_l(benchmark, save_report):
    rows = benchmark.pedantic(
        ablation.run_nodes,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = ablation.format_nodes(rows)
    save_report("ablation_nodes", report)
    print("\n" + report)

    for row in rows:
        assert row.m_ratio <= 2.5, (row.dataset, row.l, row.m_ratio)
    # On most corpora m is actually *below* n/l (the paper's observation).
    below = sum(1 for row in rows if row.m_ratio <= 1.0)
    assert below >= len(rows) // 2

"""Suffix-sharing batch counting: measured speedup on overlapping workloads.

The MOL-style workload (all substrings of a handful of patterns) shares
suffixes heavily; the SuffixSharingCounter should clearly beat naive
per-pattern counting there.
"""

from __future__ import annotations

import time

import pytest

from repro.batch import SuffixSharingCounter


@pytest.fixture(scope="module")
def workload(contexts):
    ctx = contexts["english"]
    bases = ctx.sample_patterns(14, 8)
    patterns = [
        base[i:j]
        for base in bases
        for i in range(len(base))
        for j in range(i + 1, len(base) + 1)
    ]
    return ctx, patterns


def test_batched_fm(benchmark, workload):
    ctx, patterns = workload
    index = ctx.build_fm()

    def run():
        return SuffixSharingCounter(index).count_many(patterns)

    results = benchmark(run)
    assert len(results) == len(patterns)
    # Equivalence + speed against naive per-pattern counting.
    t0 = time.perf_counter()
    naive = [index.count(p) for p in patterns]
    naive_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    shared = SuffixSharingCounter(index).count_many(patterns)
    shared_time = time.perf_counter() - t0
    assert shared == naive
    # Heavily overlapping workload: sharing must win by a clear margin.
    assert shared_time < naive_time, (shared_time, naive_time)


def test_batched_apx(benchmark, workload):
    ctx, patterns = workload
    index = ctx.build_apx(32)

    def run():
        return SuffixSharingCounter(index).count_many(patterns)

    results = benchmark(run)
    assert all(r >= 0 for r in results)

"""Suffix-sharing batch counting: measured speedup on overlapping workloads.

The MOL-style workload (all substrings of a handful of patterns) shares
suffixes heavily; the engine's trie planner (and its facade, the
SuffixSharingCounter) should clearly beat naive per-pattern counting
there. The ``results/engine_stats.json`` artifact (step/rank-op and
scalar-vs-vectorized throughput comparison) is produced by
``test_engine_bench.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.batch import SuffixSharingCounter
from repro.engine import TrieBatchPlanner, automaton_of


@pytest.fixture(scope="module")
def workload(contexts):
    ctx = contexts["english"]
    bases = ctx.sample_patterns(14, 8)
    patterns = [
        base[i:j]
        for base in bases
        for i in range(len(base))
        for j in range(i + 1, len(base) + 1)
    ]
    return ctx, patterns


def test_batched_fm(benchmark, workload):
    ctx, patterns = workload
    index = ctx.build_fm()

    def run():
        return SuffixSharingCounter(index).count_many(patterns)

    results = benchmark(run)
    assert len(results) == len(patterns)
    # Equivalence + speed against naive per-pattern counting.
    t0 = time.perf_counter()
    naive = [index.count(p) for p in patterns]
    naive_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    shared = SuffixSharingCounter(index).count_many(patterns)
    shared_time = time.perf_counter() - t0
    assert shared == naive
    # Heavily overlapping workload: sharing must win by a clear margin.
    assert shared_time < naive_time, (shared_time, naive_time)


def test_batched_apx(benchmark, workload):
    ctx, patterns = workload
    index = ctx.build_apx(32)

    def run():
        return SuffixSharingCounter(index).count_many(patterns)

    results = benchmark(run)
    assert all(r >= 0 for r in results)


def test_planner_fm(benchmark, workload):
    """The engine planner driven directly (no facade) on the same batch."""
    ctx, patterns = workload
    index = ctx.build_fm()
    automaton = automaton_of(index)
    assert automaton is index

    def run():
        return TrieBatchPlanner(automaton).count_many(patterns)

    results = benchmark(run)
    assert results == [index.count(p) for p in patterns]


def test_engine_stats_comparison(contexts):
    """Figure 9 workload, naive vs trie-planned: the planner must need
    measurably fewer automaton extensions. (The persisted
    ``engine_stats.json`` artifact now lives in test_engine_bench.py,
    which adds the scalar-vs-vectorized throughput columns.)"""
    from repro.experiments.engine import measure

    # One corpus keeps the smoke job fast; `repro experiment engine`
    # covers the full corpus/index grid.
    ctx = contexts["english"]
    workload = [
        p for length in (6, 8, 10, 12)
        for p in ctx.sample_patterns(length, 50)
    ]
    for label, index in (
        ("FM", ctx.build_fm()),
        ("CPST-16", ctx.build_cpst(16)),
    ):
        row = measure(index, workload, "english", label)
        assert row.results_identical
        assert row.planned_steps < row.naive_steps, label

"""Live corpus plane benchmarks: ingest, recovery, compaction reuse.

Measures the crash-safe ingest path end to end and persists the
telemetry as ``results/ingest_report.json`` for CI to upload:

* **ingest throughput** — durably acknowledged appends per second
  (every append pays a WAL fsync before it returns);
* **recovery time** — wall-clock to re-open the directory (newest valid
  manifest + segment digest checks + WAL tail replay), both clean and
  with a torn WAL tail to heal;
* **compaction reuse** — fraction of shards an incremental compaction
  serves from the artifact cache instead of re-sorting.

The assertions are on counts, convergence and cache reuse — things that
cannot flake; the wall-clock numbers are reporting only.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.live import LiveCorpus, WalRecord

THRESHOLD = 16
SHARDS = 4
DOCUMENTS = 24


@pytest.fixture(scope="module")
def documents(contexts):
    raw = contexts["english"].text.raw
    n = len(raw)
    return {
        f"doc{i:02d}": raw[i * n // DOCUMENTS : (i + 1) * n // DOCUMENTS]
        for i in range(DOCUMENTS)
    }


def test_ingest_report_artifact(documents, tmp_path_factory, save_report):
    base = tmp_path_factory.mktemp("live") / "corpus"

    # -- ingest: durable appends ------------------------------------------
    corpus = LiveCorpus.create(base, l=THRESHOLD, shards=SHARDS)
    ingested_bytes = 0
    t0 = time.perf_counter()
    for name, body in documents.items():
        corpus.append(name, body)
        ingested_bytes += len(body)
    ingest_wall = time.perf_counter() - t0
    assert len(corpus) == DOCUMENTS

    # -- cold compaction ---------------------------------------------------
    t0 = time.perf_counter()
    cold = corpus.compact()
    cold_wall = time.perf_counter() - t0
    assert cold.committed and len(cold.shards) == SHARDS

    # -- incremental compaction: small delta, most shards unchanged --------
    corpus.append("fresh", "an incremental document about suffix trees")
    corpus.delete("doc00")
    t0 = time.perf_counter()
    warm = corpus.compact()
    warm_wall = time.perf_counter() - t0
    assert warm.committed
    reused_shards = [
        name
        for name, report in warm.build.reports.items()
        if report.reuse_hits > 0
    ]
    assert warm.reuse_hits > 0, "incremental compaction must reuse artifacts"
    reuse_ratio = len(reused_shards) / len(warm.shards)

    # -- recovery: clean reopen -------------------------------------------
    expected = corpus.documents()
    intervals = {p: corpus.count_interval(p) for p in ("the", "an", "ing")}
    corpus.close()
    t0 = time.perf_counter()
    recovered = LiveCorpus.open(base)
    clean_recovery_wall = time.perf_counter() - t0
    assert recovered.documents() == expected
    for pattern, interval in intervals.items():
        assert recovered.count_interval(pattern) == interval
    recovered.close()

    # -- recovery: torn WAL tail to heal ----------------------------------
    wal_path = base / "wal.log"
    with open(wal_path, "ab") as handle:
        handle.write(WalRecord("append", 999, "torn", "lost").encode()[:9])
    t0 = time.perf_counter()
    healed = LiveCorpus.open(base)
    torn_recovery_wall = time.perf_counter() - t0
    assert healed.documents() == expected
    healed.close()

    payload = {
        "documents": DOCUMENTS,
        "shards": SHARDS,
        "threshold": THRESHOLD,
        "ingest": {
            "appends": DOCUMENTS,
            "bytes": ingested_bytes,
            "wall_seconds": round(ingest_wall, 6),
            "appends_per_second": round(DOCUMENTS / ingest_wall, 2),
            "bytes_per_second": round(ingested_bytes / ingest_wall, 1),
        },
        "compaction": {
            "cold_wall_seconds": round(cold_wall, 6),
            "warm_wall_seconds": round(warm_wall, 6),
            "warm_reuse_hits": warm.reuse_hits,
            "warm_reused_shards": sorted(reused_shards),
            "reuse_ratio": round(reuse_ratio, 3),
            "verified_probes": warm.verified_probes,
        },
        "recovery": {
            "clean_wall_seconds": round(clean_recovery_wall, 6),
            "torn_tail_wall_seconds": round(torn_recovery_wall, 6),
        },
    }
    path = save_report("ingest_report", json.dumps(payload, indent=2))
    # save_report appends .txt; mirror to the canonical .json name too.
    json_path = path.with_suffix(".json")
    json_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    assert json_path.exists()


def test_recovery_convergence_after_interrupted_compaction(
    documents, tmp_path_factory
):
    """A compaction killed right before its manifest rename converges on
    the uninterrupted digests when retried after recovery."""
    from repro.service import (
        DiskFaultInjector,
        DiskFaultSpec,
        SimulatedCrashError,
    )

    subset = dict(list(documents.items())[:6])
    base = tmp_path_factory.mktemp("live-crash") / "corpus"
    injector = DiskFaultInjector(DiskFaultSpec(site="manifest_rename", at=2))
    corpus = LiveCorpus.create(
        base, l=THRESHOLD, shards=2, injector=injector
    )
    for name, body in subset.items():
        corpus.append(name, body)
    with pytest.raises(SimulatedCrashError):
        corpus.compact()
    corpus.close()

    with LiveCorpus.open(base) as recovered:
        retried = recovered.compact()

    straight_base = tmp_path_factory.mktemp("live-straight") / "corpus"
    with LiveCorpus.create(straight_base, l=THRESHOLD, shards=2) as straight:
        for name, body in subset.items():
            straight.append(name, body)
        reference = straight.compact()
    assert retried.shard_digests == reference.shard_digests

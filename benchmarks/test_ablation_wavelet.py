"""X3c: wavelet shaping ablation for the FM-index baseline.

The Huffman-shaped wavelet tree should sit near n*H0 and clearly below the
balanced wavelet matrix on skewed corpora — the entropy-compression
property Theorem 6's space bounds rely on.
"""

from __future__ import annotations

from repro.experiments import ablation
from .conftest import BENCH_SEED, BENCH_SIZE


def test_huffman_shaping_compresses(benchmark, save_report):
    rows = benchmark.pedantic(
        ablation.run_wavelet,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = ablation.format_wavelet(rows)
    save_report("ablation_wavelet", report)
    print("\n" + report)

    for row in rows:
        assert row.huffman_bits < row.balanced_bits, row.dataset
        # Huffman payload within [H0-ish, H0 + 1 bit/symbol + slack].
        assert row.huffman_bits <= 1.35 * row.h0_bits + 8 * 1024, row.dataset

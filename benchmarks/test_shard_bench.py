"""Sharded corpus plane benchmarks.

Measures the partitioned build against the monolith it replaces and
persists the telemetry as ``results/shard_report.json`` for CI to
upload: per-shard build wall-clock, artifact-cache reuse on a re-shard
(only the changed shard should pay a suffix sort), and fan-out query
latency vs the monolithic index.

The assertions are on counts and cache hits — things that cannot flake;
the wall-clock numbers are reporting only.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.build import ArtifactCache
from repro.shard import MergePolicy, ShardPlan, build_sharded
from repro.textutil import ROW_SEPARATOR, Text

THRESHOLD = 16
SHARDS = 4
DOCUMENTS = 12


@pytest.fixture(scope="module")
def corpus(contexts):
    """The english corpus cut into document-aligned pieces."""
    raw = contexts["english"].text.raw
    n = len(raw)
    docs = [
        (f"doc{i:02d}", raw[i * n // DOCUMENTS : (i + 1) * n // DOCUMENTS])
        for i in range(DOCUMENTS)
    ]
    return contexts["english"], docs


def test_sharded_build_vs_monolith(benchmark, corpus):
    """One parallel sharded build; count must match the monolith's model."""
    ctx, docs = corpus
    plan = ShardPlan.for_documents(docs, SHARDS)

    def build():
        return build_sharded(plan, "apx", THRESHOLD, max_workers=SHARDS)

    sharded, report = benchmark.pedantic(build, rounds=2, iterations=1)
    assert len(report.reports) == SHARDS
    assert report.shard_threshold >= 2


def test_shard_report_artifact(corpus, tmp_path_factory, save_report):
    """Builds cold, re-shards warm (one document moved), and fans out a
    workload — persisting the whole comparison as
    ``results/shard_report.json``. The warm re-shard must reuse the
    cached artifacts of every unchanged shard."""
    ctx, docs = corpus
    mono = Text.from_rows([body for _, body in docs])
    cache = ArtifactCache(tmp_path_factory.mktemp("shard-cache"))

    plan = ShardPlan.for_documents(docs, SHARDS)
    t0 = time.perf_counter()
    sharded, cold = build_sharded(
        plan, "apx", THRESHOLD, cache=cache, max_workers=SHARDS
    )
    cold_wall = time.perf_counter() - t0

    # Re-shard: nudge one document into a different shard; all other
    # shard texts are byte-identical, so their artifacts come from cache.
    assignment = {name: plan.manifest[name] for name, _ in docs}
    moved = docs[0][0]
    donor = plan.manifest[moved]
    target = next(n for n in plan.names if n != donor)
    assignment[moved] = target
    replan = ShardPlan.explicit(docs, assignment)
    t0 = time.perf_counter()
    resharded, warm = build_sharded(
        replan, "apx", THRESHOLD, cache=cache, max_workers=SHARDS
    )
    warm_wall = time.perf_counter() - t0
    changed = {donor, target}
    unchanged = [n for n in replan.names if n not in changed]
    assert unchanged, "re-shard should leave at least one shard untouched"
    for name in unchanged:
        assert warm.reports[name].reuse_hits > 0, name
    assert warm.reuse_hits > cold.reuse_hits or cold.reuse_hits == 0

    # Fan-out query latency vs the monolithic index on the same corpus.
    monolith = ctx.build_apx(THRESHOLD)
    workload = [
        p for length in (4, 6, 8)
        for p in ctx.sample_patterns(length, 40)
        if ROW_SEPARATOR not in p
    ]
    t0 = time.perf_counter()
    fanout = [sharded.count(p) for p in workload]
    fan_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    [monolith.count(p) for p in workload]
    mono_wall = time.perf_counter() - t0
    # Soundness across the fan-out: every merged answer stays within the
    # merged threshold of the true count.
    slack = warm.merged_threshold - 1
    for pattern, got in zip(workload, fanout):
        truth = mono.count_naive(pattern)
        assert truth <= got <= truth + slack, pattern

    payload = {
        "shards": SHARDS,
        "documents": DOCUMENTS,
        "threshold": THRESHOLD,
        "policy": MergePolicy.SPLIT_BUDGET.value,
        "cold_build": {"wall_seconds": round(cold_wall, 6), **cold.as_dict()},
        "warm_reshard": {
            "wall_seconds": round(warm_wall, 6),
            "moved_document": moved,
            "rebuilt_shards": sorted(changed),
            **warm.as_dict(),
        },
        "query": {
            "patterns": len(workload),
            "fanout_wall_seconds": round(fan_wall, 6),
            "monolith_wall_seconds": round(mono_wall, 6),
        },
    }
    path = save_report("shard_report", json.dumps(payload, indent=2))
    # save_report appends .txt; mirror to the canonical .json name too.
    json_path = path.with_suffix(".json")
    json_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    assert json_path.exists()

"""X2b: construction-time benchmarks.

Times the shared substrate (suffix array, LCP, BWT) and each index build
on the `english` corpus. Index builds reuse precomputed intermediates so
the numbers isolate per-structure construction cost, matching how the
experiment harness amortises work.
"""

from __future__ import annotations

import pytest

from repro.sa import lcp_array, suffix_array, suffix_array_sais
from repro.suffixtree.pruned import PrunedSuffixTreeStructure

THRESHOLD = 32


@pytest.fixture(scope="module")
def english(contexts):
    ctx = contexts["english"]
    ctx.bwt  # warm every cached intermediate
    ctx.structure(THRESHOLD)
    return ctx


def test_build_suffix_array_doubling(benchmark, english):
    sa = benchmark(suffix_array, english.text.data)
    assert sa.size == len(english.text) + 1


def test_build_suffix_array_sais(benchmark, english):
    import numpy as np

    # Pure-python SA-IS: bench a smaller slice, re-terminated with the
    # sentinel the algorithm requires.
    data = np.concatenate([english.text.data[:5000], [0]])
    sa = benchmark.pedantic(suffix_array_sais, args=(data,), rounds=2, iterations=1)
    assert sa.size == data.size


def test_build_lcp(benchmark, english):
    lcp = benchmark(lcp_array, english.text.data, english.sa)
    assert lcp.size == english.sa.size


def test_build_structure(benchmark, english):
    structure = benchmark.pedantic(
        PrunedSuffixTreeStructure,
        args=(english.text, THRESHOLD),
        kwargs={"sa": english.sa, "lcp": english.lcp},
        rounds=2,
        iterations=1,
    )
    assert structure.num_nodes >= 1


def test_build_fm(benchmark, english):
    index = benchmark.pedantic(english.build_fm, rounds=2, iterations=1)
    assert index.text_length == len(english.text)


def test_build_apx(benchmark, english):
    index = benchmark.pedantic(
        english.build_apx, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_cpst(benchmark, english):
    index = benchmark.pedantic(
        english.build_cpst, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_pst(benchmark, english):
    index = benchmark.pedantic(
        english.build_pst, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_patricia(benchmark, english):
    index = benchmark.pedantic(
        english.build_patricia, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_suffix_array_dc3(benchmark, english):
    import numpy as np

    from repro.sa import suffix_array_dc3

    data = np.concatenate([english.text.data[:5000], [0]])
    sa = benchmark.pedantic(suffix_array_dc3, args=(data,), rounds=2, iterations=1)
    assert sa.size == data.size


def test_verify_suffix_array_linear(benchmark, english):
    from repro.sa import verify_suffix_array

    ok = benchmark(verify_suffix_array, english.text.data, english.sa)
    assert ok


def test_build_pipeline_artifact(english, save_report):
    """Per-index builds vs one shared BuildContext (sequential and
    ``max_workers=4``) over the default tier set + FM. Persists the
    comparison — including the pipeline's own per-stage telemetry — as
    ``results/build_report.json`` for CI to upload.

    Timing uses ``perf_counter`` directly (one round each, like the
    figure benches): the assertions are on suffix-sort *counts*, which
    cannot flake, while the wall-clock numbers are reporting only.
    """
    import json
    import time

    import repro.sa as sa_mod
    from repro.baselines import FMIndex, QGramIndex
    from repro.build import BuildContext, IndexSpec, build_all, default_tier_specs
    from repro.core import ApproxIndex, CompactPrunedSuffixTree
    from repro.service.tiers import TextStatsEstimator

    text = english.text
    specs = default_tier_specs(THRESHOLD) + [IndexSpec("fm")]

    sorts = []
    real = sa_mod.suffix_array

    def counting(*args, **kwargs):
        sorts.append(1)
        return real(*args, **kwargs)

    sa_mod.suffix_array = counting
    try:
        t0 = time.perf_counter()
        independent = [
            CompactPrunedSuffixTree(text, THRESHOLD),
            ApproxIndex(text, max(2, THRESHOLD - THRESHOLD % 2)),
            QGramIndex(text, q=max(2, min(THRESHOLD, 8))),
            TextStatsEstimator(text),
            FMIndex(text),
        ]
        independent_seconds = time.perf_counter() - t0
        independent_sorts = len(sorts)

        sorts.clear()
        t0 = time.perf_counter()
        sequential = build_all(BuildContext(text, name="english"), specs)
        sequential_seconds = time.perf_counter() - t0
        sequential_sorts = len(sorts)

        sorts.clear()
        t0 = time.perf_counter()
        parallel = build_all(
            BuildContext(text, name="english"), specs, max_workers=4
        )
        parallel_seconds = time.perf_counter() - t0
        parallel_sorts = len(sorts)
    finally:
        sa_mod.suffix_array = real

    # The whole point of the pipeline: one sort, however it is driven.
    assert sequential_sorts == 1
    assert parallel_sorts == 1
    assert independent_sorts > sequential_sorts
    assert len(independent) == len(specs)
    probe = text.raw[100:108]
    assert sequential["fm"].count(probe) == parallel["fm"].count(probe)

    payload = {
        "corpus": "english",
        "size": len(text),
        "threshold": THRESHOLD,
        "suffix_sorts": {
            "independent": independent_sorts,
            "shared_sequential": sequential_sorts,
            "shared_parallel": parallel_sorts,
        },
        "wall_seconds": {
            "independent": round(independent_seconds, 4),
            "shared_sequential": round(sequential_seconds, 4),
            "shared_parallel": round(parallel_seconds, 4),
        },
        "sequential_report": sequential.report.as_dict(),
        "parallel_report": parallel.report.as_dict(),
    }
    path = save_report("build_report", json.dumps(payload, indent=2))
    json_path = path.with_suffix(".json")
    json_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    assert json_path.exists()

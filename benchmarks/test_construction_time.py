"""X2b: construction-time benchmarks.

Times the shared substrate (suffix array, LCP, BWT) and each index build
on the `english` corpus. Index builds reuse precomputed intermediates so
the numbers isolate per-structure construction cost, matching how the
experiment harness amortises work.
"""

from __future__ import annotations

import pytest

from repro.sa import lcp_array, suffix_array, suffix_array_sais
from repro.suffixtree.pruned import PrunedSuffixTreeStructure

THRESHOLD = 32


@pytest.fixture(scope="module")
def english(contexts):
    ctx = contexts["english"]
    ctx.bwt  # warm every cached intermediate
    ctx.structure(THRESHOLD)
    return ctx


def test_build_suffix_array_doubling(benchmark, english):
    sa = benchmark(suffix_array, english.text.data)
    assert sa.size == len(english.text) + 1


def test_build_suffix_array_sais(benchmark, english):
    import numpy as np

    # Pure-python SA-IS: bench a smaller slice, re-terminated with the
    # sentinel the algorithm requires.
    data = np.concatenate([english.text.data[:5000], [0]])
    sa = benchmark.pedantic(suffix_array_sais, args=(data,), rounds=2, iterations=1)
    assert sa.size == data.size


def test_build_lcp(benchmark, english):
    lcp = benchmark(lcp_array, english.text.data, english.sa)
    assert lcp.size == english.sa.size


def test_build_structure(benchmark, english):
    structure = benchmark.pedantic(
        PrunedSuffixTreeStructure,
        args=(english.text, THRESHOLD),
        kwargs={"sa": english.sa, "lcp": english.lcp},
        rounds=2,
        iterations=1,
    )
    assert structure.num_nodes >= 1


def test_build_fm(benchmark, english):
    index = benchmark.pedantic(english.build_fm, rounds=2, iterations=1)
    assert index.text_length == len(english.text)


def test_build_apx(benchmark, english):
    index = benchmark.pedantic(
        english.build_apx, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_cpst(benchmark, english):
    index = benchmark.pedantic(
        english.build_cpst, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_pst(benchmark, english):
    index = benchmark.pedantic(
        english.build_pst, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_patricia(benchmark, english):
    index = benchmark.pedantic(
        english.build_patricia, args=(THRESHOLD,), rounds=2, iterations=1
    )
    assert index.threshold == THRESHOLD


def test_build_suffix_array_dc3(benchmark, english):
    import numpy as np

    from repro.sa import suffix_array_dc3

    data = np.concatenate([english.text.data[:5000], [0]])
    sa = benchmark.pedantic(suffix_array_dc3, args=(data,), rounds=2, iterations=1)
    assert sa.size == data.size


def test_verify_suffix_array_linear(benchmark, english):
    from repro.sa import verify_suffix_array

    ok = benchmark(verify_suffix_array, english.text.data, english.sa)
    assert ok

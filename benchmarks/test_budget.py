"""X8: space-budget trade-off benchmark.

At any budget the CPST affords a (much) finer threshold than the APX —
the practical consequence of Figure 8's ordering — and MOL error falls as
the budget grows.
"""

from __future__ import annotations

from repro.experiments import budget
from .conftest import BENCH_SEED, BENCH_SIZE


def test_budget_tradeoff(benchmark, save_report):
    rows = benchmark.pedantic(
        budget.run,
        kwargs={"size": min(BENCH_SIZE, 20_000), "seed": BENCH_SEED, "patterns": 50},
        rounds=1,
        iterations=1,
    )
    report = budget.format_results(rows)
    save_report("budget", report)
    print("\n" + report)

    checks = budget.headline_checks(rows)
    assert checks["thresholds_monotone_in_budget"], report
    assert checks["cpst_affords_finer_threshold"], report
    # More budget never makes MOL dramatically worse (monotone-ish).
    by_dataset: dict[str, list] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, []).append(row)
    for dataset, seq in by_dataset.items():
        for a, b in zip(seq, seq[1:]):
            assert b.mol_mean_error <= a.mol_mean_error * 1.5 + 0.5, (dataset, a, b)

"""Figure 7 (dataset statistics table) — regeneration benchmark.

Regenerates the paper's table: per corpus and l in {8, 64, 256} the
expected node count n/l, the real |PST_l| and the summed edge-label
length. Asserts the paper's qualitative findings and times the full
table computation.
"""

from __future__ import annotations

from repro.experiments import figure7
from .conftest import BENCH_SEED, BENCH_SIZE


def test_figure7_table(benchmark, save_report):
    rows = benchmark.pedantic(
        figure7.run,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = figure7.format_results(rows)
    save_report("figure7", report)
    print("\n" + report)

    checks = figure7.headline_checks(rows)
    assert checks["m_close_to_n_over_l"], "paper claim: m stays close to n/l"
    assert checks["sources_label_blowup"], (
        "paper claim: sources' label mass dwarfs its node count"
    )
    # Structural sanity: every corpus/threshold present.
    assert len(rows) == 4 * 3
    assert all(row.num_nodes >= 1 for row in rows)

"""Vectorized engine throughput: scalar vs wave-stepped batch execution.

The Figure 9 workload (random patterns at lengths 6/8/10/12) drives each
engine-capable index three ways — naive per-pattern counting, the scalar
trie planner, and the vectorized wave planner — and persists throughput
plus the bulk-width histogram as ``results/engine_stats.json`` (the
artifact CI's bench-smoke job uploads). The headline floor: on a >= 4-CPU
host the vectorized batch path must clear **5x** the naive per-pattern
throughput somewhere in the corpus/index grid — batch speedup compounds
suffix sharing with wave width, so it grows with batch size, and the
800-pattern Figure 9 batch on the low-sigma corpus is the shape the PR's
batch-serving claim rests on.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.engine import TrieBatchPlanner, automaton_of

#: The CI floor only binds on hosts with real parallel headroom (and
#: therefore believable timers); laptops and tiny runners still produce
#: the artifact, just without the hard assertion.
MIN_CPUS_FOR_FLOOR = 4
BATCH_THROUGHPUT_FLOOR = 5.0


def _figure9_workload(ctx, per_length=200):
    return [
        p
        for length in (6, 8, 10, 12)
        for p in ctx.sample_patterns(length, per_length)
    ]


def _throughput_row(ctx_name, label, index, patterns):
    """Time naive / scalar-planned / vectorized-planned over one workload."""
    automaton = automaton_of(index)
    started = time.perf_counter()
    naive = [index.count(p) for p in patterns]
    naive_seconds = time.perf_counter() - started

    scalar = TrieBatchPlanner(automaton, vectorize=False)
    started = time.perf_counter()
    scalar_results = scalar.count_many(patterns)
    scalar_seconds = time.perf_counter() - started

    vectorized = TrieBatchPlanner(automaton, vectorize=True)
    started = time.perf_counter()
    vectorized_results = vectorized.count_many(patterns)
    vectorized_seconds = time.perf_counter() - started

    assert vectorized_results == scalar_results == naive
    k = len(patterns)
    return {
        "dataset": ctx_name,
        "index": label,
        "patterns": k,
        "naive_seconds": round(naive_seconds, 6),
        "scalar_seconds": round(scalar_seconds, 6),
        "vectorized_seconds": round(vectorized_seconds, 6),
        "naive_qps": round(k / naive_seconds, 1),
        "scalar_qps": round(k / scalar_seconds, 1),
        "vectorized_qps": round(k / vectorized_seconds, 1),
        "batch_speedup": round(naive_seconds / vectorized_seconds, 2),
        "scalar_vs_vectorized": round(scalar_seconds / vectorized_seconds, 2),
        "bulk_waves": vectorized.stats.bulk_calls,
        "bulk_states": vectorized.stats.bulk_states,
        "bulk_width_histogram": {
            str(width): count
            for width, count in sorted(vectorized.bulk_widths.items())
        },
    }


def test_vectorized_throughput_artifact(contexts, save_report):
    """Scalar-vs-vectorized throughput + bulk-width histograms, persisted
    as ``results/engine_stats.json`` together with the step/rank-op
    comparison rows of the engine experiment."""
    from repro.experiments.engine import measure

    throughput = []
    experiment_rows = []
    for name in ("english", "dna"):
        ctx = contexts[name]
        patterns = _figure9_workload(ctx)
        for label, index in (
            ("FM", ctx.build_fm()),
            ("CPST-16", ctx.build_cpst(16)),
        ):
            throughput.append(_throughput_row(name, label, index, patterns))
            row = measure(index, patterns, name, label)
            assert row.results_identical
            assert row.planned_steps < row.naive_steps, (name, label)
            experiment_rows.append(
                {
                    "dataset": row.dataset,
                    "index": row.index,
                    "patterns": row.patterns,
                    "naive_steps": row.naive_steps,
                    "planned_steps": row.planned_steps,
                    "step_saving": round(row.step_saving, 4),
                    "naive_rank_ops": row.naive_rank_ops,
                    "planned_rank_ops": row.planned_rank_ops,
                    "state_cache_hits": row.state_cache_hits,
                    "bulk_waves": row.bulk_waves,
                    "bulk_states": row.bulk_states,
                    "batch_speedup": round(row.batch_speedup, 2),
                }
            )
    payload = {"rows": experiment_rows, "vectorized": throughput}
    rendered = json.dumps(payload, indent=2)
    path = save_report("engine_stats", rendered)
    json_path = path.with_suffix(".json")
    json_path.write_text(rendered + "\n", encoding="utf-8")
    assert json_path.exists()

    # Bulk waves must genuinely fire somewhere in the grid (the narrow-wave
    # scalar fallback may zero them on high-sigma corpora, but the dna
    # workload's fat waves always clear the width floor).
    assert any(r["bulk_waves"] > 0 for r in throughput)
    assert sum(r["bulk_waves"] for r in experiment_rows) > 0

    # The CI floor: vectorized batch throughput >= 5x naive per-pattern
    # throughput on the grid's best row (the low-sigma corpus packs the
    # fattest waves, and CPST's ISL bisects amortise best), asserted only
    # where the host has the cores CI's bench-smoke runs on.
    cpus = os.cpu_count() or 1
    best = max(r["batch_speedup"] for r in throughput)
    if cpus >= MIN_CPUS_FOR_FLOOR:
        assert best >= BATCH_THROUGHPUT_FLOOR, (
            f"vectorized batch throughput floor missed: best {best:.2f}x "
            f"< {BATCH_THROUGHPUT_FLOOR}x on a {cpus}-CPU host"
        )
    # Histogram sanity everywhere: widths times counts == bulk states.
    for r in throughput:
        total = sum(
            int(w) * c for w, c in r["bulk_width_histogram"].items()
        )
        assert total == r["bulk_states"], r["index"]


@pytest.mark.parametrize("kind", ["fm", "cpst"])
def test_wave_planner_benchmark(benchmark, contexts, kind):
    """pytest-benchmark row for the vectorized planner on the Figure 9
    workload (compare against test_planner_fm in test_batch_counting)."""
    ctx = contexts["english"]
    index = ctx.build_fm() if kind == "fm" else ctx.build_cpst(16)
    patterns = _figure9_workload(ctx, per_length=25)
    automaton = automaton_of(index)
    expected = [index.count(p) for p in patterns]

    def run():
        return TrieBatchPlanner(automaton, vectorize=True).count_many(patterns)

    assert benchmark(run) == expected

"""X1: empirical validation of the error theorems, as a benchmark.

Runs the full bound-validation workload (Theorem 7 for APX, Theorem 10 for
CPST, the lower-sided contract for PST, the conditional Patricia bound) on
every corpus and asserts zero violations.
"""

from __future__ import annotations

from repro.experiments import errorbounds
from .conftest import BENCH_SEED, BENCH_SIZE


def test_error_bounds_hold_everywhere(benchmark, save_report):
    size = min(BENCH_SIZE, 20_000)
    rows = benchmark.pedantic(
        errorbounds.run,
        kwargs={"size": size, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = errorbounds.format_results(rows)
    save_report("errorbounds", report)
    print("\n" + report)

    assert errorbounds.all_bounds_hold(rows), report
    # APX mean signed error stays below l (and is non-negative on average).
    for row in rows:
        if row.index == "APPROX":
            assert 0 <= row.mean_error < row.l
            assert row.max_error <= row.l - 1

"""Figure 8 (index space vs threshold) — regeneration benchmark.

Regenerates the four space-vs-l series (FM-index, APPROX-l, PST-l, CPST-l)
per corpus and asserts the paper's qualitative shape: PST dominated by its
labels, CPST smallest, both contributions far below the FM-index, sizes
roughly doubling when the threshold halves.
"""

from __future__ import annotations

from repro.experiments import figure8
from .conftest import BENCH_SEED, BENCH_SIZE


def test_figure8_space_series(benchmark, save_report):
    rows = benchmark.pedantic(
        figure8.run,
        kwargs={"size": BENCH_SIZE, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = figure8.format_results(rows)
    save_report("figure8", report)
    print("\n" + report)

    checks = figure8.headline_checks(rows)
    assert checks["pst_larger_than_cpst"], "paper: CPST < PST at every threshold"
    assert checks["both_below_fm_at_large_l"], "paper: APX/CPST beat the FM-index"
    assert checks["halving_ratio_reasonable"], "paper: halving l costs ~1.75-1.95x"

    table = {(r.dataset, r.index, r.l): r.payload_bits for r in rows}
    # The sources corpus shows the PST label blowup most dramatically.
    assert table[("sources", "PST", 8)] > 5 * table[("sources", "CPST", 8)]
    # CPST-256-style headline: large-l CPSTs are a tiny fraction of the text.
    largest_l = max(r.l for r in rows if r.index == "CPST")
    for dataset in ("dblp", "dna", "english", "sources"):
        row = next(
            r for r in rows
            if r.dataset == dataset and r.index == "CPST" and r.l == largest_l
        )
        assert row.percent_of_text < 10.0, (dataset, row.percent_of_text)


def test_figure8_extended_baselines(benchmark, save_report):
    """Extended comparison including Patricia / RLFM / QGram.

    The Patricia trie pays Theta(log n) bits per sample (paper Section
    7.1: non-optimal against the Theorem 3 bound), so it must sit far
    above the CPST at every threshold.
    """
    rows = benchmark.pedantic(
        figure8.run,
        kwargs={
            "size": BENCH_SIZE,
            "seed": BENCH_SEED,
            "thresholds": (8, 32, 128),
            "include_patricia": True,
            "include_extras": True,
        },
        rounds=1,
        iterations=1,
    )
    report = figure8.format_results(rows)
    save_report("figure8_extended", report)
    print("\n" + report)

    table = {(r.dataset, r.index, r.l): r.payload_bits for r in rows}
    datasets = sorted({r.dataset for r in rows})
    for dataset in datasets:
        for l in (8, 32, 128):
            assert table[(dataset, "Patricia", l)] > 2 * table[(dataset, "CPST", l)]
        # RLFM beats FM exactly on the repetitive corpora.
        if dataset in ("sources", "dblp"):
            assert table[(dataset, "RLFM", 1)] < table[(dataset, "FM-index", 1)]

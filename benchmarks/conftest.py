"""Shared fixtures for the benchmark suite.

Corpus size is tunable via ``REPRO_BENCH_SIZE`` (default 20 000 symbols —
large enough for every paper shape to show, small enough that the whole
suite runs in a few minutes of pure Python). Every figure bench writes its
regenerated table to ``benchmarks/results/`` so the artefacts survive the
run even without ``-s``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import CorpusContext

BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "20000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_size() -> int:
    return BENCH_SIZE


@pytest.fixture(scope="session")
def contexts() -> dict[str, CorpusContext]:
    """One CorpusContext per paper corpus, shared across the session."""
    from repro.datasets import dataset_names

    return {name: CorpusContext(name, BENCH_SIZE, BENCH_SEED) for name in dataset_names()}


@pytest.fixture(scope="session")
def save_report():
    """Persist a regenerated table under benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, content: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n", encoding="utf-8")
        return path

    return _save

"""X5: size-scaling benchmark — bits per symbol must stay flat in n."""

from __future__ import annotations

from repro.experiments import scaling
from .conftest import BENCH_SEED, BENCH_SIZE


def test_space_scales_linearly(benchmark, save_report):
    sizes = tuple(sorted({max(5_000, BENCH_SIZE // 4), BENCH_SIZE // 2, BENCH_SIZE}))
    rows = benchmark.pedantic(
        scaling.run,
        kwargs={"sizes": sizes, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    report = scaling.format_results(rows)
    save_report("scaling", report)
    print("\n" + report)

    checks = scaling.headline_checks(rows)
    assert checks["linear_scaling"], checks
    # The exact index stays near the entropy; the estimators sit far below
    # one bit per symbol at l = 32 on english-like text.
    assert rows[-1].cpst_bits_per_symbol < 1.0
    assert rows[-1].fm_bits_per_symbol > rows[-1].apx_bits_per_symbol

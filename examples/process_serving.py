#!/usr/bin/env python3
"""Zero-copy process-parallel serving.

Operations question: "I want `k` CPU cores searching `k` shards, but I
refuse to hold `k` copies of the index." This example walks the whole
process plane:

1. build per-shard indexes once, export each as a checksummed segment,
   and publish the segments into shared memory (one copy per host);
2. spawn worker processes that *attach* read-only views — the handshake
   telemetry shows attaching allocates bookkeeping bytes, not payload;
3. compare merged intervals against the in-process thread executor
   (they are identical, query for query);
4. SIGKILL a worker mid-service: its shard is quarantined, the merged
   answer degrades honestly to an upper bound, the other shards keep
   serving — then respawn against the same segment and recover parity;
5. put the asyncio serving front over the ladder and drain a workload.

Run:  python examples/process_serving.py
"""

import asyncio
import os
import signal
import time

from repro.datasets import generate
from repro.parallel import AsyncQueryServer
from repro.service import ResilientEstimator, Tier
from repro.service.tiers import TextStatsEstimator
from repro.shard import ShardPlan, build_process_sharded, build_sharded
from repro.textutil import ROW_SEPARATOR, Text, mixed_workload

CORPUS_SIZE = 12_000
DOCUMENTS = 8
WORKERS = 2
L = 16


def main() -> None:
    raw = generate("english", CORPUS_SIZE, seed=4)
    docs = [
        (f"doc{i}", raw[i * CORPUS_SIZE // DOCUMENTS:
                        (i + 1) * CORPUS_SIZE // DOCUMENTS])
        for i in range(DOCUMENTS)
    ]
    plan = ShardPlan.for_documents(docs, WORKERS)
    patterns = [
        p
        for p in mixed_workload(raw, per_length=6, seed=9)
        if ROW_SEPARATOR not in p
    ]

    # -- 1+2: segments in shared memory, workers attached -----------------
    started = time.perf_counter()
    process_est, report = build_process_sharded(plan, "cpst", L)
    print(f"built + spawned {WORKERS} workers in "
          f"{time.perf_counter() - started:.2f}s")
    for name, slot in process_est.attach_telemetry().items():
        print(f"  {name}: segment {slot['segment_bytes']} bytes shared, "
              f"attach allocated {slot['attach_alloc_bytes']} bytes")

    thread_est, _ = build_sharded(plan, "cpst", L)

    try:
        # -- 3: interval parity with the thread executor ------------------
        mismatches = 0
        for pattern in patterns:
            a = process_est.merged_count(pattern)
            b = thread_est.merged_count(pattern)
            mismatches += (a.lo, a.hi) != (b.lo, b.hi)
        print(f"\nparity: {len(patterns)} patterns, {mismatches} interval "
              f"mismatches vs thread executor")

        batch = process_est.merged_count_many(patterns)
        print(f"batched: {len(batch)} answers in one protocol round "
              f"per shard")

        # -- 4: kill a worker; honest degradation; respawn ----------------
        victim = process_est.shard_names[0]
        os.kill(process_est.worker_pid(victim), signal.SIGKILL)
        deadline = time.time() + 5.0
        while time.time() < deadline and not process_est.degraded_shards:
            merged = process_est.merged_count(patterns[0])
        print(f"\nkilled {victim}: degraded={process_est.degraded_shards}, "
              f"merged model {merged.error_model.value}, "
              f"interval [{merged.lo}, {merged.hi}]")
        process_est.respawn_shard(victim)
        merged = process_est.merged_count(patterns[0])
        reference = thread_est.merged_count(patterns[0])
        print(f"respawned {victim}: interval [{merged.lo}, {merged.hi}] "
              f"(thread executor says [{reference.lo}, {reference.hi}])")

        print("\n" + process_est.space_report().format())

        # -- 5: the asyncio front over the process ladder -----------------
        service = ResilientEstimator(
            [
                Tier(process_est, "cpst-procs", certified_only=True),
                Tier(TextStatsEstimator(Text(raw)), "stats",
                     always_available=True),
            ],
            deadline_seconds=2.0,
        )

        async def drive() -> None:
            async with AsyncQueryServer(
                service,
                max_concurrent=8,
                max_waiting=len(patterns),
                max_wait=30.0,
            ) as server:
                outcomes = await server.query_many(patterns)
                by_tier: dict = {}
                for outcome in outcomes:
                    by_tier[outcome.tier] = by_tier.get(outcome.tier, 0) + 1
                print(f"\nasync front answered {len(outcomes)} queries: "
                      f"{by_tier}")
                print("server: " + server.stats().summary())

        asyncio.run(drive())
    finally:
        process_est.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The frequency-aware hot tier: top-k + count-min over query traffic.

Serving question: "our query log is Zipfian — a few dozen patterns are
most of the traffic — can the popular ones skip the index entirely
without ever breaking the paper's error contracts?" This example walks
the whole answer plane:

1. a default ladder with `hot=True`: the Space-Saving top-k rung sits
   above CPST, declines everything while cold, and learns exact counts
   from the ladder's own answers through the feedback channel — no
   second search, ever;
2. the warm tail: patterns too rare for the top-k table get a sound
   count-min `UPPER_BOUND` (the sketch was ingested from the corpus
   windows, so it never undercounts);
3. the sharded fan-out plane: a verified hot answer short-circuits the
   k-shard fan-out + merge entirely (`fanouts_skipped`);
4. invalidation: a corpus epoch bump demotes every verified entry to a
   widened `UPPER_BOUND` interval until the feedback loop re-verifies;
5. the space story: the whole hot structure is a fixed-size overlay
   (the sketches never grow with the corpus) — `space_report()`
   itemizes it.

Run:  python examples/hot_tier.py
"""

from collections import Counter

from repro.datasets import generate_english
from repro.hot import HotPatternTier
from repro.service import build_default_ladder
from repro.shard import ShardPlan, build_sharded
from repro.textutil import Text, zipf_workload

CORPUS_SIZE = 40_000
L = 32
SHARDS = 4


def main() -> None:
    text = Text(generate_english(CORPUS_SIZE, seed=7))

    # -- 1. the ladder learns its own heavy hitters -----------------------
    service = build_default_ladder(text, L, hot=True)
    log = zipf_workload(text, num_queries=2_000, distinct=48,
                        exponent=1.2, seed=11)
    served_by = Counter()
    for pattern in log:
        served_by[service.query(pattern).tier] += 1
    print(f"Zipf(1.2) log, {len(log)} queries over {len(set(log))} "
          f"distinct patterns; answering tier:")
    for tier, hits in served_by.most_common():
        print(f"  {tier:<6} {hits:>5}  ({hits / len(log):5.1%})")

    hot_rung = service.tiers[0]
    stats = hot_rung.hot_stats
    print(f"hot store: {stats.exact_hits} exact hits, "
          f"{stats.sketch_hits} sketch hits, "
          f"{stats.verifications} verifications (all fed back by the "
          f"ladder — the hot tier never searched)")

    # -- 2. the warm tail answers with a sound upper bound ----------------
    head = max(set(log), key=text.count_naive)
    outcome = service.query(head)
    truth = text.count_naive(head)
    print(f"\nhead pattern {head!r}: served {outcome.error_model.name} "
          f"count={outcome.count} (truth {truth})")
    assert outcome.count == truth

    # -- 3. a verified hot answer short-circuits the shard fan-out --------
    n = len(text.raw)
    docs = [(f"doc{i}", text.raw[i * n // 8 : (i + 1) * n // 8])
            for i in range(8)]
    plan = ShardPlan.for_documents(docs, SHARDS)
    estimator, _ = build_sharded(plan, "fm", L)
    store = HotPatternTier.from_documents(docs)
    estimator.attach_hot(store)
    for pattern in log:
        estimator.merged_count(pattern)
    print(f"\nsharded plane ({SHARDS} shards): "
          f"{store.stats.fanouts_skipped}/{len(log)} fan-outs "
          f"short-circuited by the hot store "
          f"({store.stats.fanouts_skipped / len(log):5.1%})")

    # -- 4. an epoch bump demotes; feedback re-verifies -------------------
    probe = head
    store.bump_epoch()  # compaction-shaped invalidation: content unchanged
    demoted = store.lookup(probe)
    answer = estimator.merged_count(probe)       # re-verifies via feedback
    fresh = store.lookup(probe)
    print(f"\nafter bump_epoch(): {probe!r} served as "
          f"{demoted.model.name} [{demoted.lo}, {demoted.hi}], "
          f"one fan-out re-verified it to {fresh.model.name} "
          f"{fresh.count} (merged answer {answer.count})")

    # -- 5. the structure is fixed-size: it never grows with the corpus --
    report = store.space_report()
    print(f"\nhot tier space: {report.total_bits // 8} bytes "
          f"({report.total_bits / (8 * len(text.raw)):.4f} bytes/char "
          f"of corpus)")
    for label, bits in sorted(report.components.items()):
        print(f"  {label:<24} {bits // 8:>8} B")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Document search over a collection: which files mention this string?

Scenario: a code-search box over a repository. The DocumentCollection
keeps per-file identity while indexing everything once; queries return
matching files, per-file hit counts, and context snippets — all served
from the compressed index (the original files are never consulted).

Run:  python examples/document_search.py
"""

from repro import DocumentCollection
from repro.datasets import generate_sources


def make_repository() -> dict[str, str]:
    """A synthetic multi-file code base."""
    return {
        f"src/module_{i}.c": generate_sources(3_000, seed=100 + i)
        for i in range(8)
    }


def main() -> None:
    files = make_repository()
    collection = DocumentCollection(files, sa_sample_rate=8, estimate_threshold=16)
    report = collection.space_report()
    total_chars = sum(len(body) for body in files.values())
    print(f"indexed {len(collection)} files, {total_chars:,} chars "
          f"({report.payload_bits / 8 / 1024:.0f} KiB index)\n")

    queries = ["ENOMEM", "hashmap_init", "for (size_t i = 0;", "goto fail"]
    for query in queries:
        matches = collection.documents_containing(query)
        total = collection.count(query)
        print(f"search {query!r}: {total} hits in {len(matches)} files")
        for name, hits in collection.top_documents(query, k=3):
            print(f"    {name:<18} {hits:>3} hits")
        occurrences = collection.occurrences(query)
        if occurrences:
            snippet = collection.snippet(occurrences[0], context=18)
            print(f"    first match ({occurrences[0].document}"
                  f"@{occurrences[0].offset}): …{snippet!r}…")
        print()

    # The cheap tier: collection-wide counts without any locate machinery.
    print("threshold tier (l=16), no suffix-array samples needed:")
    for query in ("self->items", "goto fail"):
        certified = collection.count_estimated(query)
        label = f"{certified} (exact)" if certified is not None else "< 16"
        print(f"  {query!r}: {label}")


if __name__ == "__main__":
    main()

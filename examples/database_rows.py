#!/usr/bin/env python3
"""Row-level LIKE selectivity with exact distinct-row counts.

The optimiser question is "how many ROWS match LIKE '%P%'" — not how many
occurrences the pattern has (one row can contain it many times). The
RowSelectivityIndex extension answers exactly that: exact distinct-row
counts for every pattern occurring at least l times, below-threshold
detection otherwise, in O(m·log(#rows)) bits on top of the CPST.

The script builds a synthetic orders table, compares occurrence counts vs
row counts (they diverge precisely on repetitive columns), and shows the
estimated vs true selectivities an optimiser would consume.

Run:  python examples/database_rows.py
"""

import numpy as np

from repro import RowSelectivityIndex

CITIES = ["Pisa", "Athens", "Lisbon", "Kyoto", "Quito", "Oslo"]
STATUSES = ["pending", "shipped", "delivered", "returned"]
ITEMS = ["widget", "gadget", "sprocket", "gizmo"]


def make_orders(count: int = 3_000, seed: int = 9) -> list[str]:
    rng = np.random.default_rng(seed)
    rows = []
    for order_id in range(count):
        city = CITIES[int(rng.integers(0, len(CITIES)))]
        status = STATUSES[int(rng.integers(0, len(STATUSES)))]
        items = " ".join(
            ITEMS[int(rng.integers(0, len(ITEMS)))]
            for _ in range(int(rng.integers(1, 5)))
        )
        rows.append(f"order {order_id}: {items} -> {city} [{status}]")
    return rows


def main() -> None:
    rows = make_orders()
    index = RowSelectivityIndex(rows, l=16)
    report = index.space_report()
    print(f"{len(rows)} rows indexed; {report.payload_bits / 8 / 1024:.1f} KiB payload "
          f"({report.components['row_counts'] / 8:.0f} B of that for row counts)\n")

    predicates = ["widget", "Kyoto", "shipped", "widget widget", "gizmo ->", "Atlantis"]
    print(f"{'LIKE pattern':<18} {'occurrences':>12} {'rows':>8} {'true rows':>10} "
          f"{'selectivity':>12}")
    for pattern in predicates:
        occurrences = index.count_or_none(pattern)
        row_count = index.count_rows_or_none(pattern)
        true_rows = sum(1 for row in rows if pattern in row)
        selectivity = index.selectivity_or_none(pattern)
        print(
            f"%{pattern}%".ljust(18)
            + f" {occurrences if occurrences is not None else '<16':>12}"
            + f" {row_count if row_count is not None else '<16':>8}"
            + f" {true_rows:>10}"
            + (f" {selectivity:>11.2%}" if selectivity is not None else f" {'—':>12}")
        )

    print("\nwhere occurrences > rows, a pattern repeats inside single rows —")
    print("the occurrence count alone would mislead the optimiser there.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The live corpus plane: crash-safe incremental ingest.

Operations question: "documents keep arriving (and getting retracted) —
can the index keep serving sound counts without a full rebuild, and what
survives if the process dies mid-write?" This example walks the plane:

1. `LiveCorpus.create` + durable appends — every mutation is WAL-logged
   and fsynced *before* it is acknowledged;
2. compaction — the delta folds into real shards through the cached
   build pipeline; unchanged shards are cache hits, and the report's
   content digests witness deterministic re-binning;
3. a tombstoned delete — served intervals widen soundly until the next
   compaction physically removes the document;
4. a simulated power cut torn mid-WAL-append, then recovery: everything
   acknowledged survives, the torn tail is healed;
5. a compaction killed between writing its manifest and the atomic
   rename: the old generation keeps serving and the retry converges on
   identical shard digests.

Run:  python examples/live_ingest.py
"""

import random
import tempfile
from pathlib import Path

from repro.datasets import generate_english
from repro.live import LiveCorpus
from repro.service import (
    DiskFaultInjector,
    DiskFaultSpec,
    SimulatedCrashError,
)

L = 16
SHARDS = 3


def naive(docs: dict, pattern: str) -> int:
    total = 0
    for body in docs.values():
        start = body.find(pattern)
        while start != -1:
            total += 1
            start = body.find(pattern, start + 1)
    return total


def show(corpus: LiveCorpus, docs: dict, pattern: str) -> None:
    lo, hi = corpus.count_interval(pattern)
    truth = naive(docs, pattern)
    tag = "exact" if lo == hi else f"interval, width {hi - lo}"
    print(f"  count({pattern!r}) = [{lo}, {hi}] ({tag}; truth {truth})")
    assert lo <= truth <= hi, "served interval must bracket the truth"


def main() -> None:
    rng = random.Random(7)
    docs = {
        f"feed{i:02d}": generate_english(rng.randint(800, 1_600), seed=i)
        for i in range(8)
    }
    with tempfile.TemporaryDirectory() as scratch:
        base = Path(scratch) / "corpus"

        # -- 1. durable ingest -------------------------------------------
        corpus = LiveCorpus.create(base, l=L, shards=SHARDS)
        shadow = {}
        for name, body in docs.items():
            seq = corpus.append(name, body)
            shadow[name] = body
            if seq < 2:
                print(f"append {name!r} -> wal seq {seq} (fsynced before ack)")
        print(f"... {len(shadow)} documents ingested, all in the delta")
        show(corpus, shadow, "the")

        # -- 2. compaction ------------------------------------------------
        report = corpus.compact()
        print(report.format())
        show(corpus, shadow, "the")

        # -- 3. tombstoned delete -----------------------------------------
        victim = "feed03"
        corpus.delete(victim)
        del shadow[victim]
        print(f"deleted compacted {victim!r}: model is now "
              f"{corpus.error_model.name}, intervals widen soundly")
        show(corpus, shadow, "the")
        corpus.compact()
        print("recompacted: tombstone cleared, "
              f"{len(corpus)} documents live")
        show(corpus, shadow, "the")

        # -- 4. torn WAL append, then recovery ----------------------------
        corpus.close()
        injector = DiskFaultInjector(
            DiskFaultSpec(site="wal_append", at=2, partial=0.4)
        )
        corpus = LiveCorpus.open(base, injector=injector)
        corpus.append("late00", "a late arrival about suffix trees")
        shadow["late00"] = "a late arrival about suffix trees"
        try:
            corpus.append("late01", "this append dies mid-frame")
        except SimulatedCrashError as exc:
            print(f"simulated power cut: {exc}")
        corpus.close()
        corpus = LiveCorpus.open(base)
        assert corpus.documents() == shadow
        print(f"recovered: {len(corpus)} documents "
              f"(acked 'late00' survived, torn 'late01' never acked)")
        show(corpus, shadow, "tree")

        # -- 5. compaction killed before its commit rename ----------------
        corpus.close()
        injector = DiskFaultInjector(DiskFaultSpec(site="manifest_rename"))
        corpus = LiveCorpus.open(base, injector=injector)
        try:
            corpus.compact()
        except SimulatedCrashError:
            print("compaction killed between manifest temp and rename")
        corpus.close()
        corpus = LiveCorpus.open(base)
        print(f"old generation {corpus.generation} still serving "
              f"{len(corpus)} documents; retrying...")
        retry = corpus.compact()
        digests = {
            name: digest[:12] for name, digest in retry.shard_digests.items()
        }
        print(f"retry committed generation {retry.generation}; canonical "
              f"shard digests: {digests}")
        show(corpus, shadow, "tree")
        corpus.close()
    print("done — every interval bracketed the truth through every crash")


if __name__ == "__main__":
    main()

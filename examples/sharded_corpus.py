#!/usr/bin/env python3
"""The sharded corpus plane: partitioned indexes with a merged guarantee.

Operations question: "the corpus outgrew one index — can we split it
across k shards without giving up the paper's error guarantees, and what
happens when one shard rots?" This example walks the whole plane:

1. a document-aligned `ShardPlan` (size-balanced bin-packing) over a
   batch of log files;
2. `build_sharded` under both merge policies — SPLIT_BUDGET divides the
   error budget so the merged answer still honors the original `l - 1`,
   WIDEN_INTERVAL keeps `l` per shard and reports the widened bound;
3. fan-out counting with the explicit error algebra (`MergedCount`),
   including the product automaton driving batched engine queries —
   stepped as vectorized waves (one `step_many` per frontier symbol,
   fanned across every live shard column) and A/B'd against the scalar
   walk;
4. shard-granular failure: quarantine one shard, watch the other k-1
   keep serving a sound (upper-bound) answer, then let the corruption
   watchdog convict, rebuild and readmit a shard that silently lies.

Run:  python examples/sharded_corpus.py
"""

import random

from repro.datasets import generate_english
from repro.service import CorruptionWatchdog, probes_from_text
from repro.shard import (
    MergePolicy,
    ShardPlan,
    build_sharded,
    build_sharded_ladder,
)
from repro.textutil import ROW_SEPARATOR, Text

DOCUMENTS = 12
SHARDS = 4
L = 16


def main() -> None:
    rng = random.Random(42)
    docs = [
        (f"log{i:02d}", generate_english(rng.randint(1_200, 2_400), seed=i))
        for i in range(DOCUMENTS)
    ]
    mono = Text.from_rows([body for _, body in docs])

    # -- 1. the plan: documents never straddle shards ---------------------
    plan = ShardPlan.for_documents(docs, SHARDS)
    print(plan.format())
    print()

    # -- 2. both merge policies -------------------------------------------
    pattern = "the "
    truth = mono.count_naive(pattern)
    for policy in (MergePolicy.SPLIT_BUDGET, MergePolicy.WIDEN_INTERVAL):
        sharded, report = build_sharded(plan, "apx", L, policy=policy)
        merged = sharded.merged_count(pattern)
        print(f"policy {policy.value!r}: l={L} -> l_shard="
              f"{report.shard_threshold}, merged threshold "
              f"{report.merged_threshold}")
        print(f"  {pattern!r}: truth {truth}, merged {merged.count}, "
              f"sound interval [{merged.lo}, {merged.hi}]")
        assert merged.lo <= truth <= merged.hi
    print()

    # -- 3. the engine path: one product automaton over k shards ----------
    from repro.engine import TrieBatchPlanner, automaton_of

    sharded, _ = build_sharded(plan, "apx", L)
    workload = sorted({
        w
        for body in (body for _, body in docs)
        for w in (body[i : i + 4] for i in range(0, 600, 7))
        if ROW_SEPARATOR not in w
    })
    automaton = automaton_of(sharded)
    # wave_width_min=1 vectorizes even this small demo batch; production
    # keeps the default crossover and decides per wave.
    waves = TrieBatchPlanner(automaton, vectorize=True, wave_width_min=1)
    scalar = TrieBatchPlanner(automaton, vectorize=False)
    batched = waves.count_many(workload)
    assert batched == scalar.count_many(workload)  # bit-identical answers
    print(f"batched {len(workload)} patterns over the product automaton: "
          f"{waves.stats.bulk_calls} step_many waves covered "
          f"{waves.stats.bulk_states} of {waves.stats.automaton_steps} "
          f"extensions (widest wave: "
          f"{max(waves.bulk_widths, default=0)} states)")
    print("sample:", dict(list(zip(workload, batched))[:4]))
    print()

    # -- 4a. losing a shard degrades the bound, not the service -----------
    sharded.quarantine_shard(plan.names[0], "simulated corruption")
    merged = sharded.merged_count(pattern)
    print(f"with {plan.names[0]} quarantined: model "
          f"{merged.error_model.value}, count {merged.count}, "
          f"interval [{merged.lo}, {merged.hi}] (truth {truth})")
    assert merged.lo <= truth <= merged.hi
    sharded.readmit_shard(plan.names[0])

    # -- 4b. the watchdog convicts a single lying shard -------------------
    service = build_sharded_ladder(plan, L, deadline_seconds=None)
    apx_tier = next(t for t in service.tiers if t.name == "apx-sharded")
    victim = plan.names[2]

    class Lies:
        """A per-shard estimator whose counts drift silently upward."""

        def __init__(self, inner):
            self._inner = inner

        def count(self, pattern):
            return self._inner.count(pattern) + 500

        @property
        def error_model(self):
            return self._inner.error_model

        @property
        def threshold(self):
            return self._inner.threshold

        @property
        def text_length(self):
            return self._inner.text_length

        @property
        def alphabet(self):
            return self._inner.alphabet

        def space_report(self):
            return self._inner.space_report()

    apx_tier.estimator.replace_shard(
        victim, Lies(apx_tier.estimator.estimator_for(victim))
    )
    apx_tier.replace_estimator(apx_tier.estimator)

    probes = {p: c for p, c in probes_from_text(mono, seed=5).items()
              if ROW_SEPARATOR not in p}
    watchdog = CorruptionWatchdog(service, probes,
                                  probes_per_round=len(probes), seed=1)
    watchdog.run_probe_round()
    for event in watchdog.events:
        print(event.summary())
    report = watchdog.report()
    print(report.format())
    assert any(e.shard == victim and e.readmitted for e in watchdog.events)
    assert not apx_tier.quarantined  # the tier itself never left service
    print("\nshard quarantine history exported:",
          len(report.to_json()), "bytes of JSON")


if __name__ == "__main__":
    main()

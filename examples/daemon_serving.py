#!/usr/bin/env python3
"""The supervised serving daemon: crash-only control plane, hot reloads.

Operations question: "a worker fleet serves a corpus that keeps
mutating — who respawns dead workers, how does a new generation go
live without dropping queries, and what happens when the supervisor
itself dies mid-flip?" This example walks the control plane:

1. `Supervisor` over a live corpus — one worker process per published
   shared-memory segment, every answer stamped with its generation;
2. a hot reload — ingest, then publish → attach → activate → release;
   queries keep flowing and the old generation's shared blocks are
   reclaimed only after the drain barrier;
3. a SIGKILLed worker — degraded-but-sound `UPPER_BOUND` answers while
   the monitor respawns it under jittered backoff;
4. a crash-looping worker — the backoff budget burns out, the worker
   is condemned (no respawn storm), and an operator revive restores
   exact service;
5. a simulated crash at a flip boundary, then crash-only recovery:
   `Supervisor.open` re-derives everything from the corpus's durable
   state and serves the latest committed generation.

Run:  python examples/daemon_serving.py
"""

import os
import signal
import tempfile
import time
from pathlib import Path

from repro.daemon import BackoffPolicy, Supervisor
from repro.live import LiveCorpus
from repro.service.faults import (
    DaemonFaultInjector,
    DaemonFaultSpec,
    SimulatedCrashError,
)

DOCS = {
    "alpha": "abracadabra stew",
    "beta": "banana bandana cabana",
    "gamma": "the quick brown fox jumps over the lazy dog",
}


def naive(docs: dict, pattern: str) -> int:
    total = 0
    for body in docs.values():
        start = body.find(pattern)
        while start != -1:
            total += 1
            start = body.find(pattern, start + 1)
    return total


def show(sup: Supervisor, docs: dict, pattern: str) -> None:
    answer = sup.merged_count(pattern)
    truth = naive(docs, pattern)
    tag = "exact" if answer.exact else answer.error_model.name
    flag = " DEGRADED" if answer.degraded else ""
    print(f"  g{answer.generation} count({pattern!r}) = "
          f"[{answer.lo}, {answer.hi}] ({tag}{flag}; truth {truth})")
    assert answer.lo <= truth <= answer.hi


def wait_until(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise TimeoutError("condition not reached")


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        base = Path(scratch) / "corpus"
        corpus = LiveCorpus.create(base, l=4, shards=2)
        docs = dict(DOCS)
        for name, body in docs.items():
            corpus.append(name, body)
        corpus.compact()

        # -- 1. a supervised fleet ---------------------------------------
        sup = Supervisor(corpus, owns_corpus=True, heartbeat_interval=0.1)
        sup.start()
        status = sup.status()
        print(f"serving generation {status['generation']['number']}: "
              f"{len(status['workers'])} worker(s) over "
              f"{len(status['generation']['segments'])} shared segment(s)")
        show(sup, docs, "ab")
        show(sup, docs, "the")

        # -- 2. hot reload ------------------------------------------------
        corpus.append("delta", "mississippi river delta")
        docs["delta"] = "mississippi river delta"
        sup.reload(compact=False)
        print(f"hot reload: generation {sup.generation.number} active, "
              f"old pool released after drain")
        show(sup, docs, "issi")

        # -- 3. SIGKILL one worker ---------------------------------------
        os.kill(sup.worker_pid(0), signal.SIGKILL)
        show(sup, docs, "ab")   # sound either way: ceiling or exact
        wait_until(lambda: not sup.merged_count("ab").degraded)
        print(f"worker respawned (stats: {sup.stats['respawns']} "
              f"respawn(s) so far)")
        show(sup, docs, "ab")
        sup.close()

        # -- 4. crash loop -> condemnation -> operator revive -------------
        corpus = LiveCorpus.open(base)
        sup = Supervisor(
            corpus, owns_corpus=True, heartbeat_interval=0.05,
            backoff=BackoffPolicy(base=0.01, cap=0.05, max_failures=3,
                                  window=8.0),
        )
        sup.start()
        kills = 0
        while not sup.worker_states()[0]["condemned"]:
            pid = sup.worker_pid(0)
            if pid is not None:
                try:
                    os.kill(pid, signal.SIGKILL)
                    kills += 1
                except ProcessLookupError:
                    pass  # died between the pid read and the kill
            time.sleep(0.1)
        print(f"worker condemned after {kills} kill(s): shard serves "
              f"sound upper bounds, no respawn storm")
        show(sup, docs, "ab")
        sup.revive_worker(0)
        wait_until(lambda: not sup.merged_count("ab").degraded)
        print("operator revive: full-precision service restored")
        show(sup, docs, "ab")
        sup.close()

        # -- 5. crash mid-flip, then crash-only recovery ------------------
        corpus = LiveCorpus.open(base)
        sup = Supervisor(corpus, owns_corpus=True, heartbeat_interval=0.1)
        sup.start()
        corpus.append("epsilon", "only the newest document says epsilon")
        docs["epsilon"] = "only the newest document says epsilon"
        sup.arm_faults(DaemonFaultInjector(
            [DaemonFaultSpec(site="flip_activate", at=1)]
        ))
        try:
            sup.reload(compact=False)
        except SimulatedCrashError:
            print("supervisor 'crashed' between attach and activate; "
                  "old generation still serving:")
        sup.arm_faults(None)
        show(sup, docs, "the")
        sup.close()

        sup = Supervisor.open(base, heartbeat_interval=0.1)
        print(f"crash-only restart: re-derived generation "
              f"{sup.generation.number} from the committed manifest + "
              f"WAL tail ('epsilon' was acked, so it serves)")
        show(sup, docs, "epsilon")
        sup.close()
    print("done — every answer bracketed the truth through every failure")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Serving substring counts under concurrent load.

Operations question: "16 clients hammer the estimator at once, one
in-memory structure silently rots — what do the clients see?" This
example stands up a `QueryServer` over the four-tier degradation ladder
and walks through the serving-front machinery:

1. admission control sheds overload to the always-available statistics
   tier (a sound upper bound) instead of queueing past the deadline;
2. per-tier bulkheads keep a slow tier from starving the others;
3. a `CorruptionWatchdog` catches a silently bit-flipped primary via
   differential probes, quarantines it, rebuilds it from text, and
   readmits it — while traffic keeps flowing.

Run:  python examples/concurrent_server.py
"""

import threading
from collections import Counter

from repro.core import CompactPrunedSuffixTree
from repro.datasets import generate_sources
from repro.service import (
    CorruptionWatchdog,
    FaultSpec,
    FaultyIndex,
    QueryServer,
    build_default_ladder,
    default_rebuilders,
    probes_from_text,
)
from repro.textutil import Text, mixed_workload

CORPUS_SIZE = 20_000
L = 16
THREADS = 16


def main() -> None:
    text = Text(generate_sources(CORPUS_SIZE, seed=11))
    print(f"corpus: {CORPUS_SIZE} chars of source code, ladder l={L}\n")

    # -- a primary whose counts come back silently bit-flipped ------------
    spec = FaultSpec(corrupt_rate=1.0, corrupt_mode="bitflip")
    corrupted = FaultyIndex(
        CompactPrunedSuffixTree(text, L),
        {"count_or_none": spec, "automaton_count": spec},
        seed=3,
    )
    service = build_default_ladder(text, L, primary=corrupted,
                                   deadline_seconds=5.0)

    # -- watchdog: differential probes with build-time ground truth -------
    probes = probes_from_text(text, per_length=4, seed=7)
    watchdog = CorruptionWatchdog(
        service, probes,
        rebuilders=default_rebuilders(text, L),
        probes_per_round=8, seed=7,
    )
    print(f"watchdog armed with {len(probes)} differential probes")
    watchdog.run_probe_round()
    for event in watchdog.events:
        print(f"  {event.summary()}")
    cpst = service.tiers[0]
    print(f"  cpst after the round: quarantined={cpst.quarantined}, "
          f"breaker={cpst.breaker.state.value}\n")

    # -- 16 threads through the server, every reply audited ---------------
    server = QueryServer(
        service,
        max_concurrent=THREADS,
        max_waiting=4 * THREADS,
        max_wait=1.0,
        bulkhead_limits={"cpst": 8, "apx": 8},
    )
    workload = mixed_workload(text, per_length=6, seed=7)
    truth = {pattern: text.count_naive(pattern) for pattern in workload}
    replies = [[] for _ in range(THREADS)]

    def client(idx: int) -> None:
        for pattern in workload:
            replies[idx].append(server.query(pattern))

    with server:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()

    total = sum(len(bucket) for bucket in replies)
    served_by = Counter(reply.tier for bucket in replies for reply in bucket)
    valid = sum(
        reply.contract_holds(truth[reply.pattern], len(text))
        for bucket in replies for reply in bucket
    )
    print(f"{THREADS} threads x {len(workload)} patterns "
          f"-> {total} replies, {valid} contract-valid")
    print("served by tier:",
          ", ".join(f"{tier}={count}" for tier, count in served_by.most_common()))
    print("server:", stats.summary())

    assert valid == total, "every reply must honor its declared error model"
    for idx in range(THREADS):
        assert Counter(r.pattern for r in replies[idx]) == Counter(workload), \
            "no reply may be lost or duplicated"
    print("\nall replies honored their declared error models; "
          "the rebuilt primary served again after readmission")


if __name__ == "__main__":
    main()

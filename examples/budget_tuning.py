#!/usr/bin/env python3
"""Fitting an index to a space budget, and threshold laddering.

Operations question: "I can spare 64 KiB for the substring-count index of
this corpus — what accuracy does that buy?" This example answers it with
`fit_threshold` (binary-searches the smallest threshold whose index fits)
and then shows `ThresholdLadder` resolving queries at the cheapest
sufficient level.

Run:  python examples/budget_tuning.py
"""

from repro import (
    ApproxIndex,
    CompactPrunedSuffixTree,
    ThresholdLadder,
    fit_threshold,
    text_bits,
)
from repro.textutil import Text
from repro.datasets import generate_sources

CORPUS_SIZE = 60_000


def main() -> None:
    text = Text(generate_sources(CORPUS_SIZE, seed=4))
    reference = text_bits(len(text), text.sigma)
    print(f"corpus: {CORPUS_SIZE} chars of source code "
          f"({reference // 8 // 1024} KiB packed)\n")

    print(f"{'budget':>10} {'CPST l':>8} {'APX l':>8}   guarantee bought")
    for percent in (2, 5, 10, 25):
        budget = reference * percent // 100
        cpst_l, _ = fit_threshold(text, budget, CompactPrunedSuffixTree)
        apx_l, _ = fit_threshold(text, budget, ApproxIndex)
        print(f"{percent:>9}% {cpst_l:>8} {apx_l:>8}   "
              f"exact counts for patterns occurring >= {cpst_l} times")

    print("\nthreshold ladder (CPSTs at 256/64/16), query routing:")
    ladder = ThresholdLadder(text, [256, 64, 16])
    report = ladder.space_report()
    for level, bits in sorted(report.components.items()):
        print(f"  {level:<10} {bits / 8 / 1024:7.1f} KiB")
    print(f"  total      {report.payload_bits / 8 / 1024:7.1f} KiB\n")

    queries = [
        "self->items",          # boilerplate: resolved at the top level
        "static int hashmap_c",  # rarer: resolved deeper
        "goto fail",            # absent: falls through all levels
    ]
    for pattern in queries:
        resolved = ladder.resolve(pattern)
        if resolved is None:
            print(f"  {pattern!r}: occurs fewer than {ladder.threshold} times")
        else:
            level, count = resolved
            print(f"  {pattern!r}: {count} occurrences "
                  f"(answered by the l={level} level)")


if __name__ == "__main__":
    main()

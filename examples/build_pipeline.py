#!/usr/bin/env python3
"""The unified build pipeline: one suffix sort, every index.

Shows the three layers of `repro.build`:

* `BuildContext` — the shared artifact store (suffix array, LCP, BWT,
  pruned structures) computed lazily, exactly once per text;
* `build_all` — many indexes from one context, optionally in parallel,
  with a per-stage telemetry report;
* `ArtifactCache` — the optional on-disk store that makes the *next*
  process's build skip the suffix sort entirely.

Run:  python examples/build_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import ArtifactCache, BuildContext, IndexSpec, build_all
from repro.datasets import generate_english

CORPUS_SIZE = 30_000
THRESHOLD = 32

SPECS = [
    IndexSpec("cpst", params={"l": THRESHOLD}),
    IndexSpec("apx", params={"l": THRESHOLD}),
    IndexSpec("fm"),
    IndexSpec("qgram", params={"q": 6}),
]


def main() -> None:
    corpus = generate_english(CORPUS_SIZE, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(Path(tmp))

        # -- cold build: artifacts computed once, indexes on 4 threads --
        ctx = BuildContext(corpus, cache=cache, name="english")
        result = build_all(ctx, SPECS, max_workers=4)
        print(result.report.format())

        cpst, fm = result["cpst"], result["fm"]
        for pattern in ("the", "of the", "zqzqzq"):
            exact = fm.count(pattern)
            certified = cpst.count_or_none(pattern)
            print(f"  {pattern!r}: exact={exact} "
                  f"cpst={'declined' if certified is None else certified}")

        # -- warm build: a *new* context (think: a new process) recovers
        #    the suffix array and BWT from the on-disk cache ------------
        warm = build_all(BuildContext(corpus, cache=cache, name="english"),
                         SPECS)
        cached = [r for r in warm.report.stages if r.source == "cache"]
        print(f"\nwarm rebuild: {len(cached)} artifact(s) loaded from the "
              f"cache ({', '.join(r.stage for r in cached)})")
        print(f"cache counters: hits={cache.hits} stores={cache.stores} "
              f"rejected={cache.rejected}")

        # Both paths produce identical indexes.
        assert warm["fm"].count("the") == fm.count("the")
        print("\ncold and warm builds answer identically — "
              "the cache changes cost, never answers")


if __name__ == "__main__":
    main()

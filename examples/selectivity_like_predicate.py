#!/usr/bin/env python3
"""Selectivity estimation for SQL LIKE '%P%' predicates — the paper's
motivating application.

Scenario: a database has a textual column (here: synthetic bibliographic
records). The query optimiser must estimate, for an arbitrary pattern P,
how many rows satisfy ``title LIKE '%P%'`` — *without* scanning the table
and within a tiny memory budget.

Pipeline (paper Sections 1 and 7.2):

1. concatenate the rows into ``T(R) = ▷R1▷R2▷…▷Rn▷``;
2. build a CPST over T(R) — exact counts for frequent substrings,
   below-threshold detection otherwise;
3. run the MOL estimator on top for infrequent patterns.

Run:  python examples/selectivity_like_predicate.py
"""

import numpy as np

from repro import CompactPrunedSuffixTree, MOLEstimator, Text, text_bits
from repro.datasets.xml_dblp import _GIVEN, _SURNAMES, _TITLE_WORDS

NUM_ROWS = 4_000
ERROR_THRESHOLD = 16


def make_rows(seed: int = 7) -> list[str]:
    """Synthetic 'title' column rows."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(NUM_ROWS):
        words = [
            _TITLE_WORDS[int(i)]
            for i in rng.choice(len(_TITLE_WORDS), size=int(rng.integers(3, 8)))
        ]
        author = (
            _GIVEN[int(rng.integers(0, len(_GIVEN)))]
            + " "
            + _SURNAMES[int(rng.integers(0, len(_SURNAMES)))]
        )
        rows.append(" ".join(words) + " by " + author)
    return rows


def rows_matching(rows: list[str], pattern: str) -> int:
    return sum(1 for row in rows if pattern in row)


def main() -> None:
    rows = make_rows()
    text = Text.from_rows(rows)
    index = CompactPrunedSuffixTree(text, ERROR_THRESHOLD)
    estimator = MOLEstimator(index)

    budget = index.space_report().payload_bits
    raw = text_bits(len(text), text.sigma)
    print(f"{len(rows)} rows, {len(text)} chars concatenated")
    print(f"index budget: {budget / 8 / 1024:.1f} KiB "
          f"({100 * budget / raw:.1f}% of the packed column)\n")

    predicates = [
        "index",          # frequent word
        "suffix tree",    # frequent phrase
        "optimal substring",  # rarer combination
        "by Alessio",     # author lookup
        "quantum blockchain",  # absent
    ]
    print(f"{'LIKE pattern':<24} {'occurrences':>12} {'estimate':>10} {'certified?':>11}")
    for pattern in predicates:
        true = text.count_naive(pattern)
        estimate = estimator.estimate(pattern)
        certified = index.count_or_none(pattern) is not None
        print(f"%{pattern}%".ljust(24)
              + f" {true:>12} {estimate:>10.1f} {str(certified):>11}")

    print("\nnote: occurrence counts on T(R) upper-bound matching rows; the")
    print("row separator ▷ guarantees patterns never straddle two rows.")
    sample = "suffix tree"
    print(f"rows actually containing {sample!r}: {rows_matching(rows, sample)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Frequent-substring mining over service logs on a memory budget.

Operations scenario: a service emits millions of log lines; we want to
answer "how often does this error signature appear?" for *ad-hoc* substring
queries (not pre-aggregated counters), but shipping the full log to the
analysis box is not an option.

The CPST is a perfect fit: any signature occurring at least ``l`` times is
counted *exactly*; rarer ones are certified as "below threshold", which for
triage means "not your outage". We also demo threshold laddering: a stack
of CPSTs at decreasing ``l`` lets the analyst zoom in only when needed.

Run:  python examples/log_mining.py
"""

import numpy as np

from repro import CompactPrunedSuffixTree, Text, text_bits

SERVICES = ["auth", "billing", "search", "cart", "gateway"]
ERRORS = [
    ("timeout connecting to upstream", 40),
    ("connection reset by peer", 25),
    ("TLS handshake failed", 12),
    ("out of file descriptors", 4),
    ("checksum mismatch on shard", 2),
]
INFO = ["request served", "cache hit", "cache miss", "healthcheck ok"]


def make_log(lines: int = 3_000, seed: int = 3) -> str:
    rng = np.random.default_rng(seed)
    error_names = [name for name, _ in ERRORS]
    error_weights = np.array([w for _, w in ERRORS], dtype=float)
    error_weights /= error_weights.sum()
    rows = []
    for i in range(lines):
        service = SERVICES[int(rng.integers(0, len(SERVICES)))]
        if rng.random() < 0.2:
            message = error_names[int(rng.choice(len(ERRORS), p=error_weights))]
            level = "ERROR"
        else:
            message = INFO[int(rng.integers(0, len(INFO)))]
            level = "INFO"
        rows.append(f"2026-07-04T10:{i % 60:02d}:{i % 59:02d} {level} [{service}] {message}")
    return "\n".join(rows)


def main() -> None:
    log = make_log()
    text = Text(log)
    raw = text_bits(len(text), text.sigma)
    print(f"log: {len(log):,} chars, {log.count(chr(10)) + 1:,} lines\n")

    ladder = [256, 64, 16]
    indexes = {l: CompactPrunedSuffixTree(text, l) for l in ladder}
    for l in ladder:
        bits = indexes[l].space_report().payload_bits
        print(f"CPST-{l:<4} {bits / 8 / 1024:7.1f} KiB  "
              f"({100 * bits / raw:5.2f}% of the packed log)")

    signatures = [
        "ERROR [auth]",
        "timeout connecting",
        "TLS handshake failed",
        "checksum mismatch",
        "kernel panic",
    ]
    print(f"\n{'signature':<26} " + " ".join(f"{'CPST-' + str(l):>10}" for l in ladder)
          + f" {'true':>7}")
    for signature in signatures:
        answers = []
        for l in ladder:
            got = indexes[l].count_or_none(signature)
            answers.append("<" + str(l) if got is None else str(got))
        true = text.count_naive(signature)
        print(f"{signature:<26} " + " ".join(f"{a:>10}" for a in answers)
              + f" {true:>7}")

    print("\nthreshold laddering: read left to right — the cheapest index that")
    print("certifies a count answers the query; '<l' means 'fewer than l hits'.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""An n-gram language model served straight from a compressed index.

P(c | context) = Count(context+c) / Count(context) — so a substring-count
index IS a character language model over its corpus. This example scores
strings (in-domain vs gibberish), generates text, and shows the space
knob: with an APX backend the model runs in a fraction of the corpus size
at a bounded perturbation.

Run:  python examples/index_backed_lm.py
"""

from repro import ApproxIndex, FMIndex, Text, text_bits
from repro.applications import NGramModel
from repro.datasets import generate_english

CORPUS_SIZE = 40_000
ORDER = 4


def main() -> None:
    text = Text(generate_english(CORPUS_SIZE, seed=21))
    reference = text_bits(len(text), text.sigma)
    exact_model = NGramModel(FMIndex(text), order=ORDER)
    tiny_backend = ApproxIndex(text, 32)
    tiny_model = NGramModel(tiny_backend, order=ORDER)
    tiny_bits = tiny_backend.space_report().payload_bits
    print(f"corpus: {CORPUS_SIZE} chars; APX-32 backend = "
          f"{100 * tiny_bits / reference:.1f}% of the packed text\n")

    probes = [
        ("in-domain", "the people said there was water"),
        ("shuffled", "eht elpoep dias ereht saw retaw"),
        ("gibberish", "zq xv jj qqq kxw zzz pqz"),
    ]
    print(f"{'string kind':<12} {'exact ppl':>10} {'APX ppl':>9}")
    for kind, probe in probes:
        print(f"{kind:<12} {exact_model.perplexity(probe):>10.2f} "
              f"{tiny_model.perplexity(probe):>9.2f}")

    print("\nnext-character distribution after 'the ':")
    dist = exact_model.distribution("the ")
    for ch, p in sorted(dist.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {ch!r}: {p:.3f}")

    print("\nindex-generated text (exact backend):")
    print("  " + repr(exact_model.generate(120, seed=7, prompt="the ")))
    print("index-generated text (APX backend, ~1/8 of the space):")
    print("  " + repr(tiny_model.generate(120, seed=7, prompt="the ")))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build every index over one text and compare their answers.

Walks through the library's core promise — approximate counting with
guaranteed error in a fraction of the text's space:

* the exact FM-index baseline,
* APX_l      (uniform error: answer in [true, true + l - 1]),
* CPST_l     (lower-sided error: exact when the count is >= l),
* the classical PST and Patricia baselines for contrast.

Run:  python examples/quickstart.py
"""

from repro import (
    ApproxIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    PrunedPatriciaTrie,
    PrunedSuffixTree,
    Text,
    text_bits,
)
from repro.datasets import generate_english

ERROR_THRESHOLD = 32
CORPUS_SIZE = 40_000


def main() -> None:
    text = Text(generate_english(CORPUS_SIZE, seed=42))
    reference_bits = text_bits(len(text), text.sigma)
    print(f"corpus: {len(text)} chars, sigma = {text.sigma}, "
          f"packed size = {reference_bits // 8} bytes\n")

    print("building indexes ...")
    fm = FMIndex(text)
    apx = ApproxIndex(text, ERROR_THRESHOLD)
    cpst = CompactPrunedSuffixTree(text, ERROR_THRESHOLD)
    pst = PrunedSuffixTree(text, ERROR_THRESHOLD)
    patricia = PrunedPatriciaTrie(text, ERROR_THRESHOLD)

    print(f"\n{'index':<14} {'payload bits':>14} {'% of text':>10}")
    for index in (fm, apx, cpst, pst, patricia):
        report = index.space_report()
        print(f"{report.name:<14} {report.payload_bits:>14,} "
              f"{100 * report.payload_bits / reference_bits:>9.2f}%")

    patterns = ["the", "and ", "the cat", "of the", "zqzqzq"]
    print(f"\n{'pattern':<10} {'true':>6} {'FM':>6} {'APX':>6} "
          f"{'CPST':>6} {'PST':>6} {'Patricia':>9}")
    for pattern in patterns:
        true = text.count_naive(pattern)
        row = [
            fm.count(pattern),
            apx.count(pattern),
            cpst.count(pattern),
            pst.count(pattern),
            patricia.count(pattern),
        ]
        print(f"{pattern!r:<10} {true:>6} " + " ".join(f"{v:>6}" for v in row[:-1])
              + f" {row[-1]:>9}")

    print(f"\nguarantees at l = {ERROR_THRESHOLD}:")
    print("  APX : true <= estimate <= true + l - 1 for EVERY pattern")
    print("  CPST: estimate == true whenever true >= l; below-threshold "
          "patterns are detected:")
    for pattern in ("the cat", "the"):
        verdict = cpst.count_or_none(pattern)
        print(f"    cpst.count_or_none({pattern!r}) = {verdict}")


if __name__ == "__main__":
    main()

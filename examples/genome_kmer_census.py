#!/usr/bin/env python3
"""Approximate k-mer frequency census over a genome-scale sequence.

Bioinformatics pipelines often need rough k-mer abundance classes (unique /
moderate / repetitive) rather than exact counts. The APX index delivers a
guaranteed additive error at a fraction of the sequence's size — and the
error threshold ``l`` is exactly the resolution of the census classes.

This example builds APX_l over a synthetic chromosome, classifies sampled
k-mers by approximate abundance, and verifies the classification against
the truth (a class can only be off by one because the estimate is within
``l``).

Run:  python examples/genome_kmer_census.py
"""

import numpy as np

from repro import ApproxIndex, Text, text_bits
from repro.datasets import generate_dna

CHROMOSOME_LENGTH = 60_000
K = 12
ERROR_THRESHOLD = 16  # census resolution
CLASSES = [(0, "absent/unique-ish"), (16, "moderate"), (64, "repetitive"), (256, "high-copy")]


def classify(count: float) -> str:
    label = CLASSES[0][1]
    for bound, name in CLASSES:
        if count >= bound:
            label = name
    return label


def main() -> None:
    sequence = generate_dna(CHROMOSOME_LENGTH, seed=11)
    text = Text(sequence)
    index = ApproxIndex(text, ERROR_THRESHOLD)

    report = index.space_report()
    raw = text_bits(len(text), text.sigma)
    print(f"chromosome: {CHROMOSOME_LENGTH} bp, sigma = {text.sigma}")
    print(f"APX-{ERROR_THRESHOLD} index: {report.payload_bits / 8 / 1024:.1f} KiB "
          f"({100 * report.payload_bits / raw:.1f}% of the packed sequence)\n")

    rng = np.random.default_rng(5)
    starts = rng.integers(0, CHROMOSOME_LENGTH - K, size=300)
    kmers = sorted({sequence[s : s + K].replace("\n", "") for s in starts})
    kmers = [kmer for kmer in kmers if len(kmer) == K][:12]

    print(f"{'k-mer':<{K+2}} {'true':>6} {'estimate':>9} {'class':>18} {'ok?':>4}")
    agreements = 0
    for kmer in kmers:
        true = text.count_naive(kmer)
        estimate = index.count(kmer)
        assert true <= estimate <= true + ERROR_THRESHOLD - 1
        ok = classify(estimate) == classify(true)
        agreements += ok
        print(f"{kmer:<{K+2}} {true:>6} {estimate:>9} {classify(estimate):>18} "
              f"{'yes' if ok else '≈':>4}")
    print(f"\nclass agreement: {agreements}/{len(kmers)} "
          f"(disagreements are at most one class off, by the error bound)")

    # Census over many k-mers: abundance histogram from estimates alone.
    histogram: dict[str, int] = {}
    for start in rng.integers(0, CHROMOSOME_LENGTH - K, size=500):
        kmer = sequence[start : start + K]
        if "\n" in kmer:
            continue
        histogram[classify(index.count(kmer))] = (
            histogram.get(classify(index.count(kmer)), 0) + 1
        )
    print("\nabundance census over 500 sampled k-mers:")
    for _, name in CLASSES:
        if name in histogram:
            print(f"  {name:<18} {histogram[name]:>5}")


if __name__ == "__main__":
    main()

"""Tests for the live corpus plane: WAL, manifest, delta, LiveCorpus.

Crash-boundary and differential recovery properties live in
``test_live_recovery.py``; this module covers the components and the
happy-path lifecycle.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    IndexCorruptedError,
    InvalidParameterError,
    PatternError,
)
from repro.live import (
    DeltaShard,
    LiveConfig,
    LiveCorpus,
    Manifest,
    WalRecord,
    WriteAheadLog,
    commit_manifest,
    count_overlapping,
    latest_manifest,
    read_segment,
    scan_records,
    segment_name,
    verify_segments,
    write_segment,
)
from repro.live.manifest import ShardEntry

from conftest import naive_count

DOCS = {
    "alpha": "abracadabra",
    "beta": "banana bandana",
    "gamma": "the quick brown fox jumps over the lazy dog",
    "delta": "mississippi",
}


# -- WAL ----------------------------------------------------------------------


class TestWalFraming:
    def test_roundtrip_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.open()
        records = [
            WalRecord("append", 0, "a", "body a"),
            WalRecord("append", 1, "b", "çirç ünï"),
            WalRecord("delete", 2, "a"),
        ]
        for record in records:
            wal.append(record)
        wal.close()
        assert WriteAheadLog(tmp_path / "wal.log").open() == records

    def test_scan_stops_at_torn_frame(self):
        whole = WalRecord("append", 0, "a", "x").encode()
        torn = WalRecord("append", 1, "b", "y").encode()[:-3]
        records, valid = scan_records(whole + torn)
        assert [r.seq for r in records] == [0]
        assert valid == len(whole)

    def test_scan_stops_at_crc_mismatch(self):
        first = WalRecord("append", 0, "a", "x").encode()
        second = bytearray(WalRecord("append", 1, "b", "y").encode())
        second[-1] ^= 0xFF  # flip a payload bit; CRC no longer matches
        records, valid = scan_records(bytes(first) + bytes(second))
        assert [r.seq for r in records] == [0]
        assert valid == len(first)

    def test_scan_stops_at_bad_magic(self):
        first = WalRecord("append", 0, "a", "x").encode()
        records, valid = scan_records(first + b"JUNKJUNKJUNKJUNK")
        assert len(records) == 1
        assert valid == len(first)

    def test_open_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append(WalRecord("append", 0, "a", "x"))
        wal.close()
        whole = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(WalRecord("append", 1, "b", "y").encode()[:7])
        healed = WriteAheadLog(path)
        records = healed.open()
        assert [r.seq for r in records] == [0]
        assert path.stat().st_size == whole
        # Appending after the heal lands on a clean boundary.
        healed.append(WalRecord("append", 1, "b", "y"))
        healed.close()
        assert [r.seq for r in WriteAheadLog(path).open()] == [0, 1]

    def test_rewrite_keeps_only_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.open()
        for seq in range(4):
            wal.append(WalRecord("append", seq, f"d{seq}", "x"))
        wal.rewrite([WalRecord("append", 3, "d3", "x")])
        wal.close()
        assert [r.seq for r in WriteAheadLog(path).open()] == [3]

    def test_record_validation(self):
        with pytest.raises(InvalidParameterError):
            WalRecord("rename", 0, "a")
        with pytest.raises(InvalidParameterError):
            WalRecord("append", -1, "a", "x")
        with pytest.raises(InvalidParameterError):
            WalRecord("append", 0, "a")  # append without a body

    def test_append_requires_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(InvalidParameterError):
            wal.append(WalRecord("delete", 0, "a"))


# -- manifest -----------------------------------------------------------------


class TestManifest:
    def _manifest(self, generation=1):
        return Manifest(
            generation=generation,
            wal_start_seq=7,
            config=LiveConfig(kind="cpst", l=32, shards=2),
            shards=(
                ShardEntry(
                    name="shard0",
                    documents=("alpha", "beta"),
                    segment="seg-1-shard0.rseg",
                    segment_digest="d" * 64,
                    index="idx-1-shard0.ridx",
                ),
            ),
        )

    def test_roundtrip(self):
        manifest = self._manifest()
        decoded = Manifest.decode(manifest.encode(), source="mem")
        assert decoded == manifest
        assert decoded.config.l == 32
        assert decoded.shards[0].documents == ("alpha", "beta")

    def test_decode_rejects_torn_and_corrupt(self):
        data = self._manifest().encode()
        with pytest.raises(IndexCorruptedError):
            Manifest.decode(data[: len(data) // 2], source="torn")
        flipped = bytearray(data)
        flipped[-1] ^= 0xFF
        with pytest.raises(IndexCorruptedError):
            Manifest.decode(bytes(flipped), source="flipped")
        with pytest.raises(IndexCorruptedError):
            Manifest.decode(b"NOTMAN", source="junk")

    def test_latest_manifest_falls_back_past_corruption(self, tmp_path):
        old = self._manifest(generation=1)
        new = self._manifest(generation=2)
        commit_manifest(tmp_path, old)
        commit_manifest(tmp_path, new)
        # Tear the newest on disk: recovery must fall back to gen 1.
        newest = tmp_path / new.filename
        newest.write_bytes(newest.read_bytes()[:20])
        manifest, rejected = latest_manifest(tmp_path)
        assert manifest is not None and manifest.generation == 1
        assert [p.name for p in rejected] == [new.filename]

    def test_latest_manifest_empty_directory(self, tmp_path):
        manifest, rejected = latest_manifest(tmp_path)
        assert manifest is None and rejected == []

    def test_segment_roundtrip_and_digest_check(self, tmp_path):
        path = tmp_path / segment_name(1, "shard0")
        digest = write_segment(path, "alpha\x1ebeta")
        assert read_segment(path) == "alpha\x1ebeta"
        torn = path.read_bytes()[:-2]
        path.write_bytes(torn)
        with pytest.raises(IndexCorruptedError):
            read_segment(path)
        # verify_segments cross-checks the manifest's recorded digest.
        write_segment(path, "alpha\x1ebeta")
        manifest = Manifest(
            generation=1,
            wal_start_seq=0,
            config=LiveConfig(),
            shards=(
                ShardEntry(
                    name="shard0",
                    documents=("alpha", "beta"),
                    segment=path.name,
                    segment_digest=digest,
                    index="idx-1-shard0.ridx",
                ),
            ),
        )
        assert verify_segments(tmp_path, manifest) == {
            "shard0": "alpha\x1ebeta"
        }
        wrong = Manifest(
            generation=1,
            wal_start_seq=0,
            config=LiveConfig(),
            shards=(
                ShardEntry(
                    name="shard0",
                    documents=("alpha", "beta"),
                    segment=path.name,
                    segment_digest="0" * 64,
                    index="idx-1-shard0.ridx",
                ),
            ),
        )
        with pytest.raises(IndexCorruptedError):
            verify_segments(tmp_path, wrong)

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            LiveConfig(l=1)
        with pytest.raises(InvalidParameterError):
            LiveConfig(shards=0)
        with pytest.raises(InvalidParameterError):
            LiveConfig(separator="->")


# -- delta shard --------------------------------------------------------------


class TestDeltaShard:
    def test_exact_overlapping_counts(self):
        assert count_overlapping("banana", "ana") == 2
        assert count_overlapping("aaaa", "aa") == 3
        assert count_overlapping("abc", "zz") == 0
        delta = DeltaShard()
        delta.add("a", "banana")
        delta.add("b", "cabana")
        assert delta.count("ana") == naive_count("banana", "ana") + naive_count(
            "cabana", "ana"
        )

    def test_membership_and_pending(self):
        delta = DeltaShard()
        delta.add("a", "xx")
        delta.tombstone("gone", 10)
        assert "a" in delta
        assert delta.is_tombstoned("gone")
        assert delta.pending == 2
        delta.remove("a")
        assert delta.pending == 1

    def test_widening_sums_tombstoned_capacity(self):
        delta = DeltaShard()
        delta.tombstone("x", 10)
        delta.tombstone("y", 3)
        # len-1 patterns: 10 + 3; len-4: 7 + 0; longer than both: 7.
        assert delta.widening(1) == 13
        assert delta.widening(4) == 7
        assert delta.widening(10) == 1
        assert delta.widening(11) == 0

    def test_duplicate_and_missing_raise(self):
        delta = DeltaShard()
        delta.add("a", "xx")
        with pytest.raises(InvalidParameterError):
            delta.add("a", "yy")
        with pytest.raises(InvalidParameterError):
            delta.remove("nope")


# -- LiveCorpus lifecycle -----------------------------------------------------


class TestLiveCorpusLifecycle:
    def test_create_append_count_is_exact(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=16, shards=2) as corpus:
            for name, body in DOCS.items():
                corpus.append(name, body)
            assert corpus.error_model.name == "EXACT"
            whole = "\x1e".join(DOCS.values())
            for pattern in ("ana", "the", "a", "zzz"):
                assert corpus.count(pattern) == naive_count(whole, pattern)
                assert corpus.count_or_none(pattern) == corpus.count(pattern)

    def test_append_validation(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c") as corpus:
            corpus.append("a", "body")
            with pytest.raises(InvalidParameterError):
                corpus.append("a", "again")  # duplicate live name
            with pytest.raises(InvalidParameterError):
                corpus.append("b", "")  # empty body
            with pytest.raises(InvalidParameterError):
                corpus.append("c", "bad\x1ebody")  # separator in body
            with pytest.raises(InvalidParameterError):
                corpus.delete("nope")
            with pytest.raises(PatternError):
                corpus.count("")

    def test_compact_folds_delta_and_serves_soundly(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            for name, body in DOCS.items():
                corpus.append(name, body)
            report = corpus.compact()
            assert report.committed and report.documents == len(DOCS)
            assert report.delta_folded == len(DOCS)
            assert corpus.generation == 1
            assert corpus.delta_pending == 0
            assert sorted(corpus.names) == sorted(DOCS)
            whole = "\x1e".join(DOCS.values())
            for pattern in ("ana", "ss", "q", "nothere"):
                lo, hi = corpus.count_interval(pattern)
                assert lo <= naive_count(whole, pattern) <= hi

    def test_mixed_base_and_delta_counts(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            corpus.append("alpha", DOCS["alpha"])
            corpus.compact()
            corpus.append("beta", DOCS["beta"])
            truth = naive_count(DOCS["alpha"], "a") + naive_count(
                DOCS["beta"], "a"
            )
            lo, hi = corpus.count_interval("a")
            assert lo <= truth <= hi
            # The delta contribution is exact: a pattern only in the
            # delta pushes the lower bound up to its true delta count
            # (the shard tier may still widen the upper end).
            lo, hi = corpus.count_interval("bandana")
            assert lo >= 1 and lo <= 1 <= hi

    def test_tombstone_widens_soundly_then_compaction_restores(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            for name, body in DOCS.items():
                corpus.append(name, body)
            corpus.compact()
            corpus.delete("beta")
            assert corpus.error_model.name == "UNIFORM"
            assert corpus.count_or_none("ana") is None
            live = [b for n, b in DOCS.items() if n != "beta"]
            truth = sum(naive_count(b, "ana") for b in live)
            lo, hi = corpus.count_interval("ana")
            assert lo <= truth <= hi
            corpus.compact()
            assert "beta" not in corpus
            assert len(corpus) == len(DOCS) - 1
            lo, hi = corpus.count_interval("ana")
            assert lo <= truth <= hi

    def test_delete_of_uncompacted_doc_is_exact(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c") as corpus:
            corpus.append("a", "banana")
            corpus.delete("a")
            assert corpus.delta_pending == 0
            assert corpus.count("ana") == 0
            assert corpus.error_model.name == "EXACT"

    def test_reopen_rejects_non_corpus(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            LiveCorpus.open(tmp_path)

    def test_create_rejects_existing(self, tmp_path):
        LiveCorpus.create(tmp_path / "c").close()
        with pytest.raises(InvalidParameterError):
            LiveCorpus.create(tmp_path / "c")

    def test_attach_opens_or_creates(self, tmp_path):
        created = LiveCorpus.attach(tmp_path / "c", l=16)
        created.append("a", "xyz")
        created.close()
        reopened = LiveCorpus.attach(tmp_path / "c")
        try:
            assert reopened.config.l == 16
            assert reopened.names == ["a"]
        finally:
            reopened.close()

    def test_compaction_retry_converges_on_digests(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            for name, body in DOCS.items():
                corpus.append(name, body)
            first = corpus.compact()
        # A second process over the same live set (insertion order lost)
        # re-bins to the same canonical shard digests.
        with LiveCorpus.open(tmp_path / "c") as corpus:
            corpus.append("epsilon", "new doc body")
            corpus.delete("epsilon")
            second = corpus.compact()
        assert first.shard_digests == second.shard_digests
        assert second.reuse_hits > 0  # unchanged shards come from cache

    def test_status_and_repr(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c") as corpus:
            corpus.append("a", "abc")
            status = corpus.status()
            assert status["documents"] == 1
            assert status["delta_pending"] == 1
            assert status["next_seq"] == 1
            assert status["wal_bytes"] > 0
            assert "generation=0" in repr(corpus)


# -- estimator surface --------------------------------------------------------


class TestLiveCorpusEstimatorSurface:
    def test_threshold_and_alphabet_and_length(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            for name, body in DOCS.items():
                corpus.append(name, body)
            corpus.compact()
            base_threshold = corpus.threshold
            corpus.delete("alpha")
            assert corpus.threshold == base_threshold + len(DOCS["alpha"])
            assert set("abr").issubset(corpus.alphabet.characters)
            assert corpus.text_length >= sum(
                len(b) for n, b in DOCS.items() if n != "alpha"
            )

    def test_watchdog_delegation(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            with pytest.raises(InvalidParameterError):
                corpus.quarantine_shard("shard0")
            assert not corpus.can_localize()
            for name, body in DOCS.items():
                corpus.append(name, body)
            corpus.compact()
            assert corpus.can_localize()
            assert corpus.degraded_shards == ()
            corpus.quarantine_shard("shard0", "test")
            assert corpus.degraded_shards == ("shard0",)
            assert corpus.error_model.name == "UPPER_BOUND"
            corpus.rebuild_shard("shard0")
            probes = corpus.verify_shard("shard0", ["a", "an"])
            assert all(p.ok for p in probes)
            corpus.readmit_shard("shard0")
            assert corpus.degraded_shards == ()

    def test_space_report_rolls_up_durable_and_resident(self, tmp_path):
        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            for name, body in DOCS.items():
                corpus.append(name, body)
            corpus.compact()
            corpus.append("tail", "still in the delta")
            report = corpus.space_report()
            assert "delta.text" in report.components
            assert report.components["delta.text"] == 8 * len(
                "still in the delta"
            )
            assert any(k.startswith("shards.") for k in report.components)
            durable = {
                k: v for k, v in report.overhead.items()
                if k.startswith("durable.")
            }
            assert set(durable) == {
                "durable.wal",
                "durable.manifest",
                "durable.segments",
                "durable.indexes",
            }
            sizes = corpus.durable_bytes()
            assert durable["durable.segments"] == sizes["segments"] * 8
            assert sizes["wal"] > 0 and sizes["segments"] > 0

    def test_serves_through_resilient_ladder(self, tmp_path):
        from repro.service import ResilientEstimator, Tier

        with LiveCorpus.create(tmp_path / "c", l=8, shards=2) as corpus:
            for name, body in DOCS.items():
                corpus.append(name, body)
            corpus.compact()
            corpus.append("tail", "fresh delta doc")
            service = ResilientEstimator([Tier(corpus, "live")])
            outcome = service.query("ana")
            assert outcome.tier == "live"
            assert outcome.delta_pending == 1
            whole = "\x1e".join(list(DOCS.values()) + ["fresh delta doc"])
            assert outcome.count >= naive_count(whole, "ana")

"""Tests for the APX_l uniform-error index (paper Section 4).

The central property (paper Theorem 7): for every pattern P,

    Count(P) <= ApproxIndex(T, l).count(P) <= Count(P) + l - 1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import ApproxIndex
from repro.core.interface import ErrorModel
from repro.errors import InvalidParameterError, PatternError
from repro.sa import bwt, counts_array
from repro.textutil import Text


def all_substrings(text: str, max_len: int):
    seen = set()
    for length in range(1, max_len + 1):
        for start in range(len(text) - length + 1):
            seen.add(text[start : start + length])
    return sorted(seen)


def assert_uniform_bound(text: str, l: int, patterns):
    t = Text(text)
    apx = ApproxIndex(t, l)
    for pattern in patterns:
        true = t.count_naive(pattern)
        est = apx.count(pattern)
        assert true <= est <= true + l - 1, (
            f"pattern {pattern!r} on text {text!r} with l={l}: "
            f"true={true}, estimate={est}"
        )


class TestApproxValidation:
    def test_l_must_be_even(self):
        with pytest.raises(InvalidParameterError):
            ApproxIndex("abc", 3)

    def test_l_must_be_at_least_two(self):
        with pytest.raises(InvalidParameterError):
            ApproxIndex("abc", 0)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            ApproxIndex("abc", 2).count("")

    def test_metadata(self):
        apx = ApproxIndex("banana", 4)
        assert apx.error_model is ErrorModel.UNIFORM
        assert apx.threshold == 4
        assert apx.text_length == 6
        assert apx.sigma == 4  # $, a, b, n


class TestApproxSmallTexts:
    def test_l2_is_exact(self):
        # h = 1: every occurrence is a discriminant, so counts are exact.
        text = "abracadabra"
        t = Text(text)
        apx = ApproxIndex(t, 2)
        for pattern in all_substrings(text, 5):
            assert apx.count(pattern) == t.count_naive(pattern), pattern

    @pytest.mark.parametrize("l", [2, 4, 8, 16])
    def test_exhaustive_abracadabra(self, l):
        text = "abracadabra" * 3
        assert_uniform_bound(text, l, all_substrings(text, 6))

    @pytest.mark.parametrize("l", [2, 4, 8])
    def test_exhaustive_banana_runs(self, l):
        assert_uniform_bound("banabananab", l, all_substrings("banabananab", 6))

    @pytest.mark.parametrize("l", [2, 4, 8, 32])
    def test_unary_text(self, l):
        # T = a^n, the paper's worst case for the pruned suffix tree.
        n = 60
        text = "a" * n
        t = Text(text)
        apx = ApproxIndex(t, l)
        for k in range(1, n + 1):
            true = n - k + 1
            est = apx.count("a" * k)
            assert true <= est <= true + l - 1, k

    def test_absent_characters(self):
        apx = ApproxIndex("aabb", 4)
        assert apx.count("z") == 0
        assert apx.count("az") == 0

    def test_absent_patterns_bounded(self):
        text = "abcabcabc"
        t = Text(text)
        apx = ApproxIndex(t, 4)
        for pattern in ("ca", "cb", "aa", "bb", "acb", "cab"):
            true = t.count_naive(pattern)
            assert true <= apx.count(pattern) <= true + 3, pattern


class TestApproxRandomTexts:
    @pytest.mark.parametrize("sigma,l", [(2, 4), (2, 16), (4, 8), (8, 8), (26, 64)])
    def test_random_patterns(self, sigma, l, rng):
        chars = [chr(ord("a") + i) for i in range(sigma)]
        text = "".join(rng.choice(chars, size=500))
        patterns = set()
        for length in (1, 2, 3, 4, 6, 10):
            for _ in range(15):
                start = int(rng.integers(0, 500 - length))
                patterns.add(text[start : start + length])
            patterns.add("".join(rng.choice(chars, size=length)))
        assert_uniform_bound(text, l, sorted(patterns))

    def test_highly_repetitive(self, rng):
        text = "abcab" * 100
        assert_uniform_bound(text, 16, all_substrings("abcab" * 3, 8))


class TestApproxInternals:
    def test_discriminant_positions_match_definition(self):
        text = "abracadabra" * 5
        t = Text(text)
        l = 8
        h = l // 2
        apx = ApproxIndex(t, l)
        bwt_arr = bwt(t.data)
        for c in range(1, t.sigma):
            positions = np.flatnonzero(bwt_arr == c)
            n_c = positions.size
            expected = [int(positions[r]) for r in range(0, n_c, h)]
            if n_c and (n_c - 1) % h:
                expected.append(int(positions[-1]))
            total = apx._b.rank(c, len(apx._b))
            got = [apx._discriminant_position(c, p) for p in range(1, total + 1)]
            assert got == expected, c

    def test_fact1_lf_matches_true_lf(self):
        # Fact 1: LF(d) = C[c] + (p-1)*h for sampled discriminants (0-based),
        # and C[c+1]-1 for the last occurrence.
        text = "mississippi" * 8
        t = Text(text)
        l = 4
        apx = ApproxIndex(t, l)
        bwt_arr = bwt(t.data)
        c_arr = counts_array(bwt_arr, t.sigma)
        lst = bwt_arr.tolist()
        for c in range(1, t.sigma):
            total = apx._b.rank(c, len(apx._b))
            for p in range(1, total + 1):
                d = apx._discriminant_position(c, p)
                true_lf = int(c_arr[c]) + sum(1 for x in lst[:d] if x == c)
                assert apx._lf_discriminant(c, p) == true_lf, (c, p)

    def test_num_discriminants_bound(self):
        text = "abcd" * 250
        t = Text(text)
        for l in (4, 8, 32, 128):
            apx = ApproxIndex(t, l)
            n_rows = len(text) + 1
            bound = 2 * n_rows // (l // 2) + 2 * t.sigma
            assert apx.num_discriminants <= bound

    def test_successor_predecessor_against_naive(self):
        text = "banana" * 20
        t = Text(text)
        l = 6  # odd h = 3
        apx = ApproxIndex(t, l)
        bwt_arr = bwt(t.data)
        h = l // 2
        for c in range(1, t.sigma):
            positions = np.flatnonzero(bwt_arr == c)
            n_c = positions.size
            discs = [int(positions[r]) for r in range(0, n_c, h)]
            if n_c and (n_c - 1) % h:
                discs.append(int(positions[-1]))
            for x in range(0, len(bwt_arr), 7):
                succ = apx._successor(c, x)
                expected_succ = next((d for d in discs if d >= x), None)
                assert (succ[1] if succ else None) == expected_succ, (c, x)
                pred = apx._predecessor(c, x)
                expected_pred = next((d for d in reversed(discs) if d <= x), None)
                assert (pred[1] if pred else None) == expected_pred, (c, x)


class TestApproxSpace:
    def test_space_shrinks_with_l(self):
        text = "the quick brown fox jumps over the lazy dog " * 40
        sizes = [
            ApproxIndex(text, l).space_report().payload_bits for l in (4, 16, 64, 256)
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0] / 4

    def test_components_present(self):
        rep = ApproxIndex("banana" * 10, 8).space_report()
        assert set(rep.components) == {"B_block_string", "V_offsets", "C_array"}


@settings(max_examples=60, deadline=None)
@given(
    st.text(alphabet="abc", min_size=1, max_size=150),
    st.text(alphabet="abc", min_size=1, max_size=5),
    st.sampled_from([2, 4, 6, 8, 16]),
)
def test_property_uniform_error_bound(text, pattern, l):
    t = Text(text)
    apx = ApproxIndex(t, l)
    true = t.count_naive(pattern)
    est = apx.count(pattern)
    assert true <= est <= true + l - 1

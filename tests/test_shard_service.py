"""Shard-granular fault isolation through the serving layer.

Corrupting or killing one shard must degrade only that shard: the
watchdog convicts, rebuilds and readmits it while the other k-1 shards
keep answering, and every served outcome names the degraded shards and
the widened-but-sound bound.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.service.watchdog import CorruptionWatchdog, probes_from_text
from repro.shard import MergePolicy, ShardPlan, build_sharded_ladder
from repro.textutil import ROW_SEPARATOR, Text

L = 8
K = 4


class LyingEstimator:
    """Wraps a per-shard estimator and silently overcounts.

    Exposes no automaton protocol, so the lie reaches the fan-out path
    and the sharded product automaton is vetoed rather than bypassed.
    """

    def __init__(self, inner, offset=1000):
        self._inner = inner
        self._offset = offset

    def count(self, pattern):
        return self._inner.count(pattern) + self._offset

    @property
    def error_model(self):
        return self._inner.error_model

    @property
    def threshold(self):
        return self._inner.threshold

    @property
    def text_length(self):
        return self._inner.text_length

    @property
    def alphabet(self):
        return self._inner.alphabet

    def space_report(self):
        return self._inner.space_report()


@pytest.fixture()
def setting():
    rng = random.Random(7)
    rows = ["".join(rng.choice("abcd") for _ in range(500)) for _ in range(12)]
    plan = ShardPlan.for_rows(rows, K)
    service = build_sharded_ladder(plan, L, deadline_seconds=None)
    mono = Text.from_rows(rows)
    probes = {
        pattern: truth
        for pattern, truth in probes_from_text(mono, seed=3).items()
        if ROW_SEPARATOR not in pattern
    }
    return plan, service, mono, probes


def _corrupt_shard(service, shard_name):
    tier = next(t for t in service.tiers if t.name == "apx-sharded")
    sharded = tier.estimator
    sharded.replace_shard(
        shard_name, LyingEstimator(sharded.estimator_for(shard_name))
    )
    tier.replace_estimator(sharded)  # flush the tier's memo
    return tier, sharded


class TestShardGranularWatchdog:
    def test_convicts_only_the_lying_shard(self, setting):
        plan, service, mono, probes = setting
        tier, _ = _corrupt_shard(service, "shard2")
        watchdog = CorruptionWatchdog(
            service, probes, probes_per_round=len(probes), seed=1
        )
        findings = watchdog.run_probe_round()
        assert any(not f.ok and f.tier == "apx-sharded" for f in findings)
        events = watchdog.events
        assert len(events) == 1
        event = events[0]
        assert event.tier == "apx-sharded"
        assert event.shard == "shard2"
        assert event.target == "apx-sharded/shard2"
        # shard-granular: the tier itself never left service
        assert not tier.quarantined
        assert tier.breaker.allow()

    def test_rebuilds_verifies_and_readmits(self, setting):
        plan, service, mono, probes = setting
        tier, sharded = _corrupt_shard(service, "shard1")
        watchdog = CorruptionWatchdog(
            service, probes, probes_per_round=len(probes), seed=1
        )
        watchdog.run_probe_round()
        event = watchdog.events[0]
        assert event.rebuilt and event.readmitted
        assert event.rebuild_seconds >= 0.0
        assert event.verification and all(f.ok for f in event.verification)
        assert all(
            f.tier == "apx-sharded/shard1" for f in event.verification
        )
        assert sharded.degraded_shards == ()
        # the rebuilt shard answers honestly again
        for pattern in list(probes)[:5]:
            truth = mono.count_naive(pattern)
            assert truth <= sharded.count(pattern) <= truth + sharded.threshold - 1

    def test_other_shards_keep_serving_during_quarantine(self, setting):
        plan, service, mono, probes = setting
        tier = next(t for t in service.tiers if t.name == "apx-sharded")
        sharded = tier.estimator
        sharded.quarantine_shard("shard3", "chaos")
        tier.replace_estimator(sharded)
        # knock the certified primary out so the sharded APX tier serves
        service.tiers[0].quarantine("chaos")
        for pattern in list(probes)[:8]:
            outcome = service.query(pattern)
            assert outcome.tier == "apx-sharded"
            assert outcome.shards_degraded == ("shard3",)
            assert outcome.degraded
            lo, hi = outcome.count_interval
            assert lo <= mono.count_naive(pattern) <= hi
        sharded.readmit_shard("shard3")
        service.tiers[0].readmit()

    def test_healthy_outcome_reports_no_shards(self, setting):
        plan, service, mono, probes = setting
        outcome = service.query(next(iter(probes)))
        assert outcome.shards_degraded == ()
        assert outcome.count_interval is None

    def test_report_to_json_includes_shard_history(self, setting):
        plan, service, mono, probes = setting
        _corrupt_shard(service, "shard0")
        watchdog = CorruptionWatchdog(
            service, probes, probes_per_round=len(probes), seed=1
        )
        watchdog.run_probe_round()
        report = watchdog.report()
        payload = json.loads(report.to_json())
        assert payload["events"] == 1
        entry = payload["history"][0]
        assert entry["shard"] == "shard0"
        assert entry["target"] == "apx-sharded/shard0"
        assert entry["rebuilt"] is True
        assert entry["readmitted"] is True
        assert entry["verification_passed"] is True
        assert "shard0" in report.format()

    def test_whole_tier_path_still_works_for_unsharded_tiers(self, setting):
        plan, service, mono, probes = setting
        # Corrupt the monolithic qgram tier: no shard localisation there,
        # so the watchdog must fall back to whole-tier quarantine.
        qgram_tier = next(t for t in service.tiers if t.name == "qgram")
        qgram_tier.replace_estimator(
            LyingEstimator(qgram_tier.estimator, offset=7)
        )
        # make the qgram tier serve by quarantining everything above it
        for tier in service.tiers[:2]:
            tier.quarantine("chaos")
        watchdog = CorruptionWatchdog(
            service, probes, probes_per_round=len(probes), seed=1
        )
        watchdog.run_probe_round()
        events = [e for e in watchdog.events if e.tier == "qgram"]
        assert events and events[0].shard == ""
        assert qgram_tier.quarantined


class TestMergePolicyThroughLadder:
    @pytest.mark.parametrize(
        "policy", [MergePolicy.SPLIT_BUDGET, MergePolicy.WIDEN_INTERVAL]
    )
    def test_served_answers_sound_under_both_policies(self, policy):
        rng = random.Random(11)
        rows = ["".join(rng.choice("ab") for _ in range(300)) for _ in range(8)]
        plan = ShardPlan.for_rows(rows, 4)
        service = build_sharded_ladder(
            plan, L, policy=policy, deadline_seconds=None
        )
        mono = Text.from_rows(rows)
        for pattern in ("ab", "ba", "aab", "bbbb"):
            outcome = service.query(pattern)
            truth = mono.count_naive(pattern)
            assert outcome.contract_holds(truth, len(mono))

"""Edge cases and failure injection across the whole library.

Covers the degenerate shapes every structure must survive: minimal texts,
extreme thresholds, binary and maximal alphabets, the paper's adversarial
unary text, bad precomputed inputs, and type errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ApproxIndex,
    CombinedIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    PrunedPatriciaTrie,
    PrunedSuffixTree,
    RLFMIndex,
)
from repro.errors import InvalidParameterError, PatternError
from repro.sa import suffix_array
from repro.suffixtree.pruned import PrunedSuffixTreeStructure
from repro.textutil import Text

ALL_BUILDERS = [
    ("fm", lambda t: FMIndex(t)),
    ("rlfm", lambda t: RLFMIndex(t)),
    ("apx", lambda t: ApproxIndex(t, 4)),
    ("cpst", lambda t: CompactPrunedSuffixTree(t, 4)),
    ("pst", lambda t: PrunedSuffixTree(t, 4)),
    ("patricia", lambda t: PrunedPatriciaTrie(t, 4)),
    ("combined", lambda t: CombinedIndex(t, 4)),
]
IDS = [name for name, _ in ALL_BUILDERS]


@pytest.mark.parametrize("name,builder", ALL_BUILDERS, ids=IDS)
class TestDegenerateTexts:
    def test_single_character_text(self, name, builder):
        index = builder(Text("a"))
        result = index.count("a")
        assert 0 <= result <= 4  # within every model's slack at l=4
        assert index.count("b") == 0

    def test_two_distinct_characters(self, name, builder):
        index = builder(Text("ab"))
        assert index.count("ba") <= 3  # truth 0, slack < l

    def test_binary_alphabet_long(self, name, builder, rng):
        text = "".join(rng.choice(list("01"), size=400))
        t = Text(text)
        index = builder(t)
        true = t.count_naive("01")
        estimate = index.count("01")
        if name in ("fm", "rlfm"):
            assert estimate == true
        elif name in ("apx", "combined"):
            assert true <= estimate <= true + 3
        # lower-sided/blind indexes checked in their own suites

    def test_unary_text(self, name, builder):
        # The paper's PST worst case: T = a^n.
        t = Text("a" * 64)
        index = builder(t)
        true = 64 - 8 + 1
        estimate = index.count("a" * 8)
        assert abs(estimate - true) < 4 or estimate == true

    def test_pattern_equal_to_text(self, name, builder):
        t = Text("xyxxy")
        index = builder(t)
        assert 0 <= index.count("xyxxy") <= 4

    def test_pattern_longer_than_text(self, name, builder):
        index = builder(Text("abc"))
        assert index.count("abcd") <= 3  # truth 0

    def test_non_string_pattern(self, name, builder):
        index = builder(Text("abc"))
        with pytest.raises(PatternError):
            index.count(123)  # type: ignore[arg-type]


class TestExtremeThresholds:
    def test_threshold_larger_than_text(self):
        t = Text("short")
        cpst = CompactPrunedSuffixTree(t, 1000)
        assert cpst.count_or_none("s") is None
        apx = ApproxIndex(t, 1000)
        assert apx.count("s") <= 1000 - 1

    def test_threshold_equal_to_n(self):
        n = 32
        t = Text("a" * n)
        cpst = CompactPrunedSuffixTree(t, n)
        assert cpst.count_or_none("a") == n  # 'a' occurs exactly n times

    def test_large_even_threshold_apx(self):
        t = Text("ab" * 100)
        apx = ApproxIndex(t, 512)
        true = t.count_naive("ab")
        assert true <= apx.count("ab") <= true + 511


class TestMaximalAlphabet:
    def test_256_distinct_symbols(self):
        raw = bytes(range(256)).decode("latin-1") * 3
        t = Text(raw)
        assert t.sigma == 257
        fm = FMIndex(t)
        for ch in (raw[0], raw[100], raw[255]):
            assert fm.count(ch) == 3
        apx = ApproxIndex(t, 4)
        assert apx.count(raw[:2]) in range(3, 3 + 4)

    def test_all_distinct_text(self):
        raw = "".join(chr(ord("a") + i) for i in range(26))
        t = Text(raw)
        cpst = CompactPrunedSuffixTree(t, 2)
        # Every substring occurs exactly once: nothing certified.
        assert cpst.num_nodes == 1
        assert cpst.count_or_none("ab") is None


class TestBadInputs:
    def test_mismatched_precomputed_sa(self):
        t = Text("banana")
        wrong_sa = suffix_array(Text("banan").data)
        with pytest.raises(InvalidParameterError):
            PrunedSuffixTreeStructure(t, 2, sa=wrong_sa)

    def test_apx_threshold_validation_matrix(self):
        for bad in (-2, 1, 3, 7):
            with pytest.raises(InvalidParameterError):
                ApproxIndex("abc", bad)

    def test_text_rejects_non_str(self):
        for bad in (b"bytes", 42, ["a", "b"], None):
            with pytest.raises(InvalidParameterError):
                Text(bad)  # type: ignore[arg-type]

    def test_from_bwt_rejects_garbage_alphabet(self):
        t = Text("abc")
        from repro.sa import bwt

        transform = bwt(t.data)
        small = Text("ab").alphabet  # sigma too small for the symbols
        with pytest.raises(Exception):
            FMIndex.from_bwt(transform, small).count("c")


class TestWhitespaceAndControlCharacters:
    def test_newlines_tabs_nulls(self):
        raw = "line1\nline2\tcol\x00binary\r\n" * 10
        t = Text(raw)
        fm = FMIndex(t)
        for pattern in ("\n", "\t", "\x00", "\r\n", "line1\nline2"):
            assert fm.count(pattern) == t.count_naive(pattern), repr(pattern)

    def test_row_separator_roundtrip(self):
        rows = ["has\nnewline", "has\ttab"]
        t = Text.from_rows(rows)
        assert t.count_naive("\n") == 1

"""Tests for the space accounting module and the sparse-table RMQ."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.sa.rmq import RangeMinimum
from repro.space import SpaceReport, make_report, text_bits, total_payload


class TestSpaceReport:
    def test_totals(self):
        report = make_report("X", {"a": 100, "b": 50}, {"dir": 10})
        assert report.payload_bits == 150
        assert report.overhead_bits == 10
        assert report.total_bits == 160
        assert report.payload_bytes == pytest.approx(18.75)

    def test_ratio(self):
        report = make_report("X", {"a": 250})
        assert report.ratio_to(1000) == 0.25
        with pytest.raises(ValueError):
            report.ratio_to(0)

    def test_merged(self):
        a = make_report("A", {"x": 1}, {"o": 2})
        b = make_report("B", {"x": 3})
        merged = a.merged_with(b)
        assert merged.payload_bits == 4
        assert merged.overhead_bits == 2
        assert set(merged.components) == {"A.x", "B.x"}

    def test_format_contains_components(self):
        text = make_report("Idx", {"big": 1000, "small": 10}).format(reference_bits=8000)
        assert "Idx" in text and "big" in text and "% of reference" in text

    def test_text_bits(self):
        assert text_bits(100, 2) == 100  # 1 bit per symbol
        assert text_bits(100, 256) == 800
        with pytest.raises(ValueError):
            text_bits(-1, 2)

    def test_total_payload(self):
        reports = [make_report("A", {"x": 5}), make_report("B", {"y": 7})]
        assert total_payload(reports) == 12

    def test_frozen(self):
        report = make_report("X", {"a": 1})
        with pytest.raises(AttributeError):
            report.name = "Y"  # type: ignore[misc]


class TestRangeMinimum:
    def test_basic(self):
        rmq = RangeMinimum(np.array([5, 2, 8, 1, 9, 3]))
        assert rmq.query(0, 6) == 1
        assert rmq.query(0, 2) == 2
        assert rmq.query(2, 3) == 8
        assert rmq.query(4, 6) == 3

    def test_invalid_ranges(self):
        rmq = RangeMinimum(np.array([1, 2, 3]))
        with pytest.raises(InvalidParameterError):
            rmq.query(2, 2)
        with pytest.raises(InvalidParameterError):
            rmq.query(-1, 2)
        with pytest.raises(InvalidParameterError):
            rmq.query(0, 4)

    def test_single_element(self):
        rmq = RangeMinimum(np.array([42]))
        assert rmq.query(0, 1) == 42

    def test_2d_rejected(self):
        with pytest.raises(InvalidParameterError):
            RangeMinimum(np.zeros((2, 2)))

    def test_against_naive(self, rng):
        values = rng.integers(-100, 100, size=257)
        rmq = RangeMinimum(values)
        for _ in range(200):
            lo = int(rng.integers(0, 256))
            hi = int(rng.integers(lo + 1, 258))
            assert rmq.query(lo, hi) == int(values[lo:hi].min()), (lo, hi)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=120))
def test_property_rmq_matches_min(values):
    arr = np.asarray(values)
    rmq = RangeMinimum(arr)
    n = len(values)
    for lo in range(0, n, max(1, n // 7)):
        for hi in range(lo + 1, n + 1, max(1, n // 7)):
            assert rmq.query(lo, hi) == min(values[lo:hi])

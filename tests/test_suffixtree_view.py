"""Tests for the lazy suffix-tree view."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.suffixtree.view import SuffixTreeView, TreeNode
from repro.textutil import Text


@pytest.fixture(scope="module")
def banana():
    return SuffixTreeView("banana")


class TestBasics:
    def test_root(self, banana):
        root = banana.root
        assert root.depth == 0
        assert root.count == 7  # six suffixes + sentinel

    def test_locus_counts_match_naive(self):
        text = "abracadabra" * 3
        t = Text(text)
        view = SuffixTreeView(t)
        for pattern in ("a", "abra", "cad", "abracadabra", "zzz", "rara"):
            assert view.count(pattern) == t.count_naive(pattern), pattern

    def test_locus_none_for_absent(self, banana):
        assert banana.locus("x") is None
        assert banana.locus("banam") is None

    def test_locus_depth_is_node_depth(self, banana):
        # locus('an') is the 'ana' node (depth 3): 'an' ends mid-edge.
        node = banana.locus("an")
        assert node is not None
        assert node.depth == 3
        assert banana.path_label(node) == "ana"

    def test_empty_pattern_rejected(self, banana):
        with pytest.raises(PatternError):
            banana.locus("")


class TestNavigation:
    def test_children_of_root(self, banana):
        children = banana.children(banana.root)
        labels = [banana.path_label(c)[:1] if c.depth else "" for c in children]
        # $, a, b, n branches.
        assert len(children) == 4
        assert children[0].is_leaf  # the sentinel suffix
        assert labels[1] == "a" and labels[2] == "b" and labels[3] == "n"

    def test_children_partition_parent(self, banana):
        for node in banana.walk(max_depth=3):
            if node.is_leaf:
                continue
            children = banana.children(node)
            assert children[0].lb == node.lb
            assert children[-1].rb == node.rb
            for a, b in zip(children, children[1:]):
                assert a.rb + 1 == b.lb
            assert all(c.depth > node.depth for c in children)

    def test_child_by_symbol(self, banana):
        child = banana.child_by_symbol(banana.root, "b")
        assert child is not None
        assert banana.path_label(child).startswith("b")
        assert banana.child_by_symbol(banana.root, "x") is None
        with pytest.raises(PatternError):
            banana.child_by_symbol(banana.root, "ab")

    def test_suffix_links(self, banana):
        for node in banana.walk():
            if node.depth == 0:
                continue
            linked = banana.suffix_link(node)
            assert linked is not None
            assert banana.path_label(node)[1:] == banana.path_label(linked)
        assert banana.suffix_link(banana.root) is None

    def test_walk_visits_all_leaves(self, banana):
        leaves = [node for node in banana.walk() if node.is_leaf]
        assert len(leaves) == 7

    def test_walk_max_depth(self, banana):
        # Nodes deeper than the cutoff are not expanded further, so the
        # truncated walk is strictly smaller than the full one.
        shallow = list(banana.walk(max_depth=1))
        assert len(shallow) < len(list(banana.walk()))
        assert any(node.depth > 0 for node in shallow)


class TestAgainstPrunedStructure:
    def test_internal_nodes_agree(self):
        from repro.suffixtree.pruned import PrunedSuffixTreeStructure

        text = "mississippi" * 2
        view = SuffixTreeView(text)
        structure = PrunedSuffixTreeStructure(text, 2)
        structural = {
            (node.depth, node.lb, node.rb) for node in structure.nodes
        }
        walked_internal = {
            (node.depth, node.lb, node.rb)
            for node in view.walk()
            if not node.is_leaf
        }
        assert structural <= walked_internal  # pruning keeps a subset


@settings(max_examples=30, deadline=None)
@given(
    st.text(alphabet="ab", min_size=1, max_size=60),
    st.text(alphabet="ab", min_size=1, max_size=5),
)
def test_property_view_counts_exact(text, pattern):
    t = Text(text)
    assert SuffixTreeView(t).count(pattern) == t.count_naive(pattern)


class TestDescentEqualsLocus:
    def test_symbol_descent_reaches_locus(self):
        text = "abracadabra" * 4
        view = SuffixTreeView(text)
        for pattern in ("abra", "cada", "ra", "d"):
            node = view.root
            matched = 0
            while matched < len(pattern):
                child = view.child_by_symbol(node, pattern[matched])
                assert child is not None, pattern
                label = view.path_label(child)[node.depth:]
                take = min(len(label), len(pattern) - matched)
                assert label[:take] == pattern[matched:matched + take], pattern
                matched += take
                node = child
            locus = view.locus(pattern)
            assert locus is not None
            assert (node.lb, node.rb) == (locus.lb, locus.rb), pattern

    def test_view_on_every_corpus(self):
        from repro.datasets import dataset_names, generate

        for name in dataset_names():
            t = Text(generate(name, 1500, seed=6))
            view = SuffixTreeView(t)
            for pattern in (t.raw[:3], t.raw[40:44], "zzqq"):
                assert view.count(pattern) == t.count_naive(pattern), (name, pattern)


class TestMatchingStatistics:
    def test_against_naive(self):
        text = "abracadabra"
        t = Text(text)
        view = SuffixTreeView(t)
        query = "racadzbra"
        stats = view.matching_statistics(query)
        for i, (length, count) in enumerate(stats):
            # naive longest match of query[i:] in text
            best = 0
            while i + best < len(query) and query[i : i + best + 1] in text:
                best += 1
            assert length == best, i
            if best:
                assert count == t.count_naive(query[i : i + best]), i

    def test_query_absent_everywhere(self):
        view = SuffixTreeView("aaaa")
        stats = view.matching_statistics("zz")
        assert stats == [(0, 0), (0, 0)]

    def test_full_match(self):
        view = SuffixTreeView("banana")
        stats = view.matching_statistics("banana")
        assert stats[0] == (6, 1)
        assert stats[1][0] == 5  # 'anana'

    def test_empty_query_rejected(self):
        view = SuffixTreeView("ab")
        with pytest.raises(PatternError):
            view.matching_statistics("")

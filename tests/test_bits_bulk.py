"""Differential property tests for the bulk rank/select kernels.

The contract pinned here: for every succinct bit structure, the
vectorized bulk entry points (``rank_many`` / ``rank_pairs`` /
``ranks_matrix`` / ``select_many`` / ``get_many`` / ``num_less_many``)
return exactly what a scalar loop over the corresponding one-at-a-time
query returns — on randomized inputs spanning densities, word-boundary
sizes and degenerate shapes, and equally over *read-only* buffer-backed
views attached through :mod:`repro.bits.storage` (the shared-memory
serving deployment: bulk kernels must never need a writable payload).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bits import (
    BitVector,
    EliasFano,
    HuffmanWaveletTree,
    IntVector,
    RRRBitVector,
    SparseBitVector,
    WaveletMatrix,
)
from repro.parallel import Segment, SegmentWriter

# Randomized trials: (size, density, seed) — word boundaries (64, 128),
# RRR block/superblock boundaries (15, 480), empty and all-same inputs.
BIT_CASES = [
    (0, 0.5, 1),
    (1, 1.0, 2),
    (63, 0.5, 3),
    (64, 0.1, 4),
    (65, 0.9, 5),
    (128, 0.0, 6),
    (479, 0.3, 7),
    (480, 0.5, 8),
    (1000, 0.05, 9),
    (4097, 0.7, 10),
]


def _attach_readonly(obj, key="s"):
    """Round-trip through a parsed segment: a zero-copy read-only view."""
    writer = SegmentWriter("bulk-test")
    writer.add(key, obj)
    return Segment.parse(writer.to_bytes()).attach(key)


def _bits(n, p, seed):
    rng = np.random.default_rng(seed)
    return (rng.random(n) < p).astype(np.uint8)


def _variants(owning):
    return [owning, _attach_readonly(owning)]


@pytest.mark.parametrize("n,p,seed", BIT_CASES)
@pytest.mark.parametrize("compressed", [False, True])
def test_bitvector_bulk_matches_scalar(n, p, seed, compressed):
    bits = _bits(n, p, seed)
    owning = RRRBitVector(bits) if compressed else BitVector(bits)
    rng = np.random.default_rng(seed + 1000)
    positions = rng.integers(0, n + 1, size=97) if n else np.zeros(1, np.int64)
    ones = owning.rank1(n)
    zeros = n - ones
    for bv in _variants(owning):
        for bit, count in ((1, ones), (0, zeros)):
            expected = [bv.rank(bit, int(i)) for i in positions]
            assert bv.rank_many(bit, positions).tolist() == expected
            # ranks out of the valid range include the invalid sentinel -1.
            ks = rng.integers(-1, count + 2, size=61)
            expected = [bv.select(bit, int(k)) for k in ks]
            assert bv.select_many(bit, ks).tolist() == expected
        assert bv.rank1_many(positions).tolist() == [
            bv.rank1(int(i)) for i in positions
        ]
        assert bv.rank0_many(positions).tolist() == [
            bv.rank0(int(i)) for i in positions
        ]


@pytest.mark.parametrize("m,u,seed", [(0, 1, 0), (1, 5, 1), (40, 41, 2),
                                      (200, 10_000, 3), (500, 501, 4)])
def test_eliasfano_bulk_matches_scalar(m, u, seed):
    rng = np.random.default_rng(seed)
    values = np.sort(rng.integers(0, u, size=m)) if m else np.zeros(0, np.int64)
    owning = EliasFano(values, universe=u)
    xs = rng.integers(0, u + 2, size=83)
    for ef in _variants(owning):
        if m:
            idx = rng.integers(0, m, size=71)
            assert ef.get_many(idx).tolist() == [ef[int(i)] for i in idx]
        assert ef.num_less_many(xs).tolist() == [
            ef.num_less(int(x)) for x in xs
        ]
        assert ef.num_less_or_equal_many(xs).tolist() == [
            ef.num_less_or_equal(int(x)) for x in xs
        ]


@pytest.mark.parametrize("n,m,seed", [(1, 0, 0), (100, 7, 1), (2048, 300, 2)])
def test_sparse_bitvector_bulk_matches_scalar(n, m, seed):
    rng = np.random.default_rng(seed)
    positions = np.unique(rng.integers(0, n, size=m)) if m else np.zeros(0, np.int64)
    owning = SparseBitVector(positions, length=n)
    queries = rng.integers(0, n + 1, size=79)
    ones = owning.rank1(n)
    for sbv in _variants(owning):
        scalar = {1: (sbv.rank1, sbv.select1), 0: (sbv.rank0, sbv.select0)}
        for bit, count in ((1, ones), (0, n - ones)):
            rank_one, select_one = scalar[bit]
            assert sbv.rank_many(bit, queries).tolist() == [
                rank_one(int(i)) for i in queries
            ]
            ks = rng.integers(-1, count + 2, size=53)
            assert sbv.select_many(bit, ks).tolist() == [
                select_one(int(k)) for k in ks
            ]


@pytest.mark.parametrize("sigma,n,seed", [(2, 64, 0), (11, 600, 1), (40, 2000, 2)])
@pytest.mark.parametrize("kind", ["wm", "wm-rrr", "hwt"])
def test_wavelet_bulk_matches_scalar(sigma, n, seed, kind):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=n)
    if kind == "hwt":
        owning = HuffmanWaveletTree(data, sigma)
    else:
        owning = WaveletMatrix(data, sigma=sigma, compressed=(kind == "wm-rrr"))
    positions = rng.integers(0, n + 1, size=67)
    los = rng.integers(0, n + 1, size=59)
    his = np.minimum(n, los + rng.integers(0, 40, size=59))
    # Out-of-alphabet symbols must behave like the scalar path (0 ranks).
    symbols = list(range(min(sigma, 5))) + [sigma - 1, sigma + 3]
    for wt in _variants(owning):
        for c in symbols:
            assert wt.rank_many(c, positions).tolist() == [
                wt.rank(c, int(i)) for i in positions
            ]
            lo_r, hi_r = wt.rank_pairs(c, los, his)
            assert lo_r.tolist() == [wt.rank(c, int(i)) for i in los]
            assert hi_r.tolist() == [wt.rank(c, int(i)) for i in his]
            matrix = np.stack([los, his], axis=1)
            assert wt.ranks_matrix(c, matrix).tolist() == [
                [wt.rank(c, int(lo)), wt.rank(c, int(hi))]
                for lo, hi in zip(los, his)
            ]
            if c < sigma:
                count = wt.rank(c, n)
                ks = rng.integers(-1, count + 2, size=43)
                assert wt.select_many(c, ks).tolist() == [
                    wt.select(c, int(k)) for k in ks
                ]


def test_intvector_bulk_over_readonly_buffer():
    rng = np.random.default_rng(7)
    values = rng.integers(0, 1 << 19, size=513)
    owning = IntVector.from_array(values)
    attached = _attach_readonly(owning)
    idx = rng.integers(0, 513, size=101)
    assert attached.get_many(idx).tolist() == [int(values[i]) for i in idx]


def test_bulk_kernels_never_write_the_payload():
    """The attached views really are read-only — the kernels must gather,
    never mutate in place."""
    bits = _bits(1000, 0.4, 42)
    attached = _attach_readonly(BitVector(bits))
    assert not attached._words.flags.writeable
    positions = np.arange(0, 1001, 13)
    expected = [attached.rank1(int(i)) for i in positions]
    assert attached.rank1_many(positions).tolist() == expected
    assert not attached._words.flags.writeable

"""Tests for threshold ladders and budget fitting."""

from __future__ import annotations

import pytest

from repro.core.cpst import CompactPrunedSuffixTree
from repro.core.approx import ApproxIndex
from repro.core.ladder import ThresholdLadder, fit_threshold
from repro.errors import InvalidParameterError
from repro.textutil import Text


@pytest.fixture(scope="module")
def corpus():
    return Text("the cat sat on the mat and the rat sat too " * 40)


class TestThresholdLadder:
    def test_resolution_uses_cheapest_sufficient_level(self, corpus):
        ladder = ThresholdLadder(corpus, [64, 16, 4])
        # 'the' is very frequent: certified already at the coarsest level.
        level, count = ladder.resolve("the")
        assert level == 64
        assert count == corpus.count_naive("the")
        # A rarer phrase needs a finer level.
        rare = "the rat sat too"
        truth = corpus.count_naive(rare)
        resolved = ladder.resolve(rare)
        assert resolved is not None
        assert resolved[1] == truth
        assert resolved[0] <= truth

    def test_counts_are_exact_when_certified(self, corpus):
        ladder = ThresholdLadder(corpus, [64, 8])
        for pattern in ("the", "sat", "cat s", "mat and"):
            got = ladder.count_or_none(pattern)
            truth = corpus.count_naive(pattern)
            assert got == (truth if truth >= 8 else None), pattern

    def test_matches_single_finest_cpst(self, corpus):
        ladder = ThresholdLadder(corpus, [64, 16, 8])
        single = CompactPrunedSuffixTree(corpus, 8)
        for pattern in ("the", "zq", "rat sat", "o", " and "):
            assert ladder.count_or_none(pattern) == single.count_or_none(pattern)

    def test_geometric_constructor(self, corpus):
        ladder = ThresholdLadder.geometric(corpus, coarsest=128, finest=8, factor=4)
        assert ladder.thresholds == [128, 32, 8]
        assert ladder.threshold == 8

    def test_geometric_appends_finest(self, corpus):
        ladder = ThresholdLadder.geometric(corpus, coarsest=100, finest=7, factor=3)
        assert ladder.thresholds[-1] == 7

    def test_space_dominated_by_finest(self, corpus):
        ladder = ThresholdLadder(corpus, [128, 32, 8])
        report = ladder.space_report()
        finest = report.components["level_8"]
        assert finest > report.components["level_32"]
        assert report.payload_bits < 2.5 * finest  # ladder ~ geometric sum

    def test_validation(self, corpus):
        with pytest.raises(InvalidParameterError):
            ThresholdLadder(corpus, [])
        with pytest.raises(InvalidParameterError):
            ThresholdLadder(corpus, [8, 1])
        with pytest.raises(InvalidParameterError):
            ThresholdLadder.geometric(corpus, factor=1)

    def test_duplicate_thresholds_deduped(self, corpus):
        ladder = ThresholdLadder(corpus, [16, 16, 8])
        assert ladder.thresholds == [16, 8]


class TestFitThreshold:
    def test_fits_within_budget(self, corpus):
        generous = CompactPrunedSuffixTree(corpus, 8).space_report().payload_bits
        threshold, index = fit_threshold(corpus, generous)
        assert index.space_report().payload_bits <= generous
        assert threshold <= 8  # budget sized for l=8 must allow l<=8

    def test_minimality(self, corpus):
        budget = CompactPrunedSuffixTree(corpus, 32).space_report().payload_bits
        threshold, _ = fit_threshold(corpus, budget)
        if threshold > 2:
            smaller = CompactPrunedSuffixTree(corpus, threshold - 1)
            assert smaller.space_report().payload_bits > budget

    def test_impossible_budget(self, corpus):
        with pytest.raises(InvalidParameterError):
            fit_threshold(corpus, 8)  # 1 byte: hopeless

    def test_apx_class(self, corpus):
        budget = ApproxIndex(corpus, 64).space_report().payload_bits
        threshold, index = fit_threshold(corpus, budget, index_class=ApproxIndex)
        assert index.space_report().payload_bits <= budget
        assert isinstance(index, ApproxIndex)

    def test_budget_validation(self, corpus):
        with pytest.raises(InvalidParameterError):
            fit_threshold(corpus, 0)

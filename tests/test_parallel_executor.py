"""Process-sharded executor: parity with the thread executor, fault
tolerance, and the zero-copy attach telemetry.

One worker-process fleet is spawned per test class (spawn costs ~1s per
worker), and every merged interval is compared against the thread-pooled
:class:`~repro.shard.estimator.ShardedEstimator` built over the *same*
shard plan — the two executors must be answer-identical.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro.baselines.fm import FMIndex
from repro.core.interface import ErrorModel
from repro.errors import (
    InvalidParameterError,
    PatternError,
    ReproError,
)
from repro.parallel import ProcessShardedEstimator
from repro.service.deadline import Deadline
from repro.shard import ShardPlan, build_process_sharded, build_sharded
from repro.textutil import mixed_workload

pytestmark = pytest.mark.slow


def _rows(seed: int = 11, n: int = 60):
    rng = random.Random(seed)
    return [
        "".join(rng.choice("abcab") for _ in range(rng.randint(25, 70)))
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def plan():
    return ShardPlan.for_rows(_rows(), 2)


@pytest.fixture(scope="module")
def thread_estimator(plan):
    estimator, _ = build_sharded(plan, "cpst", l=8)
    return estimator


@pytest.fixture(scope="module")
def process_estimator(plan):
    estimator, report = build_process_sharded(plan, "cpst", l=8)
    assert report.kind == "cpst"
    with estimator:
        yield estimator


@pytest.fixture(scope="module")
def patterns(plan):
    whole = "".join(shard.text.raw for shard in plan.shards)
    return [
        p
        for p in mixed_workload(whole, per_length=8, seed=3)
        if "\x1e" not in p
    ]


def _assert_same_answer(process_est, thread_est, pattern):
    mp_ = process_est.merged_count(pattern)
    mt = thread_est.merged_count(pattern)
    assert (mp_.count, mp_.lo, mp_.hi) == (mt.count, mt.lo, mt.hi), pattern
    assert mp_.error_model == mt.error_model, pattern
    assert mp_.threshold == mt.threshold, pattern


class TestProcessThreadParity:
    def test_merged_count_identical(
        self, process_estimator, thread_estimator, patterns
    ):
        for pattern in patterns:
            _assert_same_answer(process_estimator, thread_estimator, pattern)

    def test_merged_count_many_identical(
        self, process_estimator, thread_estimator, patterns
    ):
        batched = process_estimator.merged_count_many(patterns)
        for pattern, merged in zip(patterns, batched):
            reference = thread_estimator.merged_count(pattern)
            assert (merged.lo, merged.hi) == (reference.lo, reference.hi)
            assert merged.error_model == reference.error_model

    def test_scalar_surface(
        self, process_estimator, thread_estimator, patterns
    ):
        for pattern in patterns[:10]:
            assert process_estimator.count(pattern) == thread_estimator.count(
                pattern
            )
            assert process_estimator.count_interval(
                pattern
            ) == thread_estimator.count_interval(pattern)
            assert process_estimator.count_or_none(
                pattern
            ) == thread_estimator.count_or_none(pattern)
            assert process_estimator.is_reliable(
                pattern
            ) == thread_estimator.is_reliable(pattern)

    def test_estimator_metadata(self, process_estimator, thread_estimator):
        assert process_estimator.k == thread_estimator.k
        assert (
            process_estimator.text_length == thread_estimator.text_length
        )
        assert process_estimator.threshold == thread_estimator.threshold
        assert process_estimator.error_model in tuple(ErrorModel)

    def test_pattern_validation(self, process_estimator):
        with pytest.raises(PatternError):
            process_estimator.merged_count("")
        with pytest.raises(PatternError):
            process_estimator.merged_count_many(["ab", ""])

    def test_out_of_alphabet_parity(
        self, process_estimator, thread_estimator
    ):
        # Characters outside the shard alphabet are only seen inside the
        # worker; the merged answer must match the thread executor's.
        _assert_same_answer(process_estimator, thread_estimator, "\x00\x01")

    def test_generous_deadline_changes_nothing(
        self, process_estimator, thread_estimator
    ):
        relaxed = process_estimator.merged_count("ab", Deadline(30.0))
        reference = thread_estimator.merged_count("ab")
        assert (relaxed.lo, relaxed.hi) == (reference.lo, reference.hi)
        assert not relaxed.degraded_shards

    def test_empty_batch(self, process_estimator):
        assert process_estimator.merged_count_many([]) == []


class TestWorkerDeath:
    """Kill a worker mid-flight: its shard degrades, the rest serve."""

    def test_kill_quarantine_respawn(self, plan, thread_estimator):
        estimator, _ = build_process_sharded(plan, "cpst", l=8)
        with estimator:
            victim = estimator.shard_names[0]
            _assert_same_answer(estimator, thread_estimator, "ab")

            os.kill(estimator.worker_pid(victim), signal.SIGKILL)
            deadline = time.time() + 5.0
            while time.time() < deadline:
                merged = estimator.merged_count("ab")
                if estimator.degraded_shards:
                    break
            assert estimator.degraded_shards == (victim,)
            # The degraded merge is honest: one shard contributes its
            # trivial ceiling, so the merged model is an upper bound and
            # the surviving shards still bound the answer.
            assert merged.degraded_shards == (victim,)
            assert merged.error_model is ErrorModel.UPPER_BOUND
            reference = thread_estimator.merged_count("ab")
            assert merged.lo <= reference.lo
            assert merged.hi >= reference.hi

            # Batched queries survive a quarantined shard too.
            batch = estimator.merged_count_many(["ab", "ba"])
            assert all(m.degraded_shards == (victim,) for m in batch)

            # Respawn against the *same* shared segment: full parity back.
            estimator.respawn_shard(victim)
            assert estimator.degraded_shards == ()
            for pattern in ("ab", "ba", "abc"):
                _assert_same_answer(estimator, thread_estimator, pattern)

    def test_manual_quarantine_and_readmit(self, process_estimator):
        victim = process_estimator.shard_names[1]
        process_estimator.quarantine_shard(victim, "maintenance")
        merged = process_estimator.merged_count("ab")
        assert merged.degraded_shards == (victim,)
        process_estimator.readmit_shard(victim)
        assert process_estimator.degraded_shards == ()
        assert process_estimator.merged_count("ab").degraded_shards == ()

    def test_readmit_dead_worker_rejected(self, plan):
        estimator, _ = build_process_sharded(plan, "cpst", l=8)
        with estimator:
            victim = estimator.shard_names[0]
            os.kill(estimator.worker_pid(victim), signal.SIGKILL)
            deadline = time.time() + 5.0
            while time.time() < deadline and not estimator.degraded_shards:
                estimator.merged_count("ab")  # notices the death
            assert estimator.degraded_shards == (victim,)
            with pytest.raises(InvalidParameterError):
                estimator.readmit_shard(victim)

    def test_unknown_shard_rejected(self, process_estimator):
        with pytest.raises(InvalidParameterError):
            process_estimator.quarantine_shard("no-such-shard")


class TestZeroCopyTelemetry:
    def test_attach_allocation_is_constant_not_proportional(self):
        # A worker attaching a large shared segment must allocate only
        # protocol-sized bookkeeping, never a copy of the payload: the
        # per-worker attach allocation stays far below the segment size.
        random.seed(5)
        text = "".join(random.choice("acgt") for _ in range(120_000))
        fm = FMIndex(text)
        estimator = ProcessShardedEstimator.from_estimators([("s0", fm)])
        with estimator:
            telemetry = estimator.attach_telemetry()["s0"]
            assert telemetry["segment_bytes"] > 60_000
            assert telemetry["attach_alloc_bytes"] < 64_000
            assert (
                telemetry["attach_alloc_bytes"]
                < telemetry["segment_bytes"]
            )
            assert estimator.count("acgt") == fm.count("acgt")

    def test_space_report_counts_segments_once_per_host(
        self, process_estimator
    ):
        report = process_estimator.space_report()
        assert len(report.shared) == process_estimator.k
        assert report.workers == process_estimator.k
        telemetry = process_estimator.attach_telemetry()
        for name, slot in telemetry.items():
            assert report.shared[f"{name}.segment"] == (
                slot["segment_bytes"] * 8
            )
        assert "resident_per_worker" in report.format()
        assert report.shared_bits == sum(report.shared.values())


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, plan):
        estimator, _ = build_process_sharded(plan, "cpst", l=8)
        estimator.close()
        estimator.close()
        with pytest.raises(ReproError):
            estimator.merged_count("ab")

    def test_rejects_empty_and_duplicate_segments(self):
        with pytest.raises(InvalidParameterError):
            ProcessShardedEstimator([])
        fm = FMIndex("abracadabra")
        from repro.parallel import write_estimator_segment

        blob = write_estimator_segment(fm, "s0")
        with pytest.raises(InvalidParameterError):
            ProcessShardedEstimator([("s0", blob), ("s0", blob)])


class TestRespawnBudget:
    """Respawns are budgeted: capped jittered backoff, then quarantine."""

    def test_budget_exhaustion_quarantines_with_sound_answers(self):
        fm = FMIndex("abracadabra banana" * 3)
        estimator = ProcessShardedEstimator.from_estimators(
            [("s0", fm)],
            respawn_limit=2,
            respawn_window=60.0,
            respawn_base=0.0,  # no sleeps: the budget is what's under test
        )
        with estimator:
            estimator.respawn_shard("s0")
            estimator.respawn_shard("s0")
            telemetry = estimator.respawn_telemetry()["s0"]
            assert telemetry["respawns"] == 2
            assert telemetry["window_respawns"] == 2
            assert telemetry["budget_remaining"] == 0

            with pytest.raises(ReproError, match="respawn budget"):
                estimator.respawn_shard("s0")
            assert estimator.degraded_shards == ("s0",)
            # Exhaustion degrades, it does not blind: the shard answers
            # from its sound ceiling while quarantined.
            merged = estimator.merged_count("ab")
            assert merged.error_model is ErrorModel.UPPER_BOUND
            assert merged.hi >= fm.count("ab")

    def test_budget_refills_when_the_window_slides(self):
        fm = FMIndex("abracadabra" * 2)
        estimator = ProcessShardedEstimator.from_estimators(
            [("s0", fm)],
            respawn_limit=1,
            respawn_window=6.0,  # > the ~1s a spawn handshake takes
            respawn_base=0.0,
        )
        with estimator:
            start = time.monotonic()
            estimator.respawn_shard("s0")
            assert (
                estimator.respawn_telemetry()["s0"]["budget_remaining"] == 0
            )
            # Sleep the attempt out of the window, then the budget refills.
            time.sleep(max(0.0, 6.1 - (time.monotonic() - start)))
            assert (
                estimator.respawn_telemetry()["s0"]["budget_remaining"] == 1
            )
            estimator.respawn_shard("s0")
            assert estimator.count("ab") == fm.count("ab")

    def test_respawn_parameter_validation(self):
        fm = FMIndex("abracadabra")
        for kwargs in (
            {"respawn_limit": 0},
            {"respawn_window": 0.0},
            {"respawn_base": -0.1},
            {"respawn_cap": -1.0},
        ):
            with pytest.raises(InvalidParameterError):
                ProcessShardedEstimator.from_estimators(
                    [("s0", fm)], **kwargs
                )


class TestPoolAtexitCleanup:
    """A forgotten pool's blocks must not outlive the interpreter."""

    def test_forgotten_pool_is_unlinked_at_exit(self, tmp_path):
        import subprocess
        import sys
        from multiprocessing import shared_memory

        script = tmp_path / "leaky.py"
        script.write_text(
            "import sys\n"
            "from repro.baselines.fm import FMIndex\n"
            "from repro.parallel import write_estimator_segment\n"
            "from repro.parallel.pool import SegmentPool\n"
            "pool = SegmentPool()  # global: still referenced at exit\n"
            "seg = pool.publish(\n"
            "    's0', write_estimator_segment(FMIndex('abracadabra'), 's0')\n"
            ")\n"
            "print(seg.shm_name, flush=True)\n"
            "sys.exit(0)  # never calls pool.close(): atexit must\n"
        )
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr
        shm_name = result.stdout.strip().split()[-1]
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm_name)
        # Clean unlink, not a resource-tracker salvage at exit.
        assert "leaked shared_memory" not in result.stderr

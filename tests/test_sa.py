"""Tests for suffix array, LCP and BWT construction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.sa import (
    bwt,
    bwt_from_sa,
    counts_array,
    inverse_bwt,
    inverse_suffix_array,
    lcp_array,
    lf_mapping,
    suffix_array_doubling,
    suffix_array_naive,
    suffix_array_sais,
)
from repro.textutil import Text


def sentinel_text(s: str) -> np.ndarray:
    """Encode a string the library way: dense ids, sentinel 0 appended."""
    return Text(s).data


small_strings = st.text(alphabet="abcd", min_size=1, max_size=60)

BUILDERS = [suffix_array_naive, suffix_array_doubling, suffix_array_sais]


class TestSuffixArrayBuilders:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_abracadabra(self, builder):
        data = sentinel_text("abracadabra")
        sa = builder(data)
        # Figure 1 of the paper: suffixes of abracadabra$ in lex order.
        expected = [11, 10, 7, 0, 3, 5, 8, 1, 4, 6, 9, 2]
        assert sa.tolist() == expected

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_single_char_text(self, builder):
        sa = builder(sentinel_text("a"))
        assert sa.tolist() == [1, 0]

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_run_text(self, builder):
        # T = a^n: suffixes sort by decreasing start position.
        n = 20
        sa = builder(sentinel_text("a" * n))
        assert sa.tolist() == list(range(n, -1, -1))

    @pytest.mark.parametrize("builder", [suffix_array_doubling, suffix_array_sais])
    def test_matches_naive_random(self, builder, rng):
        for sigma in (2, 4, 26):
            syms = rng.integers(1, sigma + 1, size=200)
            data = np.concatenate([syms, [0]])
            np.testing.assert_array_equal(builder(data), suffix_array_naive(data))

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_empty(self, builder):
        assert builder(np.zeros(0, dtype=np.int64)).size == 0

    def test_sais_requires_sentinel(self):
        with pytest.raises(InvalidParameterError):
            suffix_array_sais(np.array([2, 1, 2], dtype=np.int64))

    def test_inverse_suffix_array(self):
        sa = suffix_array_doubling(sentinel_text("mississippi"))
        isa = inverse_suffix_array(sa)
        n = sa.size
        np.testing.assert_array_equal(sa[isa], np.arange(n))
        np.testing.assert_array_equal(isa[sa], np.arange(n))


@settings(max_examples=60, deadline=None)
@given(small_strings)
def test_property_builders_agree(s):
    data = sentinel_text(s)
    ref = suffix_array_naive(data)
    np.testing.assert_array_equal(suffix_array_doubling(data), ref)
    np.testing.assert_array_equal(suffix_array_sais(data), ref)


class TestLCP:
    def test_known_example(self):
        # banana$ -> SA [6,5,3,1,0,4,2]; LCP [0,0,1,3,0,0,2]
        data = sentinel_text("banana")
        sa = suffix_array_doubling(data)
        assert sa.tolist() == [6, 5, 3, 1, 0, 4, 2]
        lcp = lcp_array(data, sa)
        assert lcp.tolist() == [0, 0, 1, 3, 0, 0, 2]

    def test_against_naive(self, rng):
        syms = rng.integers(1, 4, size=150)
        data = np.concatenate([syms, [0]])
        sa = suffix_array_doubling(data)
        lcp = lcp_array(data, sa)
        lst = data.tolist()
        for i in range(1, len(lst)):
            a, b = lst[sa[i - 1] :], lst[sa[i] :]
            k = 0
            while k < min(len(a), len(b)) and a[k] == b[k]:
                k += 1
            assert lcp[i] == k, i

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            lcp_array(np.array([1, 0]), np.array([0]))


class TestBWT:
    def test_paper_figure1(self):
        # Figure 1: BWT(abracadabra$) = ard$rcaaaabb
        text = Text("abracadabra")
        l = bwt(text.data)
        assert text.alphabet.decode(l) == "ard$rcaaaabb"

    def test_bwt_is_permutation(self, rng):
        syms = rng.integers(1, 5, size=100)
        data = np.concatenate([syms, [0]])
        l = bwt(data)
        np.testing.assert_array_equal(np.sort(l), np.sort(data))

    def test_counts_array(self):
        text = Text("abracadabra")
        c = counts_array(bwt(text.data), text.sigma)
        # $=0 once, a=1 x5, b=2 x2, c=3 x1, d=4 x1, r=5 x2
        assert c.tolist() == [0, 1, 6, 8, 9, 10, 12]

    def test_counts_rejects_out_of_alphabet(self):
        with pytest.raises(InvalidParameterError):
            counts_array(np.array([0, 5]), sigma=3)

    def test_lf_mapping_matches_definition(self, rng):
        syms = rng.integers(1, 6, size=80)
        data = np.concatenate([syms, [0]])
        sigma = 6
        l = bwt(data)
        c = counts_array(l, sigma)
        lf = lf_mapping(l, sigma)
        lst = l.tolist()
        for i in range(len(lst)):
            rank = sum(1 for x in lst[: i + 1] if x == lst[i])  # rank_c(L, i+1)
            assert lf[i] == c[lst[i]] + rank - 1  # 0-based rows

    def test_inverse_bwt_roundtrip(self, rng):
        for _ in range(5):
            syms = rng.integers(1, 7, size=120)
            data = np.concatenate([syms, [0]])
            np.testing.assert_array_equal(inverse_bwt(bwt(data), 7), data)

    def test_inverse_requires_single_sentinel(self):
        with pytest.raises(InvalidParameterError):
            inverse_bwt(np.array([0, 1, 0]), 2)

    def test_bwt_from_sa_matches(self):
        data = sentinel_text("mississippi")
        sa = suffix_array_doubling(data)
        np.testing.assert_array_equal(bwt_from_sa(data, sa), bwt(data))


@settings(max_examples=50, deadline=None)
@given(small_strings)
def test_property_bwt_roundtrip(s):
    data = sentinel_text(s)
    sigma = int(data.max()) + 1
    np.testing.assert_array_equal(inverse_bwt(bwt(data), sigma), data)


class TestDC3:
    def test_matches_naive_random(self, rng):
        from repro.sa import suffix_array_dc3

        for sigma in (2, 4, 26):
            syms = rng.integers(1, sigma + 1, size=150)
            data = np.concatenate([syms, [0]])
            np.testing.assert_array_equal(
                suffix_array_dc3(data), suffix_array_naive(data)
            )

    def test_abracadabra(self):
        from repro.sa import suffix_array_dc3

        sa = suffix_array_dc3(sentinel_text("abracadabra"))
        assert sa.tolist() == [11, 10, 7, 0, 3, 5, 8, 1, 4, 6, 9, 2]

    def test_adversarial_shapes(self):
        from repro.sa import suffix_array_dc3

        for raw in ("a" * 31, "ab" * 16, "aab" * 11, "abca" * 8):
            data = sentinel_text(raw)
            np.testing.assert_array_equal(
                suffix_array_dc3(data), suffix_array_naive(data)
            )

    def test_requires_sentinel(self):
        from repro.sa import suffix_array_dc3

        with pytest.raises(InvalidParameterError):
            suffix_array_dc3(np.array([2, 1, 2], dtype=np.int64))

    def test_empty_and_single(self):
        from repro.sa import suffix_array_dc3

        assert suffix_array_dc3(np.zeros(0, dtype=np.int64)).size == 0
        assert suffix_array_dc3(np.zeros(1, dtype=np.int64)).tolist() == [0]


@settings(max_examples=60, deadline=None)
@given(small_strings)
def test_property_dc3_agrees(s):
    from repro.sa import suffix_array_dc3

    data = sentinel_text(s)
    np.testing.assert_array_equal(suffix_array_dc3(data), suffix_array_naive(data))

"""Tests for the contract-validation harness."""

from __future__ import annotations

import pytest

from repro import ApproxIndex, CompactPrunedSuffixTree, FMIndex
from repro.core.interface import ErrorModel, OccurrenceEstimator
from repro.errors import InvalidParameterError
from repro.space import SpaceReport
from repro.textutil import Alphabet, Text
from repro.validation import validate_all, validate_index


class _BrokenUniform(OccurrenceEstimator):
    """Deliberately violates the uniform contract (underestimates)."""

    error_model = ErrorModel.UNIFORM

    def __init__(self, text: Text, l: int):
        self._inner = ApproxIndex(text, l)
        self._l = l

    @property
    def alphabet(self) -> Alphabet:
        return self._inner.alphabet

    @property
    def text_length(self) -> int:
        return self._inner.text_length

    @property
    def threshold(self) -> int:
        return self._l

    def count(self, pattern: str) -> int:
        return max(0, self._inner.count(pattern) - self._l)  # may drop below truth

    def space_report(self) -> SpaceReport:
        return self._inner.space_report()


class TestValidateIndex:
    def test_exact_index_passes(self):
        t = Text("abracadabra" * 8)
        report = validate_index(FMIndex(t), t)
        assert report.ok
        assert report.patterns_checked > 10
        assert "OK" in report.summary()

    def test_uniform_index_passes(self):
        t = Text("abracadabra" * 8)
        report = validate_index(ApproxIndex(t, 8), t)
        assert report.ok
        assert 0 <= report.mean_error <= 7
        assert report.max_error <= 7

    def test_lower_sided_index_passes(self):
        t = Text("abracadabra" * 8)
        report = validate_index(CompactPrunedSuffixTree(t, 4), t)
        assert report.ok

    def test_broken_index_caught(self):
        t = Text("abracadabra" * 8)
        report = validate_index(_BrokenUniform(t, 8), t)
        assert not report.ok
        assert any("outside" in v.reason for v in report.violations)
        assert "VIOLATIONS" in report.summary()

    def test_text_mismatch_rejected(self):
        t = Text("abracadabra")
        index = FMIndex(t)
        with pytest.raises(InvalidParameterError):
            validate_index(index, Text("different text"))

    def test_custom_workload(self):
        t = Text("abab" * 10)
        report = validate_index(FMIndex(t), t, patterns=["ab", "ba", "zz"])
        assert report.patterns_checked == 3


class TestValidateAll:
    def test_every_bundled_index_passes(self):
        reports = validate_all("the cat sat on the mat and sat again " * 15, l=8)
        failing = [r.summary() for r in reports if not r.ok]
        assert not failing, failing
        names = {r.index_name for r in reports}
        assert "FMIndex" in names
        assert "CompactPrunedSuffixTree" in names
        assert any("Patricia" in name for name in names)

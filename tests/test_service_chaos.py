"""Chaos tests: prove every degradation path fires under injected faults.

All fault injection is seeded (SEED below) and all time is manual, so
these tests are exactly reproducible run to run — CI executes them as a
dedicated job via ``-m chaos``. The core claim under test: whatever
faults the primary tiers suffer, the ladder answers *every* pattern, each
:class:`QueryOutcome` names its serving tier, and the error model the
outcome declares is truthful against ground-truth counts (the same
per-model rules :mod:`repro.validation` enforces).
"""

from __future__ import annotations

import pytest

from repro import CompactPrunedSuffixTree, validate_index
from repro.core import ApproxIndex
from repro.core.interface import ErrorModel
from repro.service import (
    BreakerState,
    FaultSpec,
    FaultyIndex,
    ManualClock,
    RetryPolicy,
    TextStatsEstimator,
    build_default_ladder,
)
from repro.textutil import Text, mixed_workload

pytestmark = pytest.mark.chaos

SEED = 1234
TEXT = Text("abracadabra_the_quick_brown_fox_" * 30)
L = 8
WORKLOAD = mixed_workload(TEXT, per_length=8, seed=SEED)
TRUTH = {pattern: TEXT.count_naive(pattern) for pattern in WORKLOAD}


def _ladder(primary=None, deadline_seconds=0.5, clock=None):
    clock = clock or ManualClock()
    service = build_default_ladder(
        TEXT, L,
        deadline_seconds=deadline_seconds,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001, seed=SEED),
        clock=clock,
        sleep=clock.sleep,
        primary=primary,
    )
    return service, clock


def _assert_outcomes_truthful(outcomes):
    """Every outcome's declared error model must hold against ground truth."""
    for outcome in outcomes:
        assert outcome.contract_holds(TRUTH[outcome.pattern], len(TEXT)), (
            outcome.summary(), TRUTH[outcome.pattern]
        )


class TestPrimaryBlackout:
    """Acceptance scenario: the primary tier fails 100% of calls."""

    def test_every_pattern_still_answered_with_truthful_contracts(self):
        faulty = FaultyIndex.failing(
            CompactPrunedSuffixTree(TEXT, L), rate=1.0, seed=SEED
        )
        service, _ = _ladder(primary=faulty)
        outcomes = [service.query(pattern) for pattern in WORKLOAD]
        assert len(outcomes) == len(WORKLOAD)  # nothing unanswered
        # The dead primary never serves; every outcome names a real tier.
        assert all(outcome.tier != "cpst" for outcome in outcomes)
        assert {outcome.tier for outcome in outcomes} <= {"apx", "qgram", "stats"}
        assert all(outcome.degraded for outcome in outcomes)
        _assert_outcomes_truthful(outcomes)
        # Faults demonstrably fired, and the breaker eventually opened.
        assert sum(faulty.injections.values()) > 0
        assert service.tiers[0].breaker.state is BreakerState.OPEN

    def test_contract_rules_match_repro_validation(self):
        # The per-model rules used by contract_holds are the ones
        # validate_index enforces: the fault-free fallback tiers pass both.
        for estimator in (ApproxIndex(TEXT, L), TextStatsEstimator(TEXT)):
            report = validate_index(estimator, TEXT, patterns=WORKLOAD)
            assert report.ok, [v.reason for v in report.violations]


class TestCorruptedAnswers:
    def test_out_of_range_corruption_is_caught_not_served(self):
        spec = FaultSpec(corrupt_rate=1.0)
        faulty = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, L),
            {"count_or_none": spec, "automaton_count": spec},
            seed=SEED,
        )
        service, _ = _ladder(primary=faulty)
        outcomes = [service.query(pattern) for pattern in WORKLOAD]
        corrupt_injections = sum(
            count for (site, kind), count in faulty.injections.items()
            if kind == "corrupt"
        )
        assert corrupt_injections > 0
        # Corrupted answers never surface: the feasibility check converts
        # them into tier failures and the ladder degrades truthfully.
        assert all(outcome.tier != "cpst" for outcome in outcomes)
        _assert_outcomes_truthful(outcomes)
        flagged = [
            reason
            for outcome in outcomes
            for tier, reason in outcome.failures
            if tier == "cpst" and "IndexCorruptedError" in reason
        ]
        assert flagged, "feasibility check never fired"


class TestBulkStepChaos:
    """Chaos parity for the vectorized engine path (automaton_step_many)."""

    def test_bulk_site_fires_only_on_vectorized_waves(self):
        from repro.engine import planner_for
        from repro.service.faults import InjectedFault

        spec = FaultSpec(error_rate=1.0)
        faulty = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, L),
            {"automaton_step_many": spec},
            seed=SEED,
        )
        # The faulty automaton keeps the inner's vectorized capability, so
        # the planner takes the wave path — straight into the bulk site.
        multi = [p for p in WORKLOAD if len(p) >= 2]
        vectorized = planner_for(faulty, vectorize=True, wave_width_min=1)
        assert vectorized.capabilities.vectorized
        with pytest.raises(InjectedFault, match="automaton_step_many"):
            vectorized.count_many(multi)
        assert faulty.injections[("automaton_step_many", "error")] > 0
        # The scalar path never touches step_many: same faults, no trips.
        scalar = planner_for(faulty, vectorize=False)
        truth = CompactPrunedSuffixTree(TEXT, L)
        assert scalar.count_many(multi) == [truth.count(p) for p in multi]

    def test_bulk_waves_face_scalar_step_rates(self):
        """Each bulk-stepped state rolls the automaton_step rate, so the
        vectorized path cannot dodge chaos by batching."""
        from repro.engine import planner_for

        spec = FaultSpec(latency_rate=1.0, latency=0.01)
        clock = ManualClock()
        faulty = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, L),
            {"automaton_step": spec},
            seed=SEED,
            sleep=clock.sleep,
        )
        planner = planner_for(faulty, vectorize=True, wave_width_min=1)
        planner.count_many([p for p in WORKLOAD if len(p) >= 2])
        spikes = faulty.injections[("automaton_step", "latency")]
        assert spikes == planner.stats.automaton_steps > 0

    def test_ladder_survives_bulk_blackout(self):
        spec = FaultSpec(error_rate=1.0)
        faulty = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, L),
            {"automaton_step_many": spec},
            seed=SEED,
        )
        service, _ = _ladder(primary=faulty)
        outcomes = [service.query(pattern) for pattern in WORKLOAD]
        assert len(outcomes) == len(WORKLOAD)
        _assert_outcomes_truthful(outcomes)


class TestLatencyChaos:
    def test_latency_spikes_deadline_out_to_stats_tier(self):
        clock = ManualClock()
        spike = FaultSpec(latency_rate=1.0, latency=1.0)  # 1s per automaton step
        faulty = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, L),
            {"automaton_step": spike},
            seed=SEED,
            sleep=clock.sleep,
        )
        service, _ = _ladder(primary=faulty, deadline_seconds=0.5, clock=clock)
        long_patterns = [p for p in WORKLOAD if len(p) >= 2][:20]
        outcomes = [service.query(pattern) for pattern in long_patterns]
        assert (
            sum(count for (site, kind), count in faulty.injections.items()
                if kind == "latency") > 0
        )
        # Once the deadline burns, only the always-available tier may serve.
        stats_served = [o for o in outcomes if o.tier == "stats"]
        assert stats_served, "no query ever degraded to the stats tier"
        for outcome in stats_served:
            assert outcome.error_model is ErrorModel.UPPER_BOUND
            assert any("deadline" in reason for _, reason in outcome.failures)
        _assert_outcomes_truthful(outcomes)


class TestPartialFaults:
    def test_intermittent_faults_split_traffic_between_tiers(self):
        spec = FaultSpec(error_rate=0.3)
        faulty = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, L),
            {"count_or_none": spec, "automaton_count": spec},
            seed=SEED,
        )
        service, _ = _ladder(primary=faulty)
        outcomes = [service.query(pattern) for pattern in WORKLOAD]
        served_by = {outcome.tier for outcome in outcomes}
        # With intermittent faults and retries, the primary still serves
        # some queries while others degrade — both paths exercised.
        assert "cpst" in served_by
        assert served_by & {"apx", "qgram", "stats"}
        assert any(outcome.attempts > 1 for outcome in outcomes)
        _assert_outcomes_truthful(outcomes)

    def test_two_dead_tiers_fall_through_to_qgram_and_stats(self):
        dead_cpst = FaultyIndex.failing(
            CompactPrunedSuffixTree(TEXT, L), rate=1.0, seed=SEED
        )
        service, _ = _ladder(primary=dead_cpst)
        # Also kill the second tier, in place, via a wrapper.
        apx_tier = service.tiers[1]
        assert apx_tier.name == "apx"
        apx_tier.estimator = dead_apx = FaultyIndex.failing(
            apx_tier.estimator, rate=1.0, seed=SEED + 1
        )
        from repro.batch import SuffixSharingCounter

        apx_tier._counter = SuffixSharingCounter(dead_apx, max_states=4096)
        outcomes = [service.query(pattern) for pattern in WORKLOAD]
        served_by = {outcome.tier for outcome in outcomes}
        assert served_by <= {"qgram", "stats"}
        assert served_by == {"qgram", "stats"}  # both rungs demonstrably used
        for outcome in outcomes:
            if outcome.tier == "qgram":
                assert outcome.error_model is ErrorModel.EXACT
                assert outcome.count == TRUTH[outcome.pattern]
            else:
                assert outcome.error_model is ErrorModel.UPPER_BOUND
        _assert_outcomes_truthful(outcomes)


class TestDeterminism:
    def test_same_seed_same_story(self):
        def run():
            faulty = FaultyIndex(
                CompactPrunedSuffixTree(TEXT, L),
                {"count_or_none": FaultSpec(error_rate=0.5),
                 "automaton_count": FaultSpec(error_rate=0.5)},
                seed=SEED,
            )
            service, _ = _ladder(primary=faulty)
            outcomes = [service.query(pattern) for pattern in WORKLOAD]
            return [
                (o.pattern, o.count, o.tier, o.attempts, o.failures)
                for o in outcomes
            ], dict(faulty.injections)

        first, first_injections = run()
        second, second_injections = run()
        assert first == second
        assert first_injections == second_injections

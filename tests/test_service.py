"""Unit tests for the resilient serving layer (repro.service).

Everything time-dependent runs on a ManualClock — no real sleeps anywhere
in this module.
"""

from __future__ import annotations

import pytest

from repro import CompactPrunedSuffixTree, validate_index
from repro.core.interface import ErrorModel, OccurrenceEstimator
from repro.errors import (
    AllTiersFailedError,
    DeadlineExceededError,
    IndexCorruptedError,
    InvalidParameterError,
    PatternError,
)
from repro.service import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    FaultSpec,
    FaultyIndex,
    ManualClock,
    QueryOutcome,
    ResilientEstimator,
    RetryPolicy,
    TextStatsEstimator,
    Tier,
    build_default_ladder,
    is_transient,
    run_health_probe,
)
from repro.service.tiers import TierDeclined
from repro.space import SpaceReport
from repro.textutil import Text

TEXT = Text("abracadabra" * 40)


class StubEstimator(OccurrenceEstimator):
    """Scriptable estimator: answers from a list, or raises."""

    error_model = ErrorModel.EXACT

    def __init__(self, answers=None, error=None):
        self._answers = list(answers or [])
        self._error = error
        self.calls = 0

    @property
    def alphabet(self):
        return TEXT.alphabet

    @property
    def text_length(self):
        return len(TEXT)

    def count(self, pattern):
        self.calls += 1
        if self._error is not None:
            raise self._error
        if self._answers:
            return self._answers.pop(0)
        return TEXT.count_naive(pattern)

    def space_report(self):
        return SpaceReport(name="Stub", components={"stub": 1})


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check()  # must not raise

    def test_expires_on_manual_clock(self):
        clock = ManualClock()
        deadline = Deadline(0.5, clock)
        deadline.check()
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.6)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_rejects_negative_budget_and_backward_time(self):
        with pytest.raises(InvalidParameterError):
            Deadline(-1.0)
        with pytest.raises(InvalidParameterError):
            ManualClock().advance(-1)

    def test_threads_through_batch_counter(self):
        from repro.batch import SuffixSharingCounter

        clock = ManualClock()
        index = CompactPrunedSuffixTree(TEXT, 8)
        counter = SuffixSharingCounter(index)
        expired = Deadline(0.1, clock)
        clock.advance(0.2)
        with pytest.raises(DeadlineExceededError):
            counter.count("abracadabra", expired)
        # A live deadline lets the same query through.
        assert counter.count("abracadabra", Deadline(10.0, clock)) == \
            TEXT.count_naive("abracadabra")


class TestRetryPolicy:
    def test_deterministic_given_seed(self):
        a = RetryPolicy(max_attempts=5, seed=42)
        b = RetryPolicy(max_attempts=5, seed=42)
        assert [a.delay(i) for i in range(1, 5)] == [b.delay(i) for i in range(1, 5)]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=9, base_delay=0.1, max_delay=0.4, multiplier=2.0,
            jitter=0.0,
        )
        assert [policy.delay(i) for i in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7, max_attempts=3)
        for _ in range(50):
            assert 0.05 <= policy.delay(1) <= 0.1

    def test_transience_classification(self):
        assert is_transient(RuntimeError("boom"))
        assert not is_transient(PatternError("bad"))
        assert not is_transient(DeadlineExceededError("late"))
        assert not is_transient(InvalidParameterError("bad"))

    def test_should_retry_respects_budget_and_kind(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(1, RuntimeError())
        assert not policy.should_retry(2, RuntimeError())
        assert not policy.should_retry(1, PatternError("bad"))

    def test_delay_capped_at_remaining_deadline(self):
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, jitter=0.0, max_delay=60.0,
        )
        budget = Deadline(2.0, clock)
        clock.advance(1.5)
        assert policy.delay(1, deadline=budget) == pytest.approx(0.5)
        # An unbounded deadline imposes no cap.
        assert policy.delay(1, deadline=Deadline(None, clock)) == 10.0
        assert policy.delay(1) == 10.0

    def test_delay_is_zero_once_deadline_spent(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0)
        budget = Deadline(1.0, clock)
        clock.advance(2.0)
        assert policy.delay(1, deadline=budget) == 0.0

    def test_ladder_stops_retrying_when_deadline_spent(self):
        # The backoff sleep must never overshoot the deadline, and a spent
        # budget ends the retry loop instead of sleeping first.
        clock = ManualClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        flaky = StubEstimator(error=RuntimeError("transient"))
        service = ResilientEstimator(
            [Tier(flaky, "flaky"),
             Tier(TextStatsEstimator(TEXT), "stats", always_available=True)],
            deadline_seconds=1.0,
            retry=RetryPolicy(
                max_attempts=10, base_delay=0.6, jitter=0.0, max_delay=5.0,
            ),
            clock=clock,
            sleep=sleep,
        )
        outcome = service.query("abra")
        assert outcome.tier == "stats"
        # First backoff (0.6s) fits the budget; the capped second sleep
        # lands exactly on the deadline, then the loop stops retrying.
        assert sleeps == [pytest.approx(0.6), pytest.approx(0.4)]
        assert sum(sleeps) <= 1.0
        # The loop ended because the budget ran out, not by attempt count.
        assert flaky.calls < 10
        assert any("deadline" in reason for name, reason in outcome.failures
                   if name == "flaky")

    def test_retry_abandoned_when_failure_consumes_budget(self):
        # A tier whose failing call itself burns the whole budget: the
        # ladder must not sleep at all — it abandons the retry and moves on.
        clock = ManualClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        class BudgetBurner(StubEstimator):
            def count(self, pattern):
                self.calls += 1
                clock.advance(2.0)
                raise RuntimeError("transient")

        burner = BudgetBurner()
        service = ResilientEstimator(
            [Tier(burner, "burner"),
             Tier(TextStatsEstimator(TEXT), "stats", always_available=True)],
            deadline_seconds=1.0,
            retry=RetryPolicy(max_attempts=10, base_delay=0.6, jitter=0.0),
            clock=clock,
            sleep=sleep,
        )
        outcome = service.query("abra")
        assert outcome.tier == "stats"
        assert burner.calls == 1
        assert sleeps == []
        assert ("burner", "retry abandoned: deadline exhausted") in outcome.failures


class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        config = dict(
            window=4, min_calls=4, failure_threshold=0.5,
            reset_timeout=30.0, trial_calls=2, clock=clock,
        )
        config.update(overrides)
        return CircuitBreaker(**config)

    def test_stays_closed_below_min_calls(self):
        breaker = self._breaker(ManualClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_at_failure_rate_over_window(self):
        breaker = self._breaker(ManualClock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()  # window [T, T, F, F] -> rate 0.5
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_recovers_through_half_open(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.2)  # past reset_timeout
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN  # needs trial_calls=2
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_rate() == 0.0  # window cleared on close

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_rejects_bad_configuration(self):
        for kwargs in (
            {"window": 0}, {"min_calls": 0}, {"min_calls": 99},
            {"failure_threshold": 0.0}, {"failure_threshold": 1.5},
            {"reset_timeout": -1}, {"trial_calls": 0},
        ):
            with pytest.raises(InvalidParameterError):
                self._breaker(ManualClock(), **kwargs)

    def test_half_open_admits_exactly_trial_calls_probes(self):
        clock = ManualClock()
        breaker = self._breaker(clock, trial_calls=3)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(30.0)
        # Single-threaded permit accounting: only trial_calls allow()s pass.
        admitted = sum(1 for _ in range(10) if breaker.allow())
        assert admitted == 3
        assert breaker.state is BreakerState.HALF_OPEN

    def test_force_open_and_force_close(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        breaker.force_open()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        # Unlike a failure-driven open, force_open survives the reset
        # timeout only as far as half-open — force_close ends it outright.
        breaker.force_close()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        assert breaker.failure_rate() == 0.0


class TestCircuitBreakerConcurrency:
    """The half-open state is a concurrency funnel: under N threads
    hammering allow()/record(), exactly trial_calls probes may pass."""

    def test_n_threads_through_half_open_admit_exactly_trial_calls(self):
        import threading

        clock = ManualClock()
        trial_calls = 4
        breaker = CircuitBreaker(
            window=8, min_calls=4, failure_threshold=0.5,
            reset_timeout=1.0, trial_calls=trial_calls, clock=clock,
        )
        for _ in range(8):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(1.5)  # cooldown over: next allow() goes half-open

        n_threads = 16
        attempts_per_thread = 50
        admitted = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            mine = 0
            for _ in range(attempts_per_thread):
                if breaker.allow():
                    mine += 1
            with lock:
                admitted.append(mine)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        # Exactly trial_calls probes admitted across all threads combined.
        assert sum(admitted) == trial_calls
        assert breaker.state is BreakerState.HALF_OPEN
        # The admitted probes all succeed -> the breaker closes; further
        # traffic flows freely again.
        for _ in range(trial_calls):
            breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()


class TestTextStatsEstimator:
    def test_contract_validates_as_upper_bound(self):
        stats = TextStatsEstimator(TEXT)
        assert stats.error_model is ErrorModel.UPPER_BOUND
        report = validate_index(stats, TEXT)
        assert report.ok, [v.reason for v in report.violations]

    def test_bounds(self):
        stats = TextStatsEstimator(TEXT)
        assert stats.count("z") == 0  # absent character
        assert stats.count("abracadabra" * 41) == 0  # longer than the text
        truth = TEXT.count_naive("abra")
        assert truth <= stats.count("abra") <= len(TEXT) - 4 + 1
        # The rarest-character bound engages: 'c' occurs once per period.
        assert stats.count("acad") <= TEXT.count_naive("c") + 0

    def test_reliability_only_at_zero(self):
        stats = TextStatsEstimator(TEXT)
        assert stats.is_reliable("z")
        assert not stats.is_reliable("abra")


class TestTier:
    def test_certified_only_declines_below_threshold(self):
        tier = Tier(CompactPrunedSuffixTree(TEXT, 8), certified_only=True)
        count, model, threshold, reliable = tier.answer("abra")
        assert count == TEXT.count_naive("abra")
        assert model is ErrorModel.EXACT and reliable
        with pytest.raises(TierDeclined):
            tier.answer("abracadabra!")  # absent -> below threshold

    def test_infeasible_answers_rejected(self):
        for bogus in (-3, len(TEXT) + 999, "42", None, True):
            tier = Tier(StubEstimator(answers=[bogus]))
            with pytest.raises(IndexCorruptedError):
                tier.answer("abra")

    def test_uniform_tier_keeps_threshold_slack(self):
        from repro.core import ApproxIndex

        apx = ApproxIndex(TEXT, 8)
        tier = Tier(apx)
        # A pattern longer than the text: truth 0, but the uniform contract
        # allows up to l - 1, which must not trip the feasibility check.
        count, model, threshold, _ = tier.answer("abracadabra" * 41)
        assert model is ErrorModel.UNIFORM
        assert 0 <= count <= threshold - 1


class TestResilientEstimator:
    def _ladder(self, clock=None, **kwargs):
        clock = clock or ManualClock()
        kwargs.setdefault("retry", RetryPolicy(max_attempts=2, base_delay=0.001))
        return build_default_ladder(
            TEXT, 8, clock=clock, sleep=clock.sleep, **kwargs
        ), clock

    def test_primary_serves_frequent_patterns(self):
        service, _ = self._ladder()
        outcome = service.query("abra")
        assert outcome.tier == "cpst" and outcome.tier_index == 0
        assert outcome.count == TEXT.count_naive("abra")
        assert not outcome.degraded
        assert outcome.error_model is ErrorModel.EXACT

    def test_rare_patterns_degrade_to_apx_with_uniform_contract(self):
        service, _ = self._ladder()
        outcome = service.query("zzz")
        assert outcome.tier == "apx" and outcome.degraded
        truth = TEXT.count_naive("zzz")
        assert outcome.contract_holds(truth, len(TEXT))
        assert ("cpst", "declined: cannot certify") in outcome.failures

    def test_malformed_patterns_raise_immediately(self):
        service, _ = self._ladder()
        with pytest.raises(PatternError):
            service.query("")
        with pytest.raises(PatternError):
            service.query(123)  # type: ignore[arg-type]

    def test_all_tiers_failed_carries_reasons(self):
        clock = ManualClock()
        broken = StubEstimator(error=RuntimeError("backend down"))
        service = ResilientEstimator(
            [Tier(broken, "only")],
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            clock=clock, sleep=clock.sleep,
        )
        with pytest.raises(AllTiersFailedError) as excinfo:
            service.query("abra")
        assert excinfo.value.pattern == "abra"
        tiers = [tier for tier, _ in excinfo.value.failures]
        assert tiers == ["only", "only"]  # original try + one retry

    def test_deadline_expiry_jumps_to_stats_tier(self):
        clock = ManualClock()
        spike = FaultSpec(latency_rate=1.0, latency=1.0)
        faulty = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, 8),
            {"automaton_step": spike},
            seed=3, sleep=clock.sleep,
        )
        service, _ = self._ladder(clock=clock, primary=faulty,
                                  deadline_seconds=0.5)
        outcome = service.query("abracadabra")
        assert outcome.tier == "stats"
        assert outcome.error_model is ErrorModel.UPPER_BOUND
        assert any("deadline" in reason for _, reason in outcome.failures)
        assert outcome.contract_holds(
            TEXT.count_naive("abracadabra"), len(TEXT)
        )

    def test_breaker_short_circuits_failing_primary(self):
        clock = ManualClock()
        faulty = FaultyIndex.failing(CompactPrunedSuffixTree(TEXT, 8), seed=5)
        service, _ = self._ladder(
            clock=clock, primary=faulty,
            breaker_factory=lambda: CircuitBreaker(
                window=4, min_calls=2, failure_threshold=0.5,
                reset_timeout=60.0, clock=clock,
            ),
        )
        for pattern in ("abra", "brac", "raca", "acad", "cada"):
            service.query(pattern)
        assert service.tiers[0].breaker.state is BreakerState.OPEN
        outcome = service.query("dabr")
        assert ("cpst", "skipped: circuit open") in outcome.failures
        assert outcome.attempts == 1  # primary not even tried

    def test_retry_recovers_transient_failure_on_same_tier(self):
        clock = ManualClock()
        flaky = StubEstimator(answers=[])
        flaky._error = None
        calls = {"n": 0}

        class Flaky(StubEstimator):
            def count(self, pattern):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient blip")
                return TEXT.count_naive(pattern)

        service = ResilientEstimator(
            [Tier(Flaky(), "flaky")],
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
            clock=clock, sleep=clock.sleep,
        )
        outcome = service.query("abra")
        assert outcome.tier == "flaky"
        assert outcome.attempts == 2 and outcome.degraded
        assert outcome.count == TEXT.count_naive("abra")

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(InvalidParameterError):
            ResilientEstimator([Tier(StubEstimator(), "x"),
                                Tier(StubEstimator(), "x")])

    def test_count_many_matches_truth_on_healthy_ladder(self):
        service, _ = self._ladder()
        patterns = ["abra", "cad", "zz", "a", "dabra"]
        counts = service.count_many(patterns)
        outcomes = service.query_many(patterns)
        assert counts == [outcome.count for outcome in outcomes]
        for outcome in outcomes:
            assert outcome.contract_holds(
                TEXT.count_naive(outcome.pattern), len(TEXT)
            )


class TestHealthProbe:
    def test_healthy_ladder_reports_pass(self):
        clock = ManualClock()
        service = build_default_ladder(
            TEXT, 8, clock=clock, sleep=clock.sleep,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        report = run_health_probe(service, text=TEXT, seed=1)
        assert report.ok and report.answered == report.total
        text = report.format()
        assert "serve-check PASS" in text
        for name in ("cpst", "apx", "qgram", "stats"):
            assert name in text

    def test_requires_patterns_or_text(self):
        clock = ManualClock()
        service = build_default_ladder(TEXT, 8, clock=clock, sleep=clock.sleep)
        with pytest.raises(ValueError):
            run_health_probe(service)


class TestQueryOutcomeContract:
    def _outcome(self, model, count, threshold=8, pattern="abra"):
        return QueryOutcome(
            pattern=pattern, count=count, tier="t", tier_index=0,
            error_model=model, threshold=threshold, reliable=False,
            elapsed=0.0, attempts=1,
        )

    def test_exact(self):
        assert self._outcome(ErrorModel.EXACT, 5).contract_holds(5)
        assert not self._outcome(ErrorModel.EXACT, 6).contract_holds(5)

    def test_uniform(self):
        assert self._outcome(ErrorModel.UNIFORM, 12).contract_holds(5)
        assert not self._outcome(ErrorModel.UNIFORM, 13).contract_holds(5)
        assert not self._outcome(ErrorModel.UNIFORM, 4).contract_holds(5)

    def test_lower_sided(self):
        assert self._outcome(ErrorModel.LOWER_SIDED, 20).contract_holds(20)
        assert not self._outcome(ErrorModel.LOWER_SIDED, 19).contract_holds(20)
        assert self._outcome(ErrorModel.LOWER_SIDED, 3).contract_holds(2)
        assert not self._outcome(ErrorModel.LOWER_SIDED, 9).contract_holds(2)

    def test_upper_bound_with_and_without_text_length(self):
        outcome = self._outcome(ErrorModel.UPPER_BOUND, 50)
        assert outcome.contract_holds(10)
        assert not outcome.contract_holds(60)
        assert outcome.contract_holds(10, text_length=100)
        assert not outcome.contract_holds(10, text_length=40)

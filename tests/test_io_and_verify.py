"""Tests for safe persistence and the linear-time suffix-array verifier."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import ApproxIndex, CompactPrunedSuffixTree, FMIndex
from repro.errors import (
    IndexCorruptedError,
    InvalidParameterError,
    ReproError,
)
from repro.io import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    FORMAT_VERSION,
    MAGIC,
    artifact_bytes,
    load_artifact,
    load_index,
    save_artifact,
    save_index,
)
from repro.sa import suffix_array, suffix_array_naive
from repro.sa.verify import verify_suffix_array
from repro.textutil import Text


class TestSaveLoad:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda t: FMIndex(t),
            lambda t: ApproxIndex(t, 8),
            lambda t: CompactPrunedSuffixTree(t, 8),
        ],
        ids=["fm", "apx", "cpst"],
    )
    def test_roundtrip(self, tmp_path, builder):
        t = Text("abracadabra" * 10)
        index = builder(t)
        path = save_index(index, tmp_path / "index.ridx")
        loaded = load_index(path)
        assert type(loaded) is type(index)
        for pattern in ("abra", "cad", "zz"):
            assert loaded.count(pattern) == index.count(pattern)

    def test_rejects_non_index(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            save_index({"not": "an index"}, tmp_path / "x.ridx")  # type: ignore[arg-type]

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "garbage.ridx"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 20)
        with pytest.raises(ReproError):
            load_index(path)

    def test_wrong_version(self, tmp_path):
        t = Text("abc" * 10)
        path = save_index(FMIndex(t), tmp_path / "v.ridx")
        raw = bytearray(path.read_bytes())
        raw[len(MAGIC) : len(MAGIC) + 2] = (FORMAT_VERSION + 9).to_bytes(2, "big")
        path.write_bytes(bytes(raw))
        with pytest.raises(ReproError):
            load_index(path)

    def test_header_class_mismatch(self, tmp_path):
        t = Text("abc" * 10)
        path = save_index(FMIndex(t), tmp_path / "m.ridx")
        raw = path.read_bytes()
        # Tamper: declare a different class name of equal length.
        declared = b"FMIndex"
        fake = b"XMIndex"
        path.write_bytes(raw.replace(declared, fake, 1))
        with pytest.raises(ReproError):
            load_index(path)

    def test_malicious_pickle_rejected(self, tmp_path):
        class Evil:
            def __reduce__(self):
                return (eval, ("1+1",))

        path = tmp_path / "evil.ridx"
        name = b"FMIndex"
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(FORMAT_VERSION.to_bytes(2, "big"))
            handle.write(len(name).to_bytes(2, "big"))
            handle.write(name)
            pickle.dump(Evil(), handle)
        with pytest.raises(ReproError):
            load_index(path)


class TestSuffixArrayVerifier:
    def test_accepts_correct_arrays(self, rng):
        for sigma in (2, 5, 20):
            syms = rng.integers(1, sigma + 1, size=500)
            data = np.concatenate([syms, [0]])
            assert verify_suffix_array(data, suffix_array(data))

    def test_matches_naive_judgement(self, rng):
        syms = rng.integers(1, 4, size=80)
        data = np.concatenate([syms, [0]])
        good = suffix_array_naive(data)
        assert verify_suffix_array(data, good)

    def test_rejects_swaps(self, rng):
        syms = rng.integers(1, 4, size=200)
        data = np.concatenate([syms, [0]])
        sa = suffix_array(data)
        for trial in range(20):
            corrupted = sa.copy()
            i, j = rng.integers(0, sa.size, size=2)
            if i == j:
                continue
            corrupted[i], corrupted[j] = corrupted[j], corrupted[i]
            assert not verify_suffix_array(data, corrupted), (i, j)

    def test_rejects_non_permutation(self):
        data = np.array([1, 2, 1, 0])
        assert not verify_suffix_array(data, np.array([3, 0, 0, 1]))

    def test_rejects_wrong_length(self):
        data = np.array([1, 0])
        assert not verify_suffix_array(data, np.array([1]))

    def test_requires_sentinel(self):
        with pytest.raises(InvalidParameterError):
            verify_suffix_array(np.array([2, 1, 2]), np.array([1, 0, 2]))

    def test_large_scale(self):
        from repro.datasets import generate

        data = Text(generate("english", 50_000, seed=5)).data
        assert verify_suffix_array(data, suffix_array(data))

    def test_empty(self):
        assert verify_suffix_array(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))


class TestArtifactAlignment:
    """The v3 artifact framing: 56-byte (8-aligned) header + zero pad."""

    def test_header_is_56_bytes_and_aligned(self):
        array = np.arange(17, dtype=np.int64)
        blob = artifact_bytes(array)
        assert blob.startswith(ARTIFACT_MAGIC)
        version = int.from_bytes(blob[8:10], "big")
        assert version == ARTIFACT_VERSION
        # magic(8) + version(2) + length(8) + sha256(32) + pad(6) = 56
        header_len = 8 + 2 + 8 + 32 + 6
        assert header_len == 56 and header_len % 8 == 0
        assert blob[50:56] == bytes(6)
        # The npy payload's array data starts at a 64-byte offset inside
        # the payload, so the words land 8-aligned in the file.
        payload_len = int.from_bytes(blob[10:18], "big")
        assert len(blob) == header_len + payload_len

    def test_padding_roundtrip(self, tmp_path):
        for array in (
            np.arange(100, dtype=np.uint64),
            np.array([], dtype=np.int32),
            np.arange(7, dtype=np.uint8),
        ):
            path = save_artifact(array, tmp_path / "a.rart")
            loaded = load_artifact(path)
            assert loaded.dtype == array.dtype
            assert np.array_equal(loaded, array)

    def test_nonzero_padding_rejected(self, tmp_path):
        array = np.arange(10, dtype=np.int64)
        blob = bytearray(artifact_bytes(array))
        blob[52] = 0xAB  # scribble inside the pad region
        path = tmp_path / "bad.rart"
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexCorruptedError):
            load_artifact(path)

    def test_v2_unpadded_artifacts_still_load(self, tmp_path):
        # A legacy v2 file has a 50-byte header and no pad bytes.
        import hashlib
        import io as stdio

        array = np.arange(23, dtype=np.int64)
        buffer = stdio.BytesIO()
        np.save(buffer, array, allow_pickle=False)
        payload = buffer.getvalue()
        legacy = (
            ARTIFACT_MAGIC
            + FORMAT_VERSION.to_bytes(2, "big")
            + len(payload).to_bytes(8, "big")
            + hashlib.sha256(payload).digest()
            + payload
        )
        path = tmp_path / "legacy.rart"
        path.write_bytes(legacy)
        assert np.array_equal(load_artifact(path), array)

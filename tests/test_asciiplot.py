"""Tests for the ASCII chart rendering of Figure 8."""

from __future__ import annotations

import pytest

from repro.experiments import figure8
from repro.experiments.asciiplot import render_all, render_figure8


@pytest.fixture(scope="module")
def rows():
    return figure8.run(size=5000, thresholds=(8, 32, 128), datasets=["dna", "english"])


class TestRenderFigure8:
    def test_contains_all_glyphs(self, rows):
        chart = render_figure8(rows, "dna")
        assert "A" in chart and "P" in chart and "C" in chart
        assert "·" in chart  # FM reference line
        assert "legend:" in chart

    def test_axis_labels(self, rows):
        chart = render_figure8(rows, "dna")
        assert "8" in chart and "32" in chart

    def test_unknown_dataset_rejected(self, rows):
        with pytest.raises(ValueError):
            render_figure8(rows, "proteins")

    def test_dimensions_respected(self, rows):
        height = 10
        width = 40
        chart = render_figure8(rows, "dna", width=width, height=height)
        body = [line for line in chart.splitlines() if line.startswith("|")]
        assert len(body) == height
        assert all(len(line) == width + 1 for line in body)

    def test_render_all_covers_datasets(self, rows):
        combined = render_all(rows)
        assert "dna:" in combined and "english:" in combined

    def test_cpst_is_lowest_curve(self, rows):
        """The CPST glyph must appear on the lowest populated row of the
        chart (smallest index everywhere)."""
        chart = render_figure8(rows, "english")
        body = [line for line in chart.splitlines() if line.startswith("|")]
        lowest_glyph_row = max(
            i for i, line in enumerate(body) if set(line) & set("APC")
        )
        assert "C" in body[lowest_glyph_row]

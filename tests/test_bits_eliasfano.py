"""Tests for Elias–Fano sequences and the sparse bitvector wrapper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import EliasFano, SparseBitVector
from repro.errors import InvalidParameterError

monotone_lists = st.lists(
    st.integers(min_value=0, max_value=5000), min_size=0, max_size=300
).map(sorted)


class TestEliasFanoBasics:
    def test_empty(self):
        ef = EliasFano([])
        assert len(ef) == 0
        assert ef.num_less(10) == 0
        assert ef.predecessor(5) is None
        assert ef.successor(5) is None

    def test_roundtrip(self):
        values = [0, 0, 3, 7, 7, 7, 100, 1000]
        ef = EliasFano(values)
        assert list(ef) == values
        assert ef.to_array().tolist() == values

    def test_decreasing_rejected(self):
        with pytest.raises(InvalidParameterError):
            EliasFano([3, 2])

    def test_universe_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            EliasFano([5], universe=5)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            EliasFano([-1, 0])

    def test_explicit_universe(self):
        ef = EliasFano([1, 2], universe=10**6)
        assert ef.universe == 10**6
        assert list(ef) == [1, 2]

    def test_space_is_sublinear_for_sparse(self):
        # 100 values in a universe of a million: ~ m*log(u/m) + 2m bits.
        values = np.arange(100) * 9973
        ef = EliasFano(values, universe=10**6)
        assert ef.size_in_bits() < 100 * 20 + 300

    def test_dense_sequence(self):
        values = list(range(256))
        ef = EliasFano(values)
        assert list(ef) == values


class TestEliasFanoOrderQueries:
    @pytest.fixture
    def ef(self):
        return EliasFano([2, 2, 5, 9, 9, 9, 14, 21])

    def test_num_less(self, ef):
        assert ef.num_less(0) == 0
        assert ef.num_less(2) == 0
        assert ef.num_less(3) == 2
        assert ef.num_less(9) == 3
        assert ef.num_less(10) == 6
        assert ef.num_less(22) == 8
        assert ef.num_less(1000) == 8

    def test_predecessor(self, ef):
        assert ef.predecessor(1) is None
        assert ef.predecessor(2) == (1, 2)
        assert ef.predecessor(8) == (2, 5)
        assert ef.predecessor(9) == (5, 9)
        assert ef.predecessor(100) == (7, 21)

    def test_successor(self, ef):
        assert ef.successor(0) == (0, 2)
        assert ef.successor(2) == (0, 2)
        assert ef.successor(3) == (2, 5)
        assert ef.successor(10) == (6, 14)
        assert ef.successor(21) == (7, 21)
        assert ef.successor(22) is None


@settings(max_examples=80, deadline=None)
@given(monotone_lists, st.integers(min_value=0, max_value=5200))
def test_property_order_queries_match_naive(values, x):
    ef = EliasFano(values)
    arr = np.asarray(values, dtype=np.int64)
    assert ef.num_less(x) == int((arr < x).sum())
    assert ef.num_less_or_equal(x) == int((arr <= x).sum())
    pred = ef.predecessor(x)
    below = [v for v in values if v <= x]
    if below:
        assert pred is not None and pred[1] == below[-1]
    else:
        assert pred is None
    succ = ef.successor(x)
    above = [v for v in values if v >= x]
    if above:
        assert succ is not None and succ[1] == above[0]
    else:
        assert succ is None


@settings(max_examples=60, deadline=None)
@given(monotone_lists)
def test_property_roundtrip(values):
    ef = EliasFano(values)
    assert list(ef) == values


class TestSparseBitVector:
    def test_basic(self):
        sbv = SparseBitVector([2, 5, 11], 16)
        assert len(sbv) == 16
        assert sbv.num_ones == 3
        assert [sbv[i] for i in range(16)] == [
            0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0,
        ]

    def test_rank_select(self):
        positions = [3, 7, 8, 20, 63, 64, 100]
        n = 128
        sbv = SparseBitVector(positions, n)
        bits = [1 if i in set(positions) else 0 for i in range(n)]
        for i in range(0, n + 1, 5):
            assert sbv.rank1(i) == sum(bits[:i])
            assert sbv.rank0(i) == i - sum(bits[:i])
        for k in range(1, len(positions) + 1):
            assert sbv.select1(k) == positions[k - 1]
        assert sbv.select1(len(positions) + 1) == -1
        # select0 spot checks
        zeros = [i for i in range(n) if not bits[i]]
        for k in (1, 2, 10, len(zeros)):
            assert sbv.select0(k) == zeros[k - 1]

    def test_non_increasing_rejected(self):
        with pytest.raises(InvalidParameterError):
            SparseBitVector([5, 5], 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            SparseBitVector([10], 10)

    def test_empty(self):
        sbv = SparseBitVector([], 10)
        assert sbv.num_ones == 0
        assert sbv.rank1(10) == 0
        assert sbv.select1(1) == -1
        assert sbv.select0(10) == 9

"""Corruption-watchdog tests, ending in the end-to-end acceptance chaos
test: a silently bit-flipped CPST tier is detected by differential probes,
quarantined, rebuilt from text and readmitted — while a 16-thread workload
through the QueryServer keeps returning only contract-valid answers, with
zero lost or duplicated replies.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.core import CompactPrunedSuffixTree
from repro.errors import InvalidParameterError
from repro.service import (
    BreakerState,
    CorruptionWatchdog,
    FaultSpec,
    FaultyIndex,
    QueryOutcome,
    QueryServer,
    ShedOutcome,
    build_default_ladder,
    default_rebuilders,
    probes_from_text,
)
from repro.textutil import Text, mixed_workload

pytestmark = pytest.mark.chaos

SEED = 1234
TEXT = Text("abracadabra_the_quick_brown_fox_" * 30)
L = 8
PROBES = probes_from_text(TEXT, per_length=4, seed=SEED)
WORKLOAD = mixed_workload(TEXT, per_length=8, seed=SEED)
TRUTH = {pattern: TEXT.count_naive(pattern) for pattern in WORKLOAD}


def _bitflip_primary(seed=7):
    """A CPST whose every count comes back silently bit-flipped."""
    spec = FaultSpec(corrupt_rate=1.0, corrupt_mode="bitflip")
    return FaultyIndex(
        CompactPrunedSuffixTree(TEXT, L),
        {"count_or_none": spec, "automaton_count": spec},
        seed=seed,
    )


def _service(primary=None):
    return build_default_ladder(TEXT, L, primary=primary, deadline_seconds=5.0)


class TestBitflipMode:
    def test_bitflip_is_silent_but_wrong(self):
        # The corrupted counts stay feasible (>= 0, near the truth), so the
        # ladder's feasibility check cannot catch them — only a
        # differential probe against a recorded truth can. Probe the
        # certified region (truth >= L), where the uncorrupted CPST is
        # exact, so any deviation is the injected flip.
        faulty = _bitflip_primary()
        checked = 0
        for pattern, truth in PROBES.items():
            if truth < L:
                continue
            observed = faulty.count_or_none(pattern)
            if observed is None:
                continue
            checked += 1
            assert observed >= 0
            assert observed != truth
            assert abs(observed - truth) in (1, 2, 4)  # a low-bit flip
        assert checked > 0

    def test_corrupt_mode_validated(self):
        with pytest.raises(InvalidParameterError, match="corrupt_mode"):
            FaultSpec(corrupt_rate=0.5, corrupt_mode="nonsense")


class TestProbeRounds:
    def test_healthy_ladder_produces_no_events(self):
        service = _service()
        watchdog = CorruptionWatchdog(
            service, PROBES, probes_per_round=8, seed=SEED
        )
        for _ in range(3):
            findings = watchdog.run_probe_round()
            assert all(finding.ok for finding in findings)
        assert watchdog.events == []
        assert watchdog.rounds == 3
        assert not any(tier.quarantined for tier in service.tiers)

    def test_corrupt_tier_quarantined_without_rebuilder(self):
        service = _service(primary=_bitflip_primary())
        watchdog = CorruptionWatchdog(
            service, PROBES, probes_per_round=8, seed=SEED
        )
        watchdog.run_probe_round()
        cpst = service.tiers[0]
        assert cpst.quarantined
        assert cpst.breaker.state is BreakerState.OPEN
        (event,) = watchdog.events
        assert event.tier == "cpst" and not event.rebuilt
        # The quarantined tier is skipped; queries still get answers.
        outcome = service.query("abra")
        assert outcome.tier != "cpst"
        assert ("cpst", [])[0] in [name for name, _ in outcome.failures]

    def test_quarantine_rebuild_readmit_cycle(self):
        service = _service(primary=_bitflip_primary())
        watchdog = CorruptionWatchdog(
            service, PROBES,
            rebuilders=default_rebuilders(TEXT, L),
            probes_per_round=8, seed=SEED,
        )
        watchdog.run_probe_round()
        (event,) = watchdog.events
        assert event.rebuilt and event.readmitted
        assert all(finding.ok for finding in event.verification)
        cpst = service.tiers[0]
        assert not cpst.quarantined
        assert cpst.breaker.state is BreakerState.CLOSED
        # The rebuilt estimator is the genuine article, and cpst serves.
        assert isinstance(cpst.estimator, CompactPrunedSuffixTree)
        outcome = service.query("abracadabra")
        assert outcome.tier == "cpst"
        assert outcome.count == TEXT.count_naive("abracadabra")

    def test_background_thread_runs_rounds(self):
        service = _service()
        watchdog = CorruptionWatchdog(
            service, PROBES, probes_per_round=2, interval=0.01, seed=SEED
        )
        watchdog.start()
        try:
            end = threading.Event()
            for _ in range(100):
                if watchdog.rounds >= 2:
                    break
                end.wait(0.02)
        finally:
            watchdog.stop()
        assert watchdog.rounds >= 2
        stopped_at = watchdog.rounds
        threading.Event().wait(0.05)
        assert watchdog.rounds == stopped_at  # genuinely stopped

    def test_validation(self):
        service = _service()
        with pytest.raises(InvalidParameterError):
            CorruptionWatchdog(service, {})
        with pytest.raises(InvalidParameterError):
            CorruptionWatchdog(service, PROBES, probes_per_round=0)
        with pytest.raises(InvalidParameterError):
            CorruptionWatchdog(service, PROBES, interval=0.0)


class TestContextBackedRebuild:
    """Rebuilders sharing the serve-time BuildContext re-sort nothing.

    "Faster" is asserted by counting suffix-array constructions (the
    dominant rebuild cost), not wall clock, so the test cannot flake on a
    loaded machine.
    """

    def _count_sa(self, monkeypatch):
        import repro.sa as sa_mod

        calls = []
        real = sa_mod.suffix_array

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(sa_mod, "suffix_array", counting)
        return calls

    def test_cached_rebuild_performs_no_new_suffix_sort(self, monkeypatch):
        from repro.build import BuildContext

        ctx = BuildContext(TEXT)
        service = build_default_ladder(
            TEXT, L, primary=_bitflip_primary(),
            context=ctx, deadline_seconds=5.0,
        )
        calls = self._count_sa(monkeypatch)
        watchdog = CorruptionWatchdog(
            service, PROBES,
            rebuilders=default_rebuilders(TEXT, L, context=ctx),
            probes_per_round=8, seed=SEED,
        )
        watchdog.run_probe_round()
        (event,) = watchdog.events
        assert event.rebuilt and event.readmitted
        assert event.rebuild_seconds > 0.0
        # The rebuild consumed the context's memoised artifacts: zero
        # fresh suffix sorts, versus >= 1 for a from-text rebuild (below).
        assert calls == []
        post = service.query("abracadabra")
        assert post.tier == "cpst"
        assert post.count == TEXT.count_naive("abracadabra")

    def test_fresh_rebuild_pays_a_suffix_sort(self, monkeypatch):
        service = build_default_ladder(
            TEXT, L, primary=_bitflip_primary(), deadline_seconds=5.0
        )
        calls = self._count_sa(monkeypatch)
        watchdog = CorruptionWatchdog(
            service, PROBES,
            rebuilders=default_rebuilders(TEXT, L),  # no shared context
            probes_per_round=8, seed=SEED,
        )
        watchdog.run_probe_round()
        (event,) = watchdog.events
        assert event.rebuilt and event.readmitted
        assert len(calls) >= 1

    def test_watchdog_report_rollup(self, monkeypatch):
        from repro.build import BuildContext
        from repro.service import WatchdogReport

        ctx = BuildContext(TEXT)
        service = build_default_ladder(
            TEXT, L, primary=_bitflip_primary(),
            context=ctx, deadline_seconds=5.0,
        )
        watchdog = CorruptionWatchdog(
            service, PROBES,
            rebuilders=default_rebuilders(TEXT, L, context=ctx),
            probes_per_round=8, seed=SEED,
        )
        empty = watchdog.report()
        assert isinstance(empty, WatchdogReport)
        assert empty.rounds == 0 and empty.events == 0
        assert empty.rebuild_seconds == 0.0

        watchdog.run_probe_round()
        report = watchdog.report()
        assert report.rounds == 1
        assert report.events == 1
        assert report.rebuilt == 1 and report.readmitted == 1
        assert report.quarantined_tiers == ()
        assert report.rebuild_seconds == watchdog.events[0].rebuild_seconds
        assert "1 rebuilt" in report.format()


class TestWatchdogAcceptance:
    """The PR's acceptance scenario, end to end.

    Staging (all deterministic, no sleeps on the assertion path):

    1. the watchdog's differential probes catch the silently bit-flipped
       CPST tier and quarantine it *before any client traffic* — a silent
       corruption is feasible-looking by construction, so detection must
       precede serving for the validity claim to be meaningful;
    2. the rebuild blocks until the 16-thread workload is in flight, so
       the workload demonstrably runs while the tier is quarantined and
       being rebuilt (answers come from the healthy lower tiers);
    3. the rebuild completes, verification passes, the tier is readmitted
       mid-workload and serves exact answers again.
    """

    def test_detect_quarantine_rebuild_readmit_under_16_thread_load(self):
        service = _service(primary=_bitflip_primary())
        quarantined_now = threading.Event()
        workload_running = threading.Event()
        rebuilders = default_rebuilders(TEXT, L)
        real_cpst_factory = rebuilders["cpst"]

        def gated_cpst_rebuild():
            # Called inside the watchdog's quarantine path: the tier is
            # already quarantined. Hold the rebuild until the workload is
            # demonstrably running through the degraded ladder.
            quarantined_now.set()
            assert workload_running.wait(timeout=30.0)
            return real_cpst_factory()

        rebuilders["cpst"] = gated_cpst_rebuild
        watchdog = CorruptionWatchdog(
            service, PROBES,
            rebuilders=rebuilders,
            probes_per_round=8, seed=SEED,
        )
        server = QueryServer(
            service,
            max_concurrent=16,
            max_waiting=256,
            max_wait=5.0,
            watchdog=watchdog,
        )
        n_threads = 16
        per_thread = [list(WORKLOAD) for _ in range(n_threads)]
        results = [[] for _ in range(n_threads)]
        errors = []
        barrier = threading.Barrier(n_threads + 1)

        def worker(index):
            barrier.wait()
            for position, pattern in enumerate(per_thread[index]):
                try:
                    results[index].append(server.query(pattern))
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append((pattern, exc))
                if position == 4:
                    # The workload is demonstrably in flight while the
                    # tier is quarantined: let the rebuild proceed.
                    workload_running.set()

        with server:
            prober = threading.Thread(target=watchdog.run_probe_round)
            prober.start()
            # Detection and quarantine happen before any client traffic.
            assert quarantined_now.wait(timeout=30.0)
            assert service.tiers[0].quarantined
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            for thread in threads:
                thread.join(timeout=60.0)
            prober.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
            assert not prober.is_alive()

        # 1. The corruption was detected, the tier quarantined, rebuilt
        #    from text, and readmitted.
        assert watchdog.events, "watchdog saw no corruption"
        event = watchdog.events[0]
        assert event.tier == "cpst"
        assert event.rebuilt and event.readmitted
        cpst = service.tiers[0]
        assert not cpst.quarantined
        assert cpst.breaker.state is BreakerState.CLOSED

        # 2. Zero lost or duplicated replies: every thread got exactly one
        #    reply per pattern it sent, in order.
        assert errors == []
        for index in range(n_threads):
            sent = Counter(per_thread[index])
            got = Counter(reply.pattern for reply in results[index])
            assert got == sent

        # 3. Every reply is contract-valid: it names its tier and honors
        #    the error model it declares, against ground truth.
        tier_names = {tier.name for tier in service.tiers}
        for index in range(n_threads):
            for reply in results[index]:
                assert isinstance(reply, (QueryOutcome, ShedOutcome))
                assert reply.tier in tier_names
                assert reply.contract_holds(
                    TRUTH[reply.pattern], len(TEXT)
                ), reply.summary()

        # 4. After readmission the rebuilt primary serves exact answers.
        post = service.query("abracadabra")
        assert post.tier == "cpst"
        assert post.count == TEXT.count_naive("abracadabra")

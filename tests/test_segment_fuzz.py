"""Segment header fuzzing: every corrupted byte fails *cleanly*.

The daemon's "no torn generation ever serves" invariant bottoms out in
:meth:`repro.parallel.segment.Segment.parse`: a worker attaches a shared
block only after a verifying parse, so a flipped bit anywhere in the
blob must surface as :class:`~repro.errors.IndexCorruptedError` — never
a crash, never a silently misparsed structure. This suite bit-flips
every byte of the fixed and JSON headers (and samples the payload) and
asserts exactly that.
"""

from __future__ import annotations

import pytest

from repro.baselines.fm import FMIndex
from repro.errors import IndexCorruptedError
from repro.parallel.segment import (
    _FIXED_HEADER,
    Segment,
    write_estimator_segment,
)

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def blob():
    return write_estimator_segment(FMIndex("abracadabra banana" * 4), "s0")


@pytest.fixture(scope="module")
def header_end(blob):
    header_len = int.from_bytes(blob[10:18], "big")
    return _FIXED_HEADER + header_len


def _flipped(blob, offset, mask):
    corrupt = bytearray(blob)
    corrupt[offset] ^= mask
    return bytes(corrupt)


class TestHeaderBitFlips:
    def test_clean_blob_parses(self, blob):
        segment = Segment.parse(blob, verify=True)
        assert segment.name == "s0"
        assert segment.nbytes == len(blob)

    @pytest.mark.parametrize("mask", [0x01, 0x80])
    def test_every_header_byte_is_load_bearing(
        self, blob, header_end, mask
    ):
        # The fixed header (magic, version, length, digest, pad) and the
        # JSON header it authenticates: one flipped bit anywhere must be
        # a clean rejection before any view is dereferenced.
        for offset in range(header_end):
            with pytest.raises(IndexCorruptedError):
                Segment.parse(_flipped(blob, offset, mask), verify=True)

    def test_payload_flips_fail_the_payload_digest(self, blob, header_end):
        # The digest-covered payload region starts at the 8-aligned
        # boundary; the 0-7 alignment bytes before it are structural
        # padding outside every digest (flipping them is harmless).
        payload_start = (header_end + 7) & ~7
        span = len(blob) - payload_start
        for offset in range(payload_start, len(blob), max(1, span // 64)):
            with pytest.raises(IndexCorruptedError):
                Segment.parse(_flipped(blob, offset, 0x01), verify=True)

    def test_every_truncation_is_rejected(self, blob):
        for length in range(0, len(blob), max(1, len(blob) // 128)):
            with pytest.raises(IndexCorruptedError):
                Segment.parse(blob[:length], verify=True)

    def test_structural_checks_hold_even_unverified(self, blob):
        # verify=False skips the digests but never the structure: bad
        # magic, bad version, non-zero pad and truncations still reject.
        assert Segment.parse(blob, verify=False).name == "s0"
        for offset in (0, 7, 8, 9, 50, 55):
            with pytest.raises(IndexCorruptedError):
                Segment.parse(
                    _flipped(blob, offset, 0x01), verify=False
                )
        with pytest.raises(IndexCorruptedError):
            Segment.parse(blob[:40], verify=False)

    def test_garbage_and_empty_buffers(self):
        with pytest.raises(IndexCorruptedError):
            Segment.parse(b"", verify=True)
        with pytest.raises(IndexCorruptedError):
            Segment.parse(b"\x00" * 200, verify=True)
        with pytest.raises(IndexCorruptedError):
            Segment.parse(b"REPROSEG" + b"\xff" * 192, verify=True)

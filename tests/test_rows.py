"""Tests for the row-level (distinct-row) selectivity index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rows import RowSelectivityIndex
from repro.errors import InvalidParameterError


def rows_containing(rows, pattern):
    return sum(1 for row in rows if pattern in row)


def occurrences(rows, pattern):
    total = 0
    for row in rows:
        start = row.find(pattern)
        while start >= 0:
            total += 1
            start = row.find(pattern, start + 1)
    return total


class TestRowSelectivity:
    @pytest.fixture
    def library_rows(self):
        base = [
            "the cat sat on the mat",
            "the dog sat on the log",
            "a cat and a dog",
            "the mat was flat",
            "dogs chase cats",
        ]
        return base * 10  # every base row appears 10 times

    def test_exact_row_counts_above_threshold(self, library_rows):
        index = RowSelectivityIndex(library_rows, l=8)
        for pattern in ("the", "cat", "sat on", "dog", "mat"):
            expected_rows = rows_containing(library_rows, pattern)
            if occurrences(library_rows, pattern) >= 8:
                assert index.count_rows_or_none(pattern) == expected_rows, pattern

    def test_below_threshold_detected(self, library_rows):
        index = RowSelectivityIndex(library_rows, l=16)
        assert index.count_rows_or_none("chase cats and dogs") is None
        assert index.count_rows_or_none("zzz") is None

    def test_rows_never_exceed_occurrences(self, library_rows):
        index = RowSelectivityIndex(library_rows, l=8)
        for pattern in ("the", "a", "t", "on"):
            occ = index.count_or_none(pattern)
            rows = index.count_rows_or_none(pattern)
            if occ is not None:
                assert rows is not None and rows <= occ

    def test_repeated_pattern_in_one_row(self):
        # 'xx' occurs many times but only in a handful of rows.
        rows = ["xxxxxxxxxx"] * 3 + ["yy"] * 20
        index = RowSelectivityIndex(rows, l=4)
        assert index.count_rows_or_none("xx") == 3
        assert index.count_or_none("xx") == 27  # overlapping occurrences

    def test_selectivity_fraction(self, library_rows):
        index = RowSelectivityIndex(library_rows, l=4)
        fraction = index.selectivity_or_none("cat")
        assert fraction == rows_containing(library_rows, "cat") / len(library_rows)

    def test_patterns_never_straddle_rows(self):
        rows = ["ab"] * 10 + ["ba"] * 10
        index = RowSelectivityIndex(rows, l=4)
        # 'ab'+'ba' are adjacent in the concatenation but separated by ▷.
        assert index.count_rows_or_none("bb") is None
        assert index.count_rows_or_none("ab") == 10

    def test_metadata(self, library_rows):
        index = RowSelectivityIndex(library_rows, l=8)
        assert index.num_rows == len(library_rows)
        assert index.threshold == 8
        assert index.is_reliable("the")

    def test_empty_rows_rejected(self):
        with pytest.raises(InvalidParameterError):
            RowSelectivityIndex([], l=4)

    def test_space_includes_row_counts(self, library_rows):
        report = RowSelectivityIndex(library_rows, l=8).space_report()
        assert "row_counts" in report.components
        assert report.payload_bits > 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.text(alphabet="ab", min_size=1, max_size=8), min_size=1, max_size=40),
    st.text(alphabet="ab", min_size=1, max_size=3),
    st.sampled_from([2, 4]),
)
def test_property_exact_rows_when_certified(rows, pattern, l):
    index = RowSelectivityIndex(rows, l=l)
    got = index.count_rows_or_none(pattern)
    occ = occurrences(rows, pattern)
    if occ >= l:
        assert got == rows_containing(rows, pattern)
    elif got is not None:
        # The structure may certify via a longer-locus node only when the
        # occurrence count truly reaches the threshold; otherwise None.
        raise AssertionError(f"certified a below-threshold pattern {pattern!r}")

"""Run the doctests embedded in library docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.lowerbound
import repro.bits.intvector
import repro.experiments.tables
import repro.textutil.alphabet
import repro.textutil.entropy

MODULES = [
    repro.analysis.lowerbound,
    repro.bits.intvector,
    repro.experiments.tables,
    repro.textutil.alphabet,
    repro.textutil.entropy,
]


@pytest.mark.parametrize("module", MODULES, ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"

"""Engine layer: automaton adapters, trie planner, stats, deadlines.

The differential core: for every automaton-capable index, the engine's
trie-planned ``count_many`` must return exactly what sequential
``count`` calls return — the planner is an execution strategy, never an
approximation. On top of that: ``automaton_of`` resolution order,
capability descriptors, the LRU state-cache bound (eviction never drops
memoised results), and deadline aborts mid-batch.
"""

from __future__ import annotations

import pytest

from repro import (
    ApproxIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    PrunedSuffixTree,
    QGramIndex,
    RLFMIndex,
)
from repro.engine import (
    AutomatonCapabilities,
    BackwardSearchAutomaton,
    EngineStats,
    LegacyProtocolAutomaton,
    TrieBatchPlanner,
    automaton_of,
    planner_for,
)
from repro.errors import DeadlineExceededError, PatternError
from repro.datasets import generate
from repro.service import Deadline, ManualClock
from repro.textutil import Text, mixed_workload

SIZE = 3_000
THRESHOLD = 8

BUILDERS = {
    "fm": lambda text: FMIndex(text),
    "rlfm": lambda text: RLFMIndex(text),
    "apx": lambda text: ApproxIndex(text, THRESHOLD),
    "cpst": lambda text: CompactPrunedSuffixTree(text, THRESHOLD),
    "pst": lambda text: PrunedSuffixTree(text, THRESHOLD),
}


@pytest.fixture(scope="module", params=["dna", "english", "dblp"])
def corpus(request):
    text = Text(generate(request.param, SIZE, seed=3))
    workload = mixed_workload(
        text, lengths=(1, 2, 4, 8, 12), per_length=10, seed=4
    )
    return request.param, text, list(workload)


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_planned_equals_sequential(corpus, kind):
    """The differential contract: planner batches == per-pattern counts."""
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    sequential = [index.count(p) for p in workload]
    planner = planner_for(index)
    assert planner is not None, (name, kind)
    assert planner.count_many(workload) == sequential, (name, kind)
    # Re-asking is served from the result memo, still identical.
    assert planner.count_many(list(reversed(workload))) == sequential[::-1]


@pytest.mark.parametrize("kind", ["cpst", "pst"])
def test_planned_count_or_none_matches(corpus, kind):
    """Lower-sided batches mirror count_or_none exactly (None included)."""
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    planner = planner_for(index)
    expected = [index.count_or_none(p) for p in workload]
    assert planner.count_or_none_many(workload) == expected, (name, kind)


def test_count_or_none_requires_lower_sided(corpus):
    _, text, _ = corpus
    planner = planner_for(FMIndex(text))
    with pytest.raises(PatternError, match="lower-sided"):
        planner.count_or_none("a")


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_interface_count_many_routes_through_planner(corpus, kind):
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    assert index.count_many(workload) == [index.count(p) for p in workload]


def test_lru_eviction_keeps_results_correct(corpus):
    """A tiny state budget forces evictions; answers must not change and
    memoised results must survive (the cache-growth contract)."""
    name, text, workload = corpus
    index = FMIndex(text)
    planner = TrieBatchPlanner(automaton_of(index), max_states=4)
    expected = [index.count(p) for p in workload]
    assert planner.count_many(workload) == expected, name
    assert planner.stats.state_cache_evictions > 0
    # Everything is memoised: a second pass does zero automaton work.
    before = planner.stats.copy()
    assert planner.count_many(workload) == expected
    delta = planner.stats - before
    assert delta.automaton_starts == 0 and delta.automaton_steps == 0
    assert delta.result_cache_hits == len(workload)


def test_shared_suffixes_reduce_extensions(corpus):
    """The acceptance-criterion shape: trie-planned batching performs
    strictly fewer extensions than isolated counting on an overlapping
    workload."""
    _, text, _ = corpus
    index = FMIndex(text)
    base = text.raw[100:112]
    patterns = [base[i:] for i in range(len(base))]  # shared suffixes
    naive = EngineStats()
    for p in patterns:
        TrieBatchPlanner(automaton_of(index), stats=naive).count(p)
    planner = TrieBatchPlanner(automaton_of(index))
    assert planner.count_many(patterns) == [index.count(p) for p in patterns]
    planned = planner.stats
    assert (
        planned.automaton_starts + planned.automaton_steps
        < naive.automaton_starts + naive.automaton_steps
    )


def test_deadline_abort_and_recovery(corpus):
    """An expired deadline aborts mid-batch (counted in the stats); a
    fresh call without a deadline completes and memoises normally."""
    _, text, workload = corpus
    index = FMIndex(text)
    planner = planner_for(index)
    clock = ManualClock()
    deadline = Deadline(1.0, clock)
    clock.advance(2.0)  # already expired: first per-extension check trips
    with pytest.raises(DeadlineExceededError):
        planner.count_many(workload, deadline=deadline)
    assert planner.stats.deadline_aborts == 1
    assert planner.stats.deadline_checks >= 1
    # The batch is retryable: no poisoned partial answers.
    assert planner.count_many(workload) == [index.count(p) for p in workload]


def test_live_deadline_is_checked_but_harmless(corpus):
    _, text, workload = corpus
    planner = planner_for(FMIndex(text))
    clock = ManualClock()
    results = planner.count_many(workload, deadline=Deadline(60.0, clock))
    assert results == [BUILDERS["fm"](text).count(p) for p in workload]
    assert planner.stats.deadline_checks > 0
    assert planner.stats.deadline_aborts == 0


# --- automaton_of resolution -------------------------------------------------


def test_automaton_of_prefers_isinstance(corpus):
    _, text, _ = corpus
    index = FMIndex(text)
    assert automaton_of(index) is index  # the index IS its automaton


def test_automaton_of_hook_wins_over_isinstance(corpus):
    _, text, _ = corpus
    inner = FMIndex(text)

    class Wrapper:
        def __engine_automaton__(self):
            return automaton_of(inner)

    assert automaton_of(Wrapper()) is inner


def test_automaton_of_legacy_protocol_shim(corpus):
    _, text, _ = corpus
    inner = FMIndex(text)

    class LegacyIndex:
        """Only speaks the deprecated underscore protocol."""

        def _automaton_start(self, ch):
            return inner.start(ch)

        def _automaton_step(self, state, ch):
            return inner.step(state, ch)

        def _automaton_count(self, state):
            return inner.count_state(state)

    shim = automaton_of(LegacyIndex())
    assert isinstance(shim, LegacyProtocolAutomaton)
    planner = TrieBatchPlanner(shim)
    assert planner.count("the") == inner.count("the")


def test_automaton_of_none_without_view(corpus):
    _, text, _ = corpus
    assert automaton_of(QGramIndex(text, q=4)) is None
    assert planner_for(QGramIndex(text, q=4)) is None
    assert automaton_of(object()) is None


def test_deprecated_underscore_aliases_still_work(corpus):
    """The ABC keeps `_automaton_*` aliases during the deprecation window."""
    _, text, _ = corpus
    index = FMIndex(text)
    state = index._automaton_start("t")
    state = index._automaton_step(state, "h")  # prepends: state now = "ht"
    assert index._automaton_count(state) == index.count("ht")


# --- capabilities ------------------------------------------------------------


def test_capabilities_descriptors(corpus):
    _, text, _ = corpus
    caps = {
        kind: automaton_of(BUILDERS[kind](text)).capabilities()
        for kind in BUILDERS
    }
    assert caps["fm"] == AutomatonCapabilities(
        exact=True, rank_ops_per_step=2, vectorized=True
    )
    assert caps["rlfm"].exact and caps["rlfm"].rank_ops_per_step == 2
    assert not caps["apx"].exact and caps["apx"].threshold == THRESHOLD
    assert caps["cpst"].lower_sided and caps["cpst"].threshold == THRESHOLD
    assert caps["pst"].lower_sided and caps["pst"].rank_ops_per_step == 0
    # Every index family ships a bulk step (PR: vectorized batch engine).
    assert all(c.vectorized for c in caps.values())


def test_rank_calls_follow_capabilities(corpus):
    _, text, workload = corpus
    for kind in ("fm", "apx", "cpst"):
        index = BUILDERS[kind](text)
        planner = planner_for(index)
        planner.count_many(workload)
        stats = planner.stats
        per_step = planner.capabilities.rank_ops_per_step
        extensions = stats.automaton_starts + stats.automaton_steps
        assert stats.rank_calls == extensions * per_step, kind


# --- vectorized wave execution ----------------------------------------------


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_vectorized_equals_scalar_equals_sequential(corpus, kind):
    """The PR's differential core: wave-planned batches == scalar-planned
    batches == per-pattern counts, for every index family."""
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    sequential = [index.count(p) for p in workload]
    # wave_width_min=1 forces every wave through step_many so the bulk
    # differential covers all widths (production keeps the scalar
    # fallback for narrow waves — same answers either way).
    vectorized = planner_for(index, vectorize=True, wave_width_min=1)
    scalar = planner_for(index, vectorize=False)
    assert vectorized.vectorized and not scalar.vectorized, (name, kind)
    assert vectorized.count_many(workload) == sequential, (name, kind)
    assert scalar.count_many(workload) == sequential, (name, kind)
    assert vectorized.stats.bulk_calls > 0, (name, kind)
    assert scalar.stats.bulk_calls == 0, (name, kind)
    # The wave path really batches: total bulk width == bulk-stepped states.
    widths = vectorized.bulk_widths
    assert sum(w * c for w, c in widths.items()) == vectorized.stats.bulk_states


@pytest.mark.parametrize("kind", ["cpst", "pst"])
def test_vectorized_count_or_none_matches(corpus, kind):
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    expected = [index.count_or_none(p) for p in workload]
    planner = planner_for(index, vectorize=True)
    assert planner.count_or_none_many(workload) == expected, (name, kind)


def test_step_many_default_is_scalar_loop(corpus):
    """The ABC default makes every automaton bulk-callable."""
    _, text, _ = corpus
    index = FMIndex(text)

    class Plain(BackwardSearchAutomaton):
        def start(self, ch):
            return index.start(ch)

        def step(self, state, ch):
            return index.step(state, ch)

        def count_state(self, state):
            return index.count_state(state)

    plain = Plain()
    states = [index.start(c) for c in "athe"]
    assert plain.step_many(states, "t") == [index.step(s, "t") for s in states]
    assert not plain.capabilities().vectorized
    # And the planner ignores the vectorize knob without the capability.
    assert not TrieBatchPlanner(plain, vectorize=True).vectorized


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_step_many_matches_step(corpus, kind):
    """Direct bulk-vs-scalar automaton differential, dead states included."""
    name, text, workload = corpus
    automaton = automaton_of(BUILDERS[kind](text))
    symbols = sorted(set(text.raw[:200]))[:4] + ["☃"]  # incl. absent
    states = [automaton.start(p[-1]) for p in workload]
    states = [s for s in states if s is not None]
    assert states, (name, kind)
    for ch in symbols:
        bulk = automaton.step_many(states, ch)
        assert bulk == [automaton.step(s, ch) for s in states], (name, kind, ch)


def test_eviction_parity_scalar_vs_vectorized(corpus):
    """Satellite: the LRU budget is accounted identically on both paths —
    one cache probe and one insert per distinct suffix — so a tiny budget
    evicts the same amount and never changes answers."""
    _, text, workload = corpus
    index = FMIndex(text)
    expected = [index.count(p) for p in workload]
    planners = {
        mode: TrieBatchPlanner(
            automaton_of(index), max_states=4,
            vectorize=(mode == "waves"), wave_width_min=1,
        )
        for mode in ("scalar", "waves")
    }
    for planner in planners.values():
        assert planner.count_many(workload) == expected
    scalar, waves = planners["scalar"].stats, planners["waves"].stats
    assert scalar.state_cache_evictions == waves.state_cache_evictions > 0
    assert scalar.state_cache_misses == waves.state_cache_misses
    assert len(planners["scalar"]._states) == len(planners["waves"]._states)


def test_wave_probe_accounting_deduplicates(corpus):
    """Satellite: duplicated patterns add zero LRU traffic and zero
    automaton work on the wave path — probes, steps and waves are all
    per *distinct* suffix per batch."""
    _, text, _ = corpus
    index = FMIndex(text)
    base = text.raw[50:58]
    unique = [base, base[1:], base[2:]]
    duplicated = [base, base, base[1:], base[2:], base]
    stats = {}
    for label, patterns in [("unique", unique), ("duplicated", duplicated)]:
        planner = planner_for(index, vectorize=True, wave_width_min=1)
        planner.count_many(patterns)
        stats[label] = planner.stats
    dup, uniq = stats["duplicated"], stats["unique"]
    assert dup.state_cache_misses == uniq.state_cache_misses
    assert dup.state_cache_hits == uniq.state_cache_hits
    assert dup.automaton_steps == uniq.automaton_steps
    assert dup.bulk_calls == uniq.bulk_calls
    # Shared suffixes are stepped once each: every distinct suffix is one
    # extension (start or step), never more.
    distinct_suffixes = {p[i:] for p in unique for i in range(len(p))}
    assert (
        uniq.automaton_starts + uniq.automaton_steps <= len(distinct_suffixes)
    )


def test_default_vectorize_toggle(corpus):
    from repro.engine import default_vectorize, set_default_vectorize

    _, text, workload = corpus
    index = FMIndex(text)
    assert default_vectorize()
    try:
        set_default_vectorize(False)
        assert not planner_for(index).vectorized
        # An explicit knob still wins over the process default.
        assert planner_for(index, vectorize=True).vectorized
    finally:
        set_default_vectorize(True)
    planner = planner_for(index)
    assert planner.vectorized
    assert planner.count_many(workload) == [index.count(p) for p in workload]


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_automaton_vectorizes(corpus, shards):
    """The sharded product automaton bulk-steps its component columns:
    same merged scalars as the scalar walk, with bulk waves recorded."""
    from repro.shard import ShardPlan, build_sharded
    from repro.textutil import ROW_SEPARATOR

    _, text, _ = corpus
    rows = [text.raw[i : i + 400] for i in range(0, 1600, 400)]
    plan = ShardPlan.for_rows(rows, shards)
    estimator, _ = build_sharded(plan, "cpst", 8)
    probe = Text.from_rows(rows)
    patterns = [
        p
        for p in mixed_workload(probe, lengths=(1, 2, 3), per_length=6, seed=9)
        if ROW_SEPARATOR not in p
    ]
    automaton = automaton_of(estimator)
    assert automaton.capabilities().vectorized
    vectorized = TrieBatchPlanner(automaton, vectorize=True, wave_width_min=1)
    scalar = TrieBatchPlanner(automaton, vectorize=False)
    results = vectorized.count_many(patterns)
    assert results == scalar.count_many(patterns)
    assert results == [estimator.count(p) for p in patterns]
    assert vectorized.stats.bulk_calls > 0

"""Engine layer: automaton adapters, trie planner, stats, deadlines.

The differential core: for every automaton-capable index, the engine's
trie-planned ``count_many`` must return exactly what sequential
``count`` calls return — the planner is an execution strategy, never an
approximation. On top of that: ``automaton_of`` resolution order,
capability descriptors, the LRU state-cache bound (eviction never drops
memoised results), and deadline aborts mid-batch.
"""

from __future__ import annotations

import pytest

from repro import (
    ApproxIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    PrunedSuffixTree,
    QGramIndex,
    RLFMIndex,
)
from repro.engine import (
    AutomatonCapabilities,
    BackwardSearchAutomaton,
    EngineStats,
    LegacyProtocolAutomaton,
    TrieBatchPlanner,
    automaton_of,
    planner_for,
)
from repro.errors import DeadlineExceededError, PatternError
from repro.datasets import generate
from repro.service import Deadline, ManualClock
from repro.textutil import Text, mixed_workload

SIZE = 3_000
THRESHOLD = 8

BUILDERS = {
    "fm": lambda text: FMIndex(text),
    "rlfm": lambda text: RLFMIndex(text),
    "apx": lambda text: ApproxIndex(text, THRESHOLD),
    "cpst": lambda text: CompactPrunedSuffixTree(text, THRESHOLD),
    "pst": lambda text: PrunedSuffixTree(text, THRESHOLD),
}


@pytest.fixture(scope="module", params=["dna", "english", "dblp"])
def corpus(request):
    text = Text(generate(request.param, SIZE, seed=3))
    workload = mixed_workload(
        text, lengths=(1, 2, 4, 8, 12), per_length=10, seed=4
    )
    return request.param, text, list(workload)


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_planned_equals_sequential(corpus, kind):
    """The differential contract: planner batches == per-pattern counts."""
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    sequential = [index.count(p) for p in workload]
    planner = planner_for(index)
    assert planner is not None, (name, kind)
    assert planner.count_many(workload) == sequential, (name, kind)
    # Re-asking is served from the result memo, still identical.
    assert planner.count_many(list(reversed(workload))) == sequential[::-1]


@pytest.mark.parametrize("kind", ["cpst", "pst"])
def test_planned_count_or_none_matches(corpus, kind):
    """Lower-sided batches mirror count_or_none exactly (None included)."""
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    planner = planner_for(index)
    expected = [index.count_or_none(p) for p in workload]
    assert planner.count_or_none_many(workload) == expected, (name, kind)


def test_count_or_none_requires_lower_sided(corpus):
    _, text, _ = corpus
    planner = planner_for(FMIndex(text))
    with pytest.raises(PatternError, match="lower-sided"):
        planner.count_or_none("a")


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_interface_count_many_routes_through_planner(corpus, kind):
    name, text, workload = corpus
    index = BUILDERS[kind](text)
    assert index.count_many(workload) == [index.count(p) for p in workload]


def test_lru_eviction_keeps_results_correct(corpus):
    """A tiny state budget forces evictions; answers must not change and
    memoised results must survive (the cache-growth contract)."""
    name, text, workload = corpus
    index = FMIndex(text)
    planner = TrieBatchPlanner(automaton_of(index), max_states=4)
    expected = [index.count(p) for p in workload]
    assert planner.count_many(workload) == expected, name
    assert planner.stats.state_cache_evictions > 0
    # Everything is memoised: a second pass does zero automaton work.
    before = planner.stats.copy()
    assert planner.count_many(workload) == expected
    delta = planner.stats - before
    assert delta.automaton_starts == 0 and delta.automaton_steps == 0
    assert delta.result_cache_hits == len(workload)


def test_shared_suffixes_reduce_extensions(corpus):
    """The acceptance-criterion shape: trie-planned batching performs
    strictly fewer extensions than isolated counting on an overlapping
    workload."""
    _, text, _ = corpus
    index = FMIndex(text)
    base = text.raw[100:112]
    patterns = [base[i:] for i in range(len(base))]  # shared suffixes
    naive = EngineStats()
    for p in patterns:
        TrieBatchPlanner(automaton_of(index), stats=naive).count(p)
    planner = TrieBatchPlanner(automaton_of(index))
    assert planner.count_many(patterns) == [index.count(p) for p in patterns]
    planned = planner.stats
    assert (
        planned.automaton_starts + planned.automaton_steps
        < naive.automaton_starts + naive.automaton_steps
    )


def test_deadline_abort_and_recovery(corpus):
    """An expired deadline aborts mid-batch (counted in the stats); a
    fresh call without a deadline completes and memoises normally."""
    _, text, workload = corpus
    index = FMIndex(text)
    planner = planner_for(index)
    clock = ManualClock()
    deadline = Deadline(1.0, clock)
    clock.advance(2.0)  # already expired: first per-extension check trips
    with pytest.raises(DeadlineExceededError):
        planner.count_many(workload, deadline=deadline)
    assert planner.stats.deadline_aborts == 1
    assert planner.stats.deadline_checks >= 1
    # The batch is retryable: no poisoned partial answers.
    assert planner.count_many(workload) == [index.count(p) for p in workload]


def test_live_deadline_is_checked_but_harmless(corpus):
    _, text, workload = corpus
    planner = planner_for(FMIndex(text))
    clock = ManualClock()
    results = planner.count_many(workload, deadline=Deadline(60.0, clock))
    assert results == [BUILDERS["fm"](text).count(p) for p in workload]
    assert planner.stats.deadline_checks > 0
    assert planner.stats.deadline_aborts == 0


# --- automaton_of resolution -------------------------------------------------


def test_automaton_of_prefers_isinstance(corpus):
    _, text, _ = corpus
    index = FMIndex(text)
    assert automaton_of(index) is index  # the index IS its automaton


def test_automaton_of_hook_wins_over_isinstance(corpus):
    _, text, _ = corpus
    inner = FMIndex(text)

    class Wrapper:
        def __engine_automaton__(self):
            return automaton_of(inner)

    assert automaton_of(Wrapper()) is inner


def test_automaton_of_legacy_protocol_shim(corpus):
    _, text, _ = corpus
    inner = FMIndex(text)

    class LegacyIndex:
        """Only speaks the deprecated underscore protocol."""

        def _automaton_start(self, ch):
            return inner.start(ch)

        def _automaton_step(self, state, ch):
            return inner.step(state, ch)

        def _automaton_count(self, state):
            return inner.count_state(state)

    shim = automaton_of(LegacyIndex())
    assert isinstance(shim, LegacyProtocolAutomaton)
    planner = TrieBatchPlanner(shim)
    assert planner.count("the") == inner.count("the")


def test_automaton_of_none_without_view(corpus):
    _, text, _ = corpus
    assert automaton_of(QGramIndex(text, q=4)) is None
    assert planner_for(QGramIndex(text, q=4)) is None
    assert automaton_of(object()) is None


def test_deprecated_underscore_aliases_still_work(corpus):
    """The ABC keeps `_automaton_*` aliases during the deprecation window."""
    _, text, _ = corpus
    index = FMIndex(text)
    state = index._automaton_start("t")
    state = index._automaton_step(state, "h")  # prepends: state now = "ht"
    assert index._automaton_count(state) == index.count("ht")


# --- capabilities ------------------------------------------------------------


def test_capabilities_descriptors(corpus):
    _, text, _ = corpus
    caps = {
        kind: automaton_of(BUILDERS[kind](text)).capabilities()
        for kind in BUILDERS
    }
    assert caps["fm"] == AutomatonCapabilities(exact=True, rank_ops_per_step=2)
    assert caps["rlfm"].exact and caps["rlfm"].rank_ops_per_step == 2
    assert not caps["apx"].exact and caps["apx"].threshold == THRESHOLD
    assert caps["cpst"].lower_sided and caps["cpst"].threshold == THRESHOLD
    assert caps["pst"].lower_sided and caps["pst"].rank_ops_per_step == 0


def test_rank_calls_follow_capabilities(corpus):
    _, text, workload = corpus
    for kind in ("fm", "apx", "cpst"):
        index = BUILDERS[kind](text)
        planner = planner_for(index)
        planner.count_many(workload)
        stats = planner.stats
        per_step = planner.capabilities.rank_ops_per_step
        extensions = stats.automaton_starts + stats.automaton_steps
        assert stats.rank_calls == extensions * per_step, kind

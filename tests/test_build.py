"""Unified build pipeline tests.

The contract under test: one :class:`~repro.build.BuildContext` per text
means one suffix sort per text — no matter how many indexes, threads or
ladder tiers consume it — and every ``from_context`` constructor produces
an index *bit-identical* (same pickled bytes, same answers) to the legacy
from-text path it replaces.

Suffix-sort accounting works by monkeypatching ``repro.sa.suffix_array``:
every construction site resolves the function through the module attribute
at call time, so the counting wrapper sees each sort.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.sa as sa_mod
from repro.baselines import (
    FMIndex,
    PrunedPatriciaTrie,
    PrunedSuffixTree,
    QGramIndex,
    RLFMIndex,
)
from repro.build import (
    ArtifactCache,
    BuildContext,
    IndexSpec,
    build_all,
    default_tier_specs,
)
from repro.core import ApproxIndex, CompactPrunedSuffixTree
from repro.errors import InvalidParameterError
from repro.service import build_default_ladder
from repro.textutil import Text, mixed_workload

TEXT = Text("abracadabra_the_quick_brown_fox_jumps_over_" * 25)
WORKLOAD = mixed_workload(TEXT, per_length=4, seed=3)


@pytest.fixture()
def sa_calls(monkeypatch):
    """Count every suffix-array construction during the test."""
    calls = []
    real = sa_mod.suffix_array

    def counting(*args, **kwargs):
        calls.append(threading.get_ident())
        return real(*args, **kwargs)

    monkeypatch.setattr(sa_mod, "suffix_array", counting)
    return calls


class TestDifferential:
    """``from_context`` must be indistinguishable from the legacy path."""

    CASES = [
        (CompactPrunedSuffixTree, (8,)),
        (ApproxIndex, (8,)),
        (PrunedSuffixTree, (8,)),
        (PrunedPatriciaTrie, (8,)),
        (FMIndex, ()),
        (RLFMIndex, ()),
        (QGramIndex, (4,)),
    ]

    @pytest.mark.parametrize(
        "cls,args", CASES, ids=[cls.__name__ for cls, _ in CASES]
    )
    def test_from_context_matches_legacy(self, cls, args):
        ctx = BuildContext(TEXT)
        legacy = cls(TEXT, *args)
        shared = cls.from_context(ctx, *args)
        # Same serialized bytes: the builds are bit-identical.
        assert pickle.dumps(legacy) == pickle.dumps(shared)
        # And (belt and braces) the same answers on a mixed workload.
        for pattern in WORKLOAD:
            assert legacy.count(pattern) == shared.count(pattern)

    def test_parallel_build_bit_identical_to_sequential(self):
        specs = default_tier_specs(8) + [IndexSpec("fm"), IndexSpec("rlfm")]
        sequential = build_all(BuildContext(TEXT), specs)
        parallel = build_all(BuildContext(TEXT), specs, max_workers=4)
        assert set(sequential.indexes) == set(parallel.indexes)
        for label in sequential.indexes:
            assert pickle.dumps(sequential[label]) == pickle.dumps(
                parallel[label]
            )
        assert parallel.report.max_workers == 4


class TestSingleSuffixSort:
    """The PR's headline acceptance: one text, one suffix sort."""

    def test_full_tier_set_costs_one_sort(self, sa_calls):
        specs = [
            IndexSpec("cpst", params={"l": 8}),
            IndexSpec("apx", params={"l": 8}),
            IndexSpec("qgram", params={"q": 4}),
            IndexSpec("fm"),
        ]
        result = build_all(BuildContext(TEXT), specs, max_workers=4)
        assert len(sa_calls) == 1
        assert result["fm"].count("abra") == TEXT.count_naive("abra")

    def test_default_ladder_costs_at_most_one_sort(self, sa_calls):
        service = build_default_ladder(TEXT, 8, max_workers=4)
        assert len(sa_calls) <= 1
        outcome = service.query("abracadabra")
        assert outcome.count == TEXT.count_naive("abracadabra")

    def test_sixteen_threads_share_one_sort(self, sa_calls):
        ctx = BuildContext(TEXT)
        with ThreadPoolExecutor(max_workers=16) as pool:
            arrays = list(
                pool.map(lambda _: ctx.sa, range(16))
            ) + list(pool.map(lambda _: ctx.bwt, range(16)))
        assert len(sa_calls) == 1
        # All callers got the *same object*, not sixteen equal copies.
        assert all(a is arrays[0] for a in arrays[:16])

    def test_concurrent_mixed_artifact_access(self, sa_calls):
        ctx = BuildContext(TEXT)
        pulls = [
            (lambda: ctx.sa),
            (lambda: ctx.lcp),
            (lambda: ctx.bwt),
            (lambda: ctx.isa),
            (lambda: ctx.structure(8)),
            (lambda: ctx.structure(16)),
        ] * 4
        with ThreadPoolExecutor(max_workers=16) as pool:
            futures = [pool.submit(pull) for pull in pulls]
            for future in futures:
                future.result()
        assert len(sa_calls) == 1


class TestBuildReport:
    def test_report_records_stages_and_reuse(self):
        result = build_all(
            BuildContext(TEXT, name="unit"), default_tier_specs(8)
        )
        report = result.report
        assert report.corpus == "unit"
        stage_names = [record.stage for record in report.stages]
        assert "sa" in stage_names and "index:cpst" in stage_names
        assert report.reuse_hits >= 1  # lcp's sa pull hits the memo
        assert report.wall_seconds > 0
        assert set(report.spaces) == {"cpst", "apx", "qgram", "stats"}
        formatted = report.format()
        assert "index:cpst" in formatted and "memo" in formatted
        payload = report.as_dict()
        assert payload["corpus"] == "unit"
        assert payload["stages"]

    def test_validation(self):
        ctx = BuildContext(TEXT)
        with pytest.raises(InvalidParameterError):
            build_all(ctx, [])
        with pytest.raises(InvalidParameterError):
            build_all(ctx, [IndexSpec("nonsense")])
        with pytest.raises(InvalidParameterError):
            build_all(ctx, [IndexSpec("fm"), IndexSpec("fm")])
        with pytest.raises(InvalidParameterError):
            build_all(ctx, [IndexSpec("fm")], max_workers=0)


class TestArtifactCache:
    def test_cold_then_warm(self, tmp_path, sa_calls):
        cache = ArtifactCache(tmp_path)
        first = BuildContext(TEXT, cache=cache)
        first.bwt  # pulls sa too
        assert len(sa_calls) == 1
        assert cache.stores >= 2  # sa + bwt persisted

        second = BuildContext(TEXT, cache=cache)
        np.testing.assert_array_equal(second.sa, first.sa)
        np.testing.assert_array_equal(second.bwt, first.bwt)
        # The warm context loaded from disk instead of re-sorting.
        assert len(sa_calls) == 1
        assert cache.hits >= 2
        sources = {record.stage: record.source for record in second.stages}
        assert sources["sa"] == "cache"

    def test_corrupt_entry_rejected_and_recomputed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = BuildContext(TEXT, cache=cache)
        expected = first.sa
        path = cache.path_for(first.digest, "sa")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        second = BuildContext(TEXT, cache=cache)
        np.testing.assert_array_equal(second.sa, expected)
        assert cache.rejected == 1
        assert not path.exists() or path.read_bytes() != bytes(blob)

    def test_different_texts_do_not_collide(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        a = BuildContext(Text("banana_band_" * 20), cache=cache)
        b = BuildContext(Text("cadabra_abra" * 20), cache=cache)
        assert a.digest != b.digest
        a.sa, b.sa
        fresh_a = BuildContext(Text("banana_band_" * 20), cache=cache)
        np.testing.assert_array_equal(fresh_a.sa, a.sa)

    def test_crash_mid_store_never_tears_the_entry(self, tmp_path, monkeypatch):
        """A crash between temp-write and rename leaves no cache entry at
        all (the store is atomic), and the retry completes cleanly."""
        import os as _os

        import repro.io as rio

        cache = ArtifactCache(tmp_path)
        array = np.arange(64, dtype=np.int64)

        real_replace = _os.replace

        def exploding_replace(src, dst):
            raise OSError("simulated power cut before rename")

        monkeypatch.setattr(rio.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            cache.store("digest00", "sa", array)
        monkeypatch.setattr(rio.os, "replace", real_replace)

        # Nothing under the cache name: the torn write is invisible.
        assert cache.load("digest00", "sa") is None
        assert cache.rejected == 0  # a clean miss, not a rejected tear

        # The retry overwrites any orphaned temp and completes.
        path = cache.store("digest00", "sa", array)
        assert path.exists()
        np.testing.assert_array_equal(cache.load("digest00", "sa"), array)

    def test_truncated_entry_is_a_counted_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        array = np.arange(16, dtype=np.int64)
        path = cache.store("digest00", "sa", array)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load("digest00", "sa") is None
        assert cache.rejected == 1
        assert not path.exists()  # the tear was evicted, not kept

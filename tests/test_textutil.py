"""Tests for alphabet mapping, the text model and empirical entropy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlphabetError, InvalidParameterError
from repro.textutil import (
    SENTINEL,
    Alphabet,
    Text,
    entropy_profile,
    kth_order_entropy,
    zeroth_order_entropy,
)


class TestAlphabet:
    def test_ids_follow_lex_order(self):
        a = Alphabet("cab")
        assert a.encode("abc").tolist() == [1, 2, 3]
        assert a.characters == "abc"
        assert a.sigma == 4  # includes sentinel

    def test_encode_decode_roundtrip(self):
        a = Alphabet.from_text("hello world")
        assert a.decode(a.encode("hello world")) == "hello world"

    def test_unknown_char_raises(self):
        a = Alphabet("ab")
        with pytest.raises(AlphabetError):
            a.encode("abc")

    def test_encode_pattern_returns_none_for_unknown(self):
        a = Alphabet("ab")
        assert a.encode_pattern("abz") is None
        assert a.encode_pattern("ba").tolist() == [2, 1]

    def test_decode_sentinel(self):
        a = Alphabet("ab")
        assert a.decode([SENTINEL, 1]) == "$a"

    def test_decode_rejects_out_of_range(self):
        a = Alphabet("ab")
        with pytest.raises(AlphabetError):
            a.decode([3])

    def test_contains(self):
        a = Alphabet("xy")
        assert "x" in a
        assert "z" not in a

    def test_multichar_entry_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet(["ab"])

    def test_equality(self):
        assert Alphabet("ab") == Alphabet("ba")
        assert Alphabet("ab") != Alphabet("abc")


class TestText:
    def test_data_has_sentinel(self):
        t = Text("banana")
        assert t.data[-1] == SENTINEL
        assert len(t.data) == 7
        assert len(t) == 6

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            Text("")

    def test_non_string_rejected(self):
        with pytest.raises(InvalidParameterError):
            Text(b"bytes")  # type: ignore[arg-type]

    def test_from_bytes(self):
        t = Text.from_bytes(b"\x00\xffabc")
        assert len(t) == 5
        assert t.sigma == 6

    def test_count_naive_overlapping(self):
        t = Text("aaaa")
        assert t.count_naive("aa") == 3
        assert t.count_naive("aaaa") == 1
        assert t.count_naive("b") == 0

    def test_count_naive_empty_pattern(self):
        with pytest.raises(InvalidParameterError):
            Text("abc").count_naive("")

    def test_from_rows(self):
        t = Text.from_rows(["ab", "ba"])
        # ▷ab▷ba▷ : pattern 'ab' occurs once, 'a' twice
        assert t.count_naive("ab") == 1
        assert t.count_naive("a") == 2

    def test_from_rows_separator_conflict(self):
        with pytest.raises(AlphabetError):
            Text.from_rows(["a\x1eb"])

    def test_from_rows_empty(self):
        with pytest.raises(InvalidParameterError):
            Text.from_rows([])

    def test_patterns_do_not_straddle_rows(self):
        t = Text.from_rows(["xy", "yx"])
        assert t.count_naive("yy") == 0  # adjacent across rows but separated

    def test_shared_alphabet(self):
        a = Alphabet("abcd")
        t = Text("abc", alphabet=a)
        assert t.sigma == 5


class TestEntropy:
    def test_uniform_binary(self):
        assert zeroth_order_entropy("ab" * 50) == pytest.approx(1.0)

    def test_single_symbol(self):
        assert zeroth_order_entropy("aaaa") == pytest.approx(0.0)

    def test_four_symbols_uniform(self):
        assert zeroth_order_entropy("abcd" * 25) == pytest.approx(2.0)

    def test_skewed(self):
        # 3/4 vs 1/4: H0 = 0.75*log(4/3) + 0.25*log(4)
        expected = 0.75 * math.log2(4 / 3) + 0.25 * 2
        assert zeroth_order_entropy("aaab" * 30) == pytest.approx(expected)

    def test_h1_of_alternating_is_zero(self):
        # In 'ababab…' each symbol fully determines its successor.
        assert kth_order_entropy("ab" * 40, 1) == pytest.approx(0.0, abs=1e-9)

    def test_hk_monotone_non_increasing(self, rng):
        s = "".join(rng.choice(list("abc"), size=300))
        prof = entropy_profile(s, max_k=3)
        assert prof[0] >= prof[1] >= prof[2] >= prof[3]

    def test_accepts_int_arrays(self):
        s = np.array([1, 2, 1, 2, 1, 2])
        assert zeroth_order_entropy(s) == pytest.approx(1.0)
        assert kth_order_entropy(s, 1) == pytest.approx(0.0, abs=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            zeroth_order_entropy("")
        with pytest.raises(InvalidParameterError):
            kth_order_entropy("", 1)

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            kth_order_entropy("ab", -1)


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="abcdef", min_size=1, max_size=200))
def test_property_h0_bounds(s):
    h0 = zeroth_order_entropy(s)
    assert 0.0 <= h0 <= math.log2(max(2, len(set(s)))) + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="abc", min_size=2, max_size=120))
def test_property_h1_le_h0(s):
    assert kth_order_entropy(s, 1) <= zeroth_order_entropy(s) + 1e-9

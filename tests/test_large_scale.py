"""Large-scale integration: the full pipeline at 100k symbols.

One corpus, every layer: suffix sorting (verified in O(n)), BWT
round-trip, all indexes built from shared intermediates, error contracts
sampled, and space ordering asserted. Keeps the suite honest about
behaviour beyond toy sizes without blowing up runtime (~10 s).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import CorpusContext
from repro.sa import inverse_bwt, verify_suffix_array
from repro.space import text_bits

SIZE = 100_000


@pytest.fixture(scope="module")
def ctx():
    return CorpusContext("english", SIZE, seed=13)


class TestLargeScalePipeline:
    def test_suffix_array_verified(self, ctx):
        assert verify_suffix_array(ctx.text.data, ctx.sa)

    def test_bwt_roundtrip(self, ctx):
        recovered = inverse_bwt(ctx.bwt, ctx.text.sigma)
        np.testing.assert_array_equal(recovered, ctx.text.data)

    def test_index_contracts_sampled(self, ctx):
        l = 64
        fm = ctx.build_fm()
        apx = ctx.build_apx(l)
        cpst = ctx.build_cpst(l)
        patterns = []
        for length in (2, 5, 9, 14):
            patterns.extend(ctx.sample_patterns(length, 15))
        for pattern in patterns:
            truth = fm.count(pattern)
            estimate = apx.count(pattern)
            assert truth <= estimate <= truth + l - 1, pattern
            certified = cpst.count_or_none(pattern)
            assert certified == (truth if truth >= l else None), pattern

    def test_space_ordering_holds_at_scale(self, ctx):
        l = 64
        reference = text_bits(len(ctx.text), ctx.text.sigma)
        fm_bits = ctx.build_fm().space_report().payload_bits
        apx_bits = ctx.build_apx(l).space_report().payload_bits
        cpst_bits = ctx.build_cpst(l).space_report().payload_bits
        pst_bits = ctx.build_pst(l).space_report().payload_bits
        assert cpst_bits < apx_bits < fm_bits
        assert cpst_bits < pst_bits
        assert cpst_bits < 0.08 * reference  # well under 8% of the text at l=64

    def test_structure_statistics(self, ctx):
        structure = ctx.structure(64)
        assert structure.num_nodes <= 2 * SIZE // 64
        assert int(structure.correction_factors().sum()) == SIZE + 1

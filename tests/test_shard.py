"""Tests for the sharded corpus plane: plans, merge algebra, differentials."""

from __future__ import annotations

import random

import pytest

from repro.batch import SuffixSharingCounter
from repro.core.interface import ErrorModel
from repro.errors import InvalidParameterError
from repro.shard import (
    MergePolicy,
    ShardAnswer,
    ShardPlan,
    build_sharded,
    effective_shard_threshold,
    merge_answers,
    merged_threshold,
    shard_threshold,
)
from repro.space import SpaceReport
from repro.textutil import ROW_SEPARATOR, Text


def _documents(count=12, size=400, seed=0, alphabet="abcd"):
    rng = random.Random(seed)
    return [
        (f"doc{i:02d}", "".join(rng.choice(alphabet) for _ in range(size)))
        for i in range(count)
    ]


def _workload(mono: Text, seed=0, per_length=20, lengths=(2, 3, 5, 8)):
    rng = random.Random(seed)
    raw = mono.raw
    patterns = set()
    for length in lengths:
        for _ in range(per_length):
            start = rng.randrange(0, len(raw) - length)
            patterns.add(raw[start : start + length])
        patterns.add("".join(rng.choice("abcd") for _ in range(length)))
    patterns.add("zzzz")  # certainly absent
    return sorted(p for p in patterns if ROW_SEPARATOR not in p)


class TestShardPlan:
    def test_bin_packing_balances_loads(self):
        docs = [("big", "a" * 1000), ("mid", "b" * 600),
                ("s1", "c" * 400), ("s2", "d" * 350)]
        plan = ShardPlan.for_documents(docs, 2)
        loads = [len(shard.text) for shard in plan]
        # big alone vs mid+s1+s2: the greedy packing may not be perfect
        # but must not put everything on one shard.
        assert max(loads) < sum(loads)
        assert plan.shard_of("big") != plan.shard_of("mid")

    def test_deterministic(self):
        docs = _documents()
        a = ShardPlan.for_documents(docs, 3)
        b = ShardPlan.for_documents(docs, 3)
        assert a.manifest == b.manifest
        assert [s.text.raw for s in a] == [s.text.raw for s in b]

    def test_manifest_covers_every_document(self):
        docs = _documents(count=7)
        plan = ShardPlan.for_documents(docs, 3)
        assert sorted(plan.manifest) == sorted(name for name, _ in docs)
        assert set(plan.manifest.values()) == set(plan.names)
        for name, _ in docs:
            assert plan.shard_of(name) in plan.names

    def test_documents_keep_insertion_order_within_shard(self):
        docs = _documents(count=6)
        plan = ShardPlan.for_documents(docs, 2)
        order = {name: i for i, (name, _) in enumerate(docs)}
        for shard in plan:
            indices = [order[name] for name in shard.documents]
            assert indices == sorted(indices)

    def test_explicit_assignment(self):
        docs = [("a", "xx"), ("b", "yy"), ("c", "zz")]
        plan = ShardPlan.explicit(
            docs, {"a": "left", "b": "right", "c": "left"}
        )
        assert plan.names == ["left", "right"]
        assert plan.shard_of("c") == "left"
        left = plan.shards[0]
        assert left.documents == ("a", "c")

    def test_explicit_rejects_unassigned_and_unknown(self):
        docs = [("a", "xx"), ("b", "yy")]
        with pytest.raises(InvalidParameterError):
            ShardPlan.explicit(docs, {"a": "s0"})
        with pytest.raises(InvalidParameterError):
            ShardPlan.explicit(docs, {"a": "s0", "b": "s0", "ghost": "s1"})

    def test_rejects_separator_in_body(self):
        with pytest.raises(InvalidParameterError, match="separator"):
            ShardPlan.for_documents([("bad", f"x{ROW_SEPARATOR}y")], 1)

    def test_rejects_bad_shard_counts(self):
        docs = _documents(count=3)
        with pytest.raises(InvalidParameterError):
            ShardPlan.for_documents(docs, 0)
        with pytest.raises(InvalidParameterError):
            ShardPlan.for_documents(docs, 4)

    def test_rejects_duplicate_documents(self):
        with pytest.raises(InvalidParameterError):
            ShardPlan.for_documents([("a", "x"), ("a", "y")], 1)

    def test_for_rows_names(self):
        plan = ShardPlan.for_rows(["aaa", "bbb"], 2)
        assert sorted(plan.manifest) == ["row000000", "row000001"]

    def test_format_mentions_every_shard(self):
        plan = ShardPlan.for_rows(["aaa", "bbb", "ccc"], 2)
        text = plan.format()
        for name in plan.names:
            assert name in text


class TestMergeAlgebra:
    def test_shard_threshold_split(self):
        # l=8, k=4: per-shard budget (8-1)//4 = 1 -> floor 2.
        assert shard_threshold(8, 4, MergePolicy.SPLIT_BUDGET) == 2
        # l=64, k=4: 1 + 63//4 = 16; merged 4*15+1 = 61 <= 64.
        assert shard_threshold(64, 4, MergePolicy.SPLIT_BUDGET) == 16
        assert merged_threshold([16] * 4) == 61

    def test_shard_threshold_widen(self):
        assert shard_threshold(8, 4, MergePolicy.WIDEN_INTERVAL) == 8
        assert merged_threshold([8] * 4) == 4 * 7 + 1

    def test_split_budget_never_exceeds_original(self):
        for l in (2, 3, 8, 17, 64, 100):
            for k in (1, 2, 3, 5, 8):
                t = shard_threshold(l, k, MergePolicy.SPLIT_BUDGET)
                assert merged_threshold([t] * k) <= max(l, 1 + k)

    def test_effective_threshold_exact_kinds(self):
        assert effective_shard_threshold("fm", 64, 4, MergePolicy.SPLIT_BUDGET) == 1
        assert effective_shard_threshold("cpst", 64, 4, MergePolicy.SPLIT_BUDGET) == 16

    def test_bounds_exact(self):
        a = ShardAnswer("s", ErrorModel.EXACT, 1, 5, ceiling=100)
        assert a.bounds == (5, 5)

    def test_bounds_uniform_clamped(self):
        a = ShardAnswer("s", ErrorModel.UNIFORM, 8, 10, ceiling=100)
        assert a.bounds == (3, 10)
        clamped = ShardAnswer("s", ErrorModel.UNIFORM, 8, 10, ceiling=6)
        assert clamped.bounds == (3, 6)

    def test_bounds_lower_sided(self):
        certified = ShardAnswer("s", ErrorModel.LOWER_SIDED, 8, 12, ceiling=100)
        assert certified.bounds == (12, 12)
        declined = ShardAnswer("s", ErrorModel.LOWER_SIDED, 8, None, ceiling=100)
        assert declined.bounds == (0, 7)
        tiny = ShardAnswer("s", ErrorModel.LOWER_SIDED, 8, None, ceiling=3)
        assert tiny.bounds == (0, 3)

    def test_bounds_degraded_is_ceiling(self):
        a = ShardAnswer("s", None, 1, None, ceiling=42, degraded=True)
        assert a.bounds == (0, 42)

    def test_merge_all_exact(self):
        merged = merge_answers([
            ShardAnswer(f"s{i}", ErrorModel.EXACT, 1, i, ceiling=100)
            for i in range(3)
        ])
        assert merged.count == 3 and merged.exact
        assert merged.error_model is ErrorModel.EXACT
        assert merged.threshold == 1

    def test_merge_uniform_threshold(self):
        merged = merge_answers([
            ShardAnswer("a", ErrorModel.UNIFORM, 4, 10, ceiling=100),
            ShardAnswer("b", ErrorModel.UNIFORM, 4, 0, ceiling=100),
        ])
        assert merged.error_model is ErrorModel.UNIFORM
        assert merged.threshold == 1 + 3 + 3
        assert merged.count == 10
        assert merged.lo == 7 and merged.hi == 10

    def test_merge_degraded_is_upper_bound(self):
        merged = merge_answers([
            ShardAnswer("a", ErrorModel.EXACT, 1, 10, ceiling=100),
            ShardAnswer("b", None, 1, None, ceiling=40, degraded=True),
        ])
        assert merged.error_model is ErrorModel.UPPER_BOUND
        assert merged.degraded_shards == ("b",)
        assert (merged.lo, merged.hi) == (10, 50)
        assert merged.count == 50
        assert not merged.exact


@pytest.mark.parametrize("k", [1, 2, 4, 7])
@pytest.mark.parametrize(
    "policy", [MergePolicy.SPLIT_BUDGET, MergePolicy.WIDEN_INTERVAL]
)
class TestDifferential:
    """Satellite: sharded counts vs the unsharded monolith, seeded."""

    L = 8

    @pytest.fixture()
    def setting(self, k, policy):
        docs = _documents(count=12, size=400, seed=13)
        mono = Text.from_rows([body for _, body in docs])
        plan = ShardPlan.for_documents(docs, k)
        return docs, mono, plan

    def test_exact_kind_matches_monolith(self, setting, k, policy):
        _, mono, plan = setting
        fm, _ = build_sharded(plan, "fm", self.L, policy=policy)
        for pattern in _workload(mono, seed=1, per_length=8):
            assert fm.count(pattern) == mono.count_naive(pattern), pattern

    def test_cpst_certifies_only_truth(self, setting, k, policy):
        _, mono, plan = setting
        cpst, report = build_sharded(plan, "cpst", self.L, policy=policy)
        certified = 0
        for pattern in _workload(mono, seed=2, per_length=8):
            value = cpst.count_or_none(pattern)
            if value is not None:
                assert value == mono.count_naive(pattern), pattern
                certified += 1
        assert certified > 0  # the workload exercises the certified path

    def test_apx_within_merged_budget(self, setting, k, policy):
        _, mono, plan = setting
        apx, report = build_sharded(plan, "apx", self.L, policy=policy)
        slack = apx.threshold - 1
        assert slack == report.merged_threshold - 1
        assert slack == k * (report.shard_threshold - 1)
        if policy is MergePolicy.SPLIT_BUDGET:
            assert apx.threshold <= max(self.L, 1 + k)
        for pattern in _workload(mono, seed=3, per_length=8):
            truth = mono.count_naive(pattern)
            count = apx.count(pattern)
            assert truth <= count <= truth + slack, pattern
            lo, hi = apx.count_interval(pattern)
            assert lo <= truth <= hi, pattern

    def test_engine_path_matches_fanout(self, setting, k, policy):
        _, mono, plan = setting
        apx, _ = build_sharded(plan, "apx", self.L, policy=policy)
        patterns = _workload(mono, seed=4, per_length=8)
        fanout = [apx.count(p) for p in patterns]
        assert SuffixSharingCounter(apx).count_many(patterns) == fanout


class TestShardedLifecycle:
    @pytest.fixture()
    def sharded(self):
        docs = _documents(count=8, size=300, seed=5)
        plan = ShardPlan.for_documents(docs, 4)
        estimator, _ = build_sharded(plan, "apx", 8)
        mono = Text.from_rows([body for _, body in docs])
        return estimator, mono

    def test_quarantine_degrades_soundly(self, sharded):
        estimator, mono = sharded
        assert estimator.error_model is ErrorModel.UNIFORM
        estimator.quarantine_shard("shard1", "test")
        assert estimator.error_model is ErrorModel.UPPER_BOUND
        assert estimator.degraded_shards == ("shard1",)
        for pattern in ("ab", "abc", "zzzz"):
            truth = mono.count_naive(pattern)
            lo, hi = estimator.count_interval(pattern)
            assert lo <= truth <= hi
            assert estimator.count(pattern) >= truth
        estimator.readmit_shard("shard1")
        assert estimator.error_model is ErrorModel.UNIFORM
        assert estimator.degraded_shards == ()

    def test_rebuild_and_verify(self, sharded):
        estimator, mono = sharded
        estimator.quarantine_shard("shard2", "test")
        seconds = estimator.rebuild_shard("shard2")
        assert seconds >= 0.0
        probes = estimator.verify_shard("shard2", ["ab", "ba", "zzzz"])
        assert probes and all(p.ok for p in probes)
        estimator.readmit_shard("shard2")
        assert estimator.degraded_shards == ()

    def test_convict_clean_estimator_finds_nothing(self, sharded):
        estimator, _ = sharded
        assert estimator.can_localize()
        assert estimator.convict_shards("ab") == []

    def test_unknown_shard_rejected(self, sharded):
        estimator, _ = sharded
        with pytest.raises(InvalidParameterError):
            estimator.quarantine_shard("nope", "test")

    def test_space_report_rolls_up_shards(self, sharded):
        estimator, _ = sharded
        report = estimator.space_report()
        assert any(key.startswith("shard0.") for key in report.components)
        assert report.total_bits > 0


class TestSpaceReportMerge:
    def test_add_two_reports(self):
        a = SpaceReport("A", {"x": 10}, {"o": 1})
        b = SpaceReport("B", {"x": 20}, {"o": 2})
        merged = a + b
        assert merged.components == {"A.x": 10, "B.x": 20}
        assert merged.overhead == {"A.o": 1, "B.o": 2}
        assert merged.total_bits == a.total_bits + b.total_bits

    def test_merge_sums_colliding_keys(self):
        a = SpaceReport("same", {"x": 10}, {})
        b = SpaceReport("same", {"x": 5}, {})
        merged = SpaceReport.merge([a, b])
        assert merged.components == {"same.x": 15}

    def test_merge_names_anonymous_parts(self):
        a = SpaceReport("", {"x": 1}, {})
        b = SpaceReport("", {"y": 2}, {})
        merged = SpaceReport.merge([a, b], name="roll")
        assert merged.name == "roll"
        assert merged.components == {"part0.x": 1, "part1.y": 2}

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            SpaceReport.merge([])

    def test_add_non_report_is_type_error(self):
        with pytest.raises(TypeError):
            SpaceReport("A", {"x": 1}, {}) + 3


class TestCountIntervalDefault:
    """The OccurrenceEstimator.count_interval default on plain indexes."""

    def test_exact_index(self):
        from repro.baselines.fm import FMIndex

        fm = FMIndex("abracadabra")
        assert fm.count_interval("ra") == (2, 2)

    def test_uniform_index(self):
        from repro.core.approx import ApproxIndex

        text = "abcd" * 100
        apx = ApproxIndex(text, l=8)
        truth = Text(text).count_naive("ab")
        lo, hi = apx.count_interval("ab")
        assert lo <= truth <= hi

    def test_lower_sided_index(self):
        from repro.core.cpst import CompactPrunedSuffixTree

        text = "abcd" * 100 + "xyzw"
        cpst = CompactPrunedSuffixTree(text, l=8)
        assert cpst.count_interval("ab") == (100, 100)
        lo, hi = cpst.count_interval("xyzw")  # occurs once, below threshold
        assert lo == 0 and hi == 7

"""Unicode alphabets and concurrent read-only querying."""

from __future__ import annotations

import threading

import pytest

from repro import (
    ApproxIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    Text,
)


class TestUnicodeTexts:
    """The alphabet mapper supports arbitrary unicode characters."""

    GREEK = "αβγδ αβγ αβ αβγδ εζ αβγδ " * 10
    MIXED = "naïve café 北京 déjà-vu ε=0.5 " * 12
    EMOJI = "🙂🙃🙂🙂🙃✨🙂🙃" * 15

    @pytest.mark.parametrize("raw", [GREEK, MIXED, EMOJI])
    def test_fm_exact(self, raw):
        t = Text(raw)
        fm = FMIndex(t)
        for pattern in {raw[:3], raw[2:6], raw[-4:]}:
            assert fm.count(pattern) == t.count_naive(pattern), pattern

    @pytest.mark.parametrize("raw", [GREEK, MIXED, EMOJI])
    def test_apx_bound(self, raw):
        t = Text(raw)
        apx = ApproxIndex(t, 8)
        for pattern in {raw[:2], raw[1:4], raw[5:9]}:
            true = t.count_naive(pattern)
            assert true <= apx.count(pattern) <= true + 7, pattern

    @pytest.mark.parametrize("raw", [GREEK, MIXED])
    def test_cpst_lower_sided(self, raw):
        t = Text(raw)
        cpst = CompactPrunedSuffixTree(t, 4)
        for pattern in {raw[:2], raw[3:5]}:
            true = t.count_naive(pattern)
            got = cpst.count_or_none(pattern)
            assert got == (true if true >= 4 else None), pattern

    def test_alphabet_order_is_codepoint_order(self):
        t = Text("zβa")
        # Dense ids follow lexicographic (codepoint) order: a < z < β.
        assert t.alphabet.characters == "azβ"

    def test_unknown_unicode_pattern(self):
        fm = FMIndex("ascii only")
        assert fm.count("ß") == 0


class TestConcurrentQueries:
    """Indexes are immutable after construction: parallel reads are safe."""

    def test_parallel_counts_are_consistent(self):
        text = "the quick brown fox jumps over the lazy dog " * 20
        t = Text(text)
        indexes = [FMIndex(t), ApproxIndex(t, 8), CompactPrunedSuffixTree(t, 8)]
        patterns = ["the", "fox j", "lazy dog", "quick", "zzz"] * 10
        expected = [[idx.count(p) for p in patterns] for idx in indexes]
        results = [[None] * len(patterns) for _ in indexes]
        errors: list[BaseException] = []

        def worker(index_pos: int, start: int) -> None:
            try:
                index = indexes[index_pos]
                for i in range(start, len(patterns), 4):
                    results[index_pos][i] = index.count(patterns[i])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index_pos, start))
            for index_pos in range(len(indexes))
            for start in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == expected

"""Tests for the executable lower bounds and space-bound sheets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ApproxIndex, CompactPrunedSuffixTree, FMIndex
from repro.analysis import (
    evaluate_bounds,
    membership_oracle,
    optimality_gap,
    reconstruct_from_exact,
    reconstruct_text,
    repeat_text,
)
from repro.errors import InvalidParameterError
from repro.textutil import Text


class TestRepeatText:
    def test_construction(self):
        assert repeat_text("ab", 2, "#") == "ab#ab#ab#"

    def test_separator_conflict(self):
        with pytest.raises(InvalidParameterError):
            repeat_text("a#b", 2, "#")

    def test_l_validation(self):
        with pytest.raises(InvalidParameterError):
            repeat_text("ab", 0)


class TestTheorem3Reconstruction:
    """An additive-l index on (T#)^(l+1) contains T in full."""

    @pytest.mark.parametrize("l", [2, 4, 8])
    def test_reconstruct_via_apx(self, l):
        original = "abracadabra"
        prime = repeat_text(original, l, "#")
        text = Text(prime)
        index = ApproxIndex(text, l)
        recovered = reconstruct_text(index, len(original), text.alphabet, l, "#")
        assert recovered == original

    def test_reconstruct_random_texts(self, rng):
        for _ in range(3):
            original = "".join(rng.choice(list("abcd"), size=30))
            l = 4
            text = Text(repeat_text(original, l, "#"))
            index = ApproxIndex(text, l)
            assert reconstruct_text(index, 30, text.alphabet, l, "#") == original

    def test_membership_oracle_separates(self):
        original = "banana"
        l = 4
        text = Text(repeat_text(original, l, "#"))
        oracle = membership_oracle(ApproxIndex(text, l), l)
        assert oracle("ana")
        assert oracle("banana")
        assert not oracle("nab")
        assert not oracle("bananan")


class TestTheorem4Reconstruction:
    """A membership-capable (multiplicative-style) index on one copy of T
    already contains T: the Omega(n log sigma) bound."""

    def test_reconstruct_via_fm(self):
        original = "mississippi"
        text = Text(original + "#")
        recovered = reconstruct_from_exact(
            FMIndex(text), len(original), text.alphabet, "#"
        )
        assert recovered == original

    def test_ambiguity_detected(self):
        # A CPST that hides everything below threshold cannot reconstruct;
        # the helper must fail loudly rather than return garbage.
        original = "abcd"
        text = Text(original + "#")
        hidden = CompactPrunedSuffixTree(text, 4)
        with pytest.raises(InvalidParameterError):
            reconstruct_from_exact(hidden, len(original), text.alphabet, "#")


class TestBoundSheets:
    def test_expressions_positive_and_ordered(self):
        text = Text("the quick brown fox " * 50)
        sheet = evaluate_bounds(text, l=32, m=40)
        assert sheet.theorem3_floor_bits > 0
        # The APX expression always dominates the floor.
        assert sheet.theorem5_apx_expression_bits > sheet.theorem3_floor_bits

    def test_measured_index_above_floor(self):
        text = Text("the quick brown fox " * 50)
        l = 32
        index = ApproxIndex(text, l)
        sheet = evaluate_bounds(text, l)
        gap = optimality_gap(index.space_report().payload_bits, sheet)
        assert gap >= 1.0  # nobody beats the information-theoretic floor

    def test_gap_shrinks_with_l_bounded(self):
        text = Text("abcdefgh" * 300)
        gaps = []
        for l in (8, 32, 128):
            index = ApproxIndex(text, l)
            sheet = evaluate_bounds(text, l)
            gaps.append(optimality_gap(index.space_report().payload_bits, sheet))
        # The gap stays within a constant-ish band across thresholds
        # (Theorem 5's optimality for log l = O(log sigma)).
        assert max(gaps) / min(gaps) < 30

    def test_degenerate_sheet_rejected(self):
        text = Text("ab")
        sheet = evaluate_bounds(text, l=2)
        with pytest.raises(ValueError):
            optimality_gap(100, type(sheet)(
                n=0, sigma=1, l=2, m=0,
                theorem3_floor_bits=0.0,
                theorem5_apx_expression_bits=0.0,
                theorem8_cpst_expression_bits=0.0,
                fm_h0_reference_bits=0.0,
            ))


@settings(max_examples=15, deadline=None)
@given(st.text(alphabet="ab", min_size=3, max_size=20))
def test_property_reconstruction_roundtrip(original):
    l = 2
    text = Text(repeat_text(original, l, "#"))
    index = ApproxIndex(text, l)
    assert reconstruct_text(index, len(original), text.alphabet, l, "#") == original

"""Regression tests for the Figure 5 rendering (paper's running example)."""

from __future__ import annotations

from repro.suffixtree.pruned import PrunedSuffixTreeStructure
from repro.suffixtree.render import (
    figure5_report,
    link_s_string,
    render_pst,
    unary_g_string,
)
from repro.textutil import Text


class TestFigure5Example:
    """The paper's banabananab / threshold-2 example, pinned."""

    def test_node_count(self):
        structure = PrunedSuffixTreeStructure("banabananab", 2)
        assert structure.num_nodes == 9

    def test_g_string(self):
        structure = PrunedSuffixTreeStructure("banabananab", 2)
        g = unary_g_string(structure)
        # One 1 per node; zeros sum to n+1 = 12 (every original leaf).
        assert g.count("1") == 9
        assert g.count("0") == 12
        assert g == "011001010010100101001"

    def test_s_string(self):
        structure = PrunedSuffixTreeStructure("banabananab", 2)
        s = link_s_string(structure)
        assert s == "ab#n#n#b##a##a#a#"
        # One '#' per node; one link symbol per non-root node.
        assert s.count("#") == 9
        assert len(s) - s.count("#") == 8

    def test_full_report_stable(self):
        report = figure5_report()
        assert "PST of 'banabananab' with threshold 2 (9 nodes)" in report
        assert "G = 011001010010100101001" in report
        assert "S = ab#n#n#b##a##a#a#" in report

    def test_render_mentions_every_node(self):
        structure = PrunedSuffixTreeStructure("banabananab", 2)
        rendering = render_pst(structure)
        for node in structure.nodes:
            assert f"{node.preorder_id} [g={node.g}]" in rendering

    def test_long_labels_truncated(self):
        # A long repeated block gives edges far longer than max_label.
        structure = PrunedSuffixTreeStructure("abcdefghijklm" * 5, 2)
        rendering = render_pst(structure, max_label=6)
        assert "…" in rendering

    def test_correction_factors_match_figure(self):
        structure = PrunedSuffixTreeStructure("banabananab", 2)
        assert [node.g for node in structure.nodes] == [1, 0, 2, 1, 2, 1, 2, 1, 2]

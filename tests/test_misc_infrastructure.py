"""Tests for small infrastructure: tables, errors, interface, packaging."""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro
from repro.core.interface import ErrorModel
from repro.errors import (
    AlphabetError,
    ConstructionError,
    InvalidParameterError,
    PatternError,
    ReproError,
)
from repro.experiments.tables import bits_to_kib, format_table


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (AlphabetError, ConstructionError, InvalidParameterError, PatternError):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Validation errors should be catchable as plain ValueError too.
        for exc in (AlphabetError, InvalidParameterError, PatternError):
            assert issubclass(exc, ValueError)

    def test_one_handler_catches_everything(self):
        with pytest.raises(ReproError):
            repro.Text("")


class TestTables:
    def test_alignment_and_headers(self):
        table = format_table(
            headers=["name", "value"],
            rows=[("alpha", 1234567), ("b", 2.5)],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1,234,567" in table
        assert "2.50" in table

    def test_large_floats_grouped(self):
        table = format_table(["x"], [(123456.7,)])
        assert "123,457" in table

    def test_zero_renders_plainly(self):
        assert "0" in format_table(["x"], [(0.0,)])

    def test_bits_to_kib(self):
        assert bits_to_kib(8 * 1024) == 1.0

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestInterfaceSemantics:
    def test_is_reliable_per_model(self):
        text = repro.Text("abab" * 20)
        assert repro.FMIndex(text).is_reliable("ab")
        cpst = repro.CompactPrunedSuffixTree(text, 8)
        assert cpst.is_reliable("ab") and not cpst.is_reliable("aab")
        apx = repro.ApproxIndex(text, 8)
        assert not apx.is_reliable("ab")  # uniform model, l > 1

    def test_error_model_enum_values(self):
        assert ErrorModel.EXACT.value == "exact"
        assert ErrorModel.UNIFORM.value == "uniform"
        assert ErrorModel.LOWER_SIDED.value == "lower_sided"

    def test_size_in_bits_shorthand(self):
        index = repro.FMIndex("banana" * 10)
        assert index.size_in_bits() == index.space_report().payload_bits


class TestPackaging:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_py_typed_marker_exists(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.applications
        import repro.baselines
        import repro.bits
        import repro.collections
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.sa
        import repro.selectivity
        import repro.suffixtree
        import repro.textutil


class TestEntryPoints:
    @pytest.mark.parametrize(
        "module", ["repro", "repro.experiments"]
    )
    def test_module_help(self, module):
        result = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "usage" in result.stdout.lower()

    def test_cli_subcommand_help(self):
        from repro.cli import build_parser

        parser = build_parser()
        # every subcommand wired with a handler
        subparsers = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        assert set(subparsers.choices) >= {
            "count", "build", "query", "stats", "dataset",
            "experiment", "selectivity", "validate", "report",
        }

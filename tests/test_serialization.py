"""Serialization tests: every index must pickle/unpickle losslessly."""

from __future__ import annotations

import pickle

import pytest

from repro import (
    ApproxIndex,
    ApproxIndexEF,
    CombinedIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    MultiplicativeIndex,
    PrunedPatriciaTrie,
    PrunedSuffixTree,
)
from repro.textutil import Text

TEXT = "the cat sat on the mat and the rat sat too " * 20
PATTERNS = ["the", "at", "sat on", "zzz", "the cat sat"]


def builders():
    return [
        ("fm", lambda t: FMIndex(t)),
        ("apx", lambda t: ApproxIndex(t, 16)),
        ("apx_ef", lambda t: ApproxIndexEF(t, 16)),
        ("cpst", lambda t: CompactPrunedSuffixTree(t, 16)),
        ("pst", lambda t: PrunedSuffixTree(t, 16)),
        ("patricia", lambda t: PrunedPatriciaTrie(t, 16)),
        ("combined", lambda t: CombinedIndex(t, 16)),
        ("multiplicative", lambda t: MultiplicativeIndex(t, 0.5, 16)),
    ]


@pytest.mark.parametrize("name,builder", builders(), ids=[n for n, _ in builders()])
def test_pickle_roundtrip_preserves_answers(name, builder):
    text = Text(TEXT)
    index = builder(text)
    clone = pickle.loads(pickle.dumps(index))
    for pattern in PATTERNS:
        assert clone.count(pattern) == index.count(pattern), pattern
    assert clone.space_report().payload_bits == index.space_report().payload_bits


def test_pickled_size_is_bounded(tmp_path):
    """The on-disk pickle should be within a small factor of the logical
    payload (numpy word arrays serialise compactly)."""
    text = Text(TEXT)
    index = CompactPrunedSuffixTree(text, 16)
    blob = pickle.dumps(index)
    logical_bytes = index.space_report().total_bits / 8
    assert len(blob) < 60 * logical_bytes + 8192


def test_unpickled_index_is_reusable_by_estimators():
    from repro.selectivity import MOLEstimator

    text = Text(TEXT)
    clone = pickle.loads(pickle.dumps(CompactPrunedSuffixTree(text, 8)))
    estimator = MOLEstimator(clone)
    assert estimator.estimate("the") == text.count_naive("the")

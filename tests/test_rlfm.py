"""Tests for the run-length FM-index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fm import FMIndex
from repro.baselines.rlfm import RLFMIndex
from repro.core.interface import ErrorModel
from repro.errors import PatternError
from repro.sa import bwt
from repro.textutil import Text, mixed_workload


class TestRLFMCounting:
    def test_matches_naive(self):
        text = "abracadabra" * 5
        t = Text(text)
        index = RLFMIndex(t)
        for pattern in ("abra", "cad", "ra", "abracadabraabra", "zz", "a"):
            assert index.count(pattern) == t.count_naive(pattern), pattern

    def test_matches_fm_on_every_corpus(self):
        from repro.datasets import dataset_names, generate

        for name in dataset_names():
            t = Text(generate(name, 3000, seed=2))
            fm = FMIndex(t)
            rlfm = RLFMIndex(t)
            for pattern in mixed_workload(t, lengths=(1, 3, 6), per_length=8, seed=3):
                assert rlfm.count(pattern) == fm.count(pattern), (name, pattern)

    def test_internal_rank_matches_bwt(self, rng):
        t = Text("".join(rng.choice(list("abc"), size=300)))
        index = RLFMIndex(t)
        l_arr = bwt(t.data).tolist()
        for c in range(t.sigma):
            for i in range(0, len(l_arr) + 1, 11):
                expected = sum(1 for x in l_arr[:i] if x == c)
                assert index._rank(c, i) == expected, (c, i)

    def test_single_char_text(self):
        index = RLFMIndex("x")
        assert index.count("x") == 1
        assert index.num_runs <= 3

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            RLFMIndex("abc").count("")

    def test_metadata(self):
        index = RLFMIndex("banana")
        assert index.error_model is ErrorModel.EXACT
        assert index.threshold == 1
        assert index.text_length == 6


class TestRLFMSpace:
    def test_run_count_correct(self):
        t = Text("aaabbbccc")
        index = RLFMIndex(t)
        l_arr = bwt(t.data)
        expected = 1 + int(np.count_nonzero(np.diff(l_arr)))
        assert index.num_runs == expected

    def test_beats_fm_on_repetitive_text(self):
        # Highly repetitive: few BWT runs, RLFM wins decisively.
        text = ("the same sentence over and over again. " * 60)
        t = Text(text)
        rlfm_bits = RLFMIndex(t).space_report().payload_bits
        fm_bits = FMIndex(t).space_report().payload_bits
        assert rlfm_bits < 0.5 * fm_bits

    def test_loses_on_incompressible_text(self, rng):
        # Random text: R ~ n, run bookkeeping makes RLFM larger.
        text = "".join(rng.choice(list("abcdefgh"), size=4000))
        t = Text(text)
        rlfm_bits = RLFMIndex(t).space_report().payload_bits
        fm_bits = FMIndex(t).space_report().payload_bits
        assert rlfm_bits > fm_bits

    def test_space_components(self):
        report = RLFMIndex("banana" * 20).space_report()
        assert set(report.components) == {
            "run_heads_wavelet",
            "run_starts",
            "run_length_prefix_sums",
            "C_array",
        }

    def test_from_bwt_equivalent(self):
        from repro.sa import suffix_array, bwt_from_sa

        t = Text("mississippi" * 4)
        transform = bwt_from_sa(t.data, suffix_array(t.data))
        a = RLFMIndex.from_bwt(transform, t.alphabet)
        b = RLFMIndex(t)
        for pattern in ("ssi", "mi", "pp"):
            assert a.count(pattern) == b.count(pattern)


@settings(max_examples=40, deadline=None)
@given(
    st.text(alphabet="ab", min_size=1, max_size=120),
    st.text(alphabet="ab", min_size=1, max_size=6),
)
def test_property_rlfm_exact(text, pattern):
    t = Text(text)
    assert RLFMIndex(t).count(pattern) == t.count_naive(pattern)

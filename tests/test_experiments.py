"""Integration tests for the experiment harness (tiny corpus sizes)."""

from __future__ import annotations

import pytest

from repro.experiments import ablation, errorbounds, figure7, figure8, figure9, run
from repro.experiments.common import CorpusContext

SIZE = 4_000


@pytest.fixture(scope="module")
def english_ctx():
    return CorpusContext("english", SIZE, seed=0)


class TestCorpusContext:
    def test_caching(self, english_ctx):
        assert english_ctx.sa is english_ctx.sa
        assert english_ctx.structure(8) is english_ctx.structure(8)
        assert english_ctx.structure(8) is not english_ctx.structure(16)

    def test_builders_agree_with_direct_construction(self, english_ctx):
        from repro import ApproxIndex

        direct = ApproxIndex(english_ctx.text, 16)
        cached = english_ctx.build_apx(16)
        for pattern in ("the", "of", "and "):
            assert direct.count(pattern) == cached.count(pattern)

    def test_sample_patterns(self, english_ctx):
        patterns = english_ctx.sample_patterns(6, 10)
        assert len(patterns) == 10
        assert all(len(p) == 6 for p in patterns)
        assert all(p in english_ctx.text.raw for p in patterns)

    def test_sample_patterns_deterministic(self, english_ctx):
        assert english_ctx.sample_patterns(6, 5) == english_ctx.sample_patterns(6, 5)


class TestFigure7:
    def test_rows_and_formatting(self):
        rows = figure7.run(size=SIZE, thresholds=(8, 64), datasets=["english", "dna"])
        assert len(rows) == 4
        table = figure7.format_results(rows)
        assert "english" in table and "dna" in table
        checks = figure7.headline_checks(rows)
        assert checks["m_close_to_n_over_l"]


class TestFigure8:
    def test_rows_and_checks(self):
        rows = figure8.run(size=SIZE, thresholds=(8, 16), datasets=["english"])
        indexes = {r.index for r in rows}
        assert indexes == {"FM-index", "APPROX", "PST", "CPST"}
        table = figure8.format_results(rows)
        assert "payload_bits" in table

    def test_patricia_opt_in(self):
        rows = figure8.run(
            size=SIZE, thresholds=(8,), datasets=["dna"], include_patricia=True
        )
        assert any(r.index == "Patricia" for r in rows)


class TestFigure9:
    def test_single_dataset(self):
        rows = figure9.run(
            size=SIZE,
            datasets=["english"],
            pattern_lengths=(6, 8),
            patterns_per_length=15,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.cpst_l <= row.pst_l
        assert set(row.pst_errors) == {6, 8}
        table = figure9.format_results(rows)
        assert "PST-" in table and "CPST-" in table

    def test_match_thresholds(self, english_ctx):
        pst_l, pst_bits, cpst_bits = figure9.match_thresholds(english_ctx, 16)
        assert pst_l >= 16
        assert pst_bits > 0 and cpst_bits > 0


class TestErrorBounds:
    def test_all_hold_on_tiny_corpora(self):
        rows = errorbounds.run(size=SIZE, thresholds=(4, 16), datasets=["dna", "sources"])
        assert errorbounds.all_bounds_hold(rows), errorbounds.format_results(rows)


class TestAblation:
    def test_halving(self):
        rows = ablation.run_halving(size=SIZE, thresholds=(8, 16, 32), datasets=["english"])
        assert all(r.ratio >= 1.0 for r in rows)

    def test_nodes(self):
        rows = ablation.run_nodes(size=SIZE, thresholds=(8,), datasets=["dblp"])
        assert rows[0].m >= 1

    def test_wavelet(self):
        rows = ablation.run_wavelet(size=SIZE, datasets=["dna"])
        assert rows[0].huffman_bits < rows[0].balanced_bits


class TestRunner:
    def test_run_by_name(self):
        report = run("figure7", size=SIZE)
        assert "Figure 7" in report

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            run("figure99")


class TestNewAblations:
    def test_encoding_rows(self):
        rows = ablation.run_encoding(size=SIZE, thresholds=(8,), datasets=["dna"])
        assert rows[0].bv_bits > 0 and rows[0].ef_bits > 0
        assert 0.1 < rows[0].ef_over_bv < 10

    def test_bounds_rows(self):
        rows = ablation.run_bounds(size=SIZE, thresholds=(8,), datasets=["dna"])
        assert all(r.gap >= 1.0 for r in rows)
        assert {r.index for r in rows} == {"APPROX", "CPST"}

    def test_formatting(self):
        enc = ablation.format_encoding(
            ablation.run_encoding(size=SIZE, thresholds=(8,), datasets=["dna"])
        )
        assert "Lemma 2" in enc
        bounds = ablation.format_bounds(
            ablation.run_bounds(size=SIZE, thresholds=(8,), datasets=["dna"])
        )
        assert "Theorem3" in bounds


class TestBatchCounting:
    def test_count_many_matches_scalar(self, english_ctx):
        index = english_ctx.build_apx(16)
        patterns = english_ctx.sample_patterns(4, 10)
        assert index.count_many(patterns) == [index.count(p) for p in patterns]

    def test_count_many_empty(self, english_ctx):
        assert english_ctx.build_fm().count_many([]) == []


class TestScalingExperiment:
    def test_rows_and_checks(self):
        from repro.experiments import scaling

        rows = scaling.run(sizes=(2000, 4000), l=16)
        assert len(rows) == 2
        assert rows[0].size < rows[1].size
        checks = scaling.headline_checks(rows)
        assert "linear_scaling" in checks


class TestErrorDistExperiment:
    def test_within_bound(self):
        from repro.experiments import errordist

        rows = errordist.run(size=SIZE, thresholds=(8,), per_length=20,
                             datasets=["dna"])
        assert errordist.all_within_bound(rows)
        assert sum(rows[0].histogram) == rows[0].patterns


class TestEstimatorComparison:
    def test_rows(self):
        from repro.experiments import estimators

        rows = estimators.run(size=SIZE, l=16, per_length=10, datasets=["english"])
        assert set(rows[0].mean_errors) == {"KVI", "MO", "MOC", "MOL", "MOLC"}
        assert rows[0].best() in rows[0].mean_errors


class TestBudgetExperiment:
    def test_rows_and_checks(self):
        from repro.experiments import budget

        rows = budget.run(
            size=SIZE, budgets_percent=(10.0, 30.0), patterns=15,
            datasets=["english"],
        )
        assert rows, "expected at least one feasible budget"
        checks = budget.headline_checks(rows)
        assert checks["cpst_affords_finer_threshold"]

    def test_infeasible_budgets_skipped(self):
        from repro.experiments import budget

        rows = budget.run(
            size=SIZE, budgets_percent=(0.0001,), patterns=5, datasets=["dna"]
        )
        assert rows == []


class TestReport:
    def test_generate_subset(self):
        from repro.experiments.report import generate

        doc = generate(size=SIZE, experiments=["figure7"])
        assert "# Reproduction report" in doc
        assert "Figure 7" in doc
        assert doc.rstrip().endswith("All headline checks PASS.") or "FAILED" in doc

    def test_unknown_experiment(self):
        from repro.experiments.report import generate

        with pytest.raises(KeyError):
            generate(size=SIZE, experiments=["figure99"])


class TestCustomCorpusContext:
    def test_from_text(self):
        ctx = CorpusContext.from_text("the quick brown fox " * 100, name="mine")
        assert ctx.name == "mine"
        assert ctx.build_fm().count("quick") == 100
        assert ctx.structure(8).num_nodes > 1
        patterns = ctx.sample_patterns(4, 5)
        assert all(p in ctx.text.raw for p in patterns)

    def test_from_text_accepts_text_objects(self):
        from repro.textutil import Text

        ctx = CorpusContext.from_text(Text("abcabc" * 50))
        assert ctx.size == 300


class TestFigure8Extras:
    def test_extra_baselines_included(self):
        rows = figure8.run(
            size=SIZE, thresholds=(8,), datasets=["dblp"],
            include_patricia=True, include_extras=True,
        )
        indexes = {r.index for r in rows}
        assert {"RLFM", "QGram4", "Patricia"} <= indexes


class TestCorporaExperiment:
    def test_rows_and_checks(self):
        from repro.experiments import corpora

        rows = corpora.run(size=SIZE, datasets=None)
        assert len(rows) == 4
        checks = corpora.headline_checks(rows)
        assert all(checks.values()), checks

    def test_entropy_profile_monotone(self):
        from repro.experiments import corpora

        for row in corpora.run(size=SIZE):
            assert row.h0 >= row.h1 >= row.h2 >= row.h3 >= 0

"""Systematic contract matrix: every corpus x a threshold ladder.

Sweeps the validation harness over all four corpus shapes and thresholds
from the minimum (2) to beyond-corpus scale, for both core indexes. This
is the coarse net under the fine-grained per-module tests: any regression
that breaks a contract anywhere in the (corpus, l) plane trips here.
"""

from __future__ import annotations

import pytest

from repro import ApproxIndex, CompactPrunedSuffixTree
from repro.datasets import dataset_names, generate
from repro.textutil import Text, mixed_workload
from repro.validation import validate_index

SIZE = 2_500
THRESHOLDS = [2, 4, 16, 64, 256]


@pytest.fixture(scope="module", params=dataset_names())
def corpus(request):
    text = Text(generate(request.param, SIZE, seed=3))
    workload = mixed_workload(text, lengths=(1, 2, 4, 8), per_length=8, seed=4)
    return request.param, text, workload


@pytest.mark.parametrize("l", THRESHOLDS)
def test_apx_contract(corpus, l):
    name, text, workload = corpus
    report = validate_index(ApproxIndex(text, l), text, patterns=workload)
    assert report.ok, (name, l, [v for v in report.violations][:3])


@pytest.mark.parametrize("l", THRESHOLDS)
def test_cpst_contract(corpus, l):
    name, text, workload = corpus
    report = validate_index(CompactPrunedSuffixTree(text, l), text, patterns=workload)
    assert report.ok, (name, l, [v for v in report.violations][:3])

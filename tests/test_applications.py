"""Tests for the application layer: n-gram models and k-mer similarity."""

from __future__ import annotations

import math

import pytest

from repro import ApproxIndex, CompactPrunedSuffixTree, FMIndex
from repro.applications import (
    NGramModel,
    cosine_similarity,
    kmer_profile,
    profile_similarity,
    top_kmers,
)
from repro.errors import InvalidParameterError, PatternError
from repro.textutil import Text


@pytest.fixture(scope="module")
def english_index():
    text = Text("the cat sat on the mat and the rat sat too " * 30)
    return text, FMIndex(text)


class TestNGramModel:
    def test_probabilities_form_distribution(self, english_index):
        _, index = english_index
        model = NGramModel(index, order=2)
        for context in ("", "th", "q"):
            dist = model.distribution(context)
            assert sum(dist.values()) == pytest.approx(1.0)
            assert all(p > 0 for p in dist.values())

    def test_conditioning_matches_counts(self, english_index):
        text, index = english_index
        model = NGramModel(index, order=2, smoothing=1e-9)
        # P('e' | 'th') ~ Count('the')/Count('th') with tiny smoothing.
        expected = text.count_naive("the") / text.count_naive("th")
        assert model.probability("e", "th") == pytest.approx(expected, rel=1e-3)

    def test_likelihood_prefers_in_domain_text(self, english_index):
        _, index = english_index
        model = NGramModel(index, order=3)
        good = model.perplexity("the cat sat on the mat")
        bad = model.perplexity("zqxj wvk qqq zzz")
        assert good < bad

    def test_backoff_on_unseen_context(self, english_index):
        _, index = english_index
        model = NGramModel(index, order=3)
        # Context never occurring: probability still positive via backoff.
        assert model.probability("t", "qqq") > 0

    def test_unseen_character(self, english_index):
        _, index = english_index
        model = NGramModel(index, order=2)
        assert 0 < model.probability("Z", "th") < 0.5

    def test_generation_is_deterministic_and_plausible(self, english_index):
        _, index = english_index
        model = NGramModel(index, order=3)
        a = model.generate(60, seed=5)
        b = model.generate(60, seed=5)
        assert a == b and len(a) == 60
        # Generated text reuses the corpus alphabet and spaces words out.
        assert set(a) <= set(index.alphabet.characters)
        assert " " in a

    def test_generate_with_prompt(self, english_index):
        _, index = english_index
        model = NGramModel(index, order=3)
        out = model.generate(10, seed=1, prompt="the ")
        assert len(out) == 10

    def test_approximate_backend(self, english_index):
        text, _ = english_index
        model = NGramModel(ApproxIndex(text, 8), order=2)
        dist = model.distribution("th")
        assert max(dist, key=dist.get) == "e"

    def test_validation(self, english_index):
        _, index = english_index
        with pytest.raises(InvalidParameterError):
            NGramModel(index, order=0)
        with pytest.raises(InvalidParameterError):
            NGramModel(index, backoff=0)
        with pytest.raises(InvalidParameterError):
            NGramModel(index, smoothing=0)
        model = NGramModel(index)
        with pytest.raises(PatternError):
            model.probability("ab", "c")
        with pytest.raises(PatternError):
            model.log_likelihood("")
        with pytest.raises(InvalidParameterError):
            model.generate(-1)


class TestSimilarity:
    KMERS = ["the", "cat", "dog", "at ", " sa"]

    def test_profile_counts(self, english_index):
        text, index = english_index
        profile = kmer_profile(index, self.KMERS)
        assert profile["the"] == text.count_naive("the")

    def test_self_similarity_is_one(self, english_index):
        _, index = english_index
        assert profile_similarity(index, index, self.KMERS) == pytest.approx(1.0)

    def test_related_texts_more_similar(self):
        a = FMIndex(Text("the cat sat on the mat " * 20))
        b = FMIndex(Text("the cat sat near the mat " * 20))
        c = FMIndex(Text("GATTACA GATTACA CCGGTTAA " * 20))
        kmers = ["the", "cat", "mat", "GAT", "CCG", " sa"]
        assert profile_similarity(a, b, kmers) > profile_similarity(a, c, kmers)

    def test_apx_backend_perturbation_bounded(self):
        text = Text("the cat sat on the mat and more words here " * 40)
        exact = FMIndex(text)
        l = 8
        approx = ApproxIndex(text, l)
        kmers = ["the", " ca", "at ", "mat", "wor"]
        exact_profile = kmer_profile(exact, kmers)
        approx_profile = kmer_profile(approx, kmers)
        for kmer in kmers:
            assert 0 <= approx_profile[kmer] - exact_profile[kmer] <= l - 1
        sim = cosine_similarity(exact_profile, approx_profile)
        assert sim > 0.99  # small additive noise barely moves the angle

    def test_mismatched_profiles_rejected(self):
        with pytest.raises(InvalidParameterError):
            cosine_similarity({"a": 1}, {"b": 1})

    def test_zero_profile(self):
        assert cosine_similarity({"a": 0}, {"a": 0}) == 0.0

    def test_top_kmers(self, english_index):
        _, index = english_index
        ranked = top_kmers(index, self.KMERS, k=2)
        assert len(ranked) == 2
        assert ranked[0][1] >= ranked[1][1]
        with pytest.raises(InvalidParameterError):
            top_kmers(index, self.KMERS, k=0)

    def test_empty_kmers_rejected(self, english_index):
        _, index = english_index
        with pytest.raises(InvalidParameterError):
            kmer_profile(index, [])

    def test_lower_sided_backend(self):
        text = Text("abcabcabc" * 10)
        cpst = CompactPrunedSuffixTree(text, 4)
        profile = kmer_profile(cpst, ["abc", "bca", "zzz"])
        assert profile["abc"] == text.count_naive("abc")
        assert profile["zzz"] == 0

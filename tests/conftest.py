"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that sample random inputs."""
    return np.random.default_rng(0xC0FFEE)


def naive_count(text: str, pattern: str) -> int:
    """Reference substring counter (overlapping occurrences)."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    count = 0
    start = 0
    while True:
        idx = text.find(pattern, start)
        if idx < 0:
            return count
        count += 1
        start = idx + 1

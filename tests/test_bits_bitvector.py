"""Unit and property tests for BitVector rank/select."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import BitVector
from repro.errors import InvalidParameterError


def naive_rank(bits, b, i):
    return sum(1 for x in bits[:i] if x == b)


def naive_select(bits, b, k):
    seen = 0
    for pos, x in enumerate(bits):
        if x == b:
            seen += 1
            if seen == k:
                return pos
    return -1


class TestBitVectorBasics:
    def test_empty(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.num_ones == 0
        assert bv.rank1(0) == 0
        assert bv.select1(1) == -1

    def test_access(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        bv = BitVector(bits)
        assert [bv[i] for i in range(7)] == bits
        assert bv[-1] == 1

    def test_counts(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert bv.num_ones == 3
        assert bv.num_zeros == 2

    def test_invalid_entries(self):
        with pytest.raises(InvalidParameterError):
            BitVector([0, 2])

    def test_from_positions(self):
        bv = BitVector.from_positions([1, 4, 5], 8)
        assert bv.to_array().tolist() == [0, 1, 0, 0, 1, 1, 0, 0]

    def test_from_positions_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            BitVector.from_positions([8], 8)

    def test_rank_bounds(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv.rank1(3)
        assert bv.rank1(2) == 1

    def test_size_accounting(self):
        bv = BitVector([1] * 1000)
        assert bv.size_in_bits() == 1000
        assert bv.overhead_in_bits() > 0


class TestRankSelectAgainstNaive:
    @pytest.mark.parametrize("n,p", [(1, 0.5), (64, 0.1), (65, 0.9), (500, 0.5), (1000, 0.02)])
    def test_dense_patterns(self, n, p, rng):
        bits = (rng.random(n) < p).astype(np.uint8)
        ref = bits.tolist()
        bv = BitVector(bits)
        for i in range(0, n + 1, max(1, n // 37)):
            assert bv.rank1(i) == naive_rank(ref, 1, i)
            assert bv.rank0(i) == naive_rank(ref, 0, i)
        ones = int(bits.sum())
        zeros = n - ones
        for k in range(1, ones + 1, max(1, ones // 29) if ones else 1):
            assert bv.select1(k) == naive_select(ref, 1, k)
        for k in range(1, zeros + 1, max(1, zeros // 29) if zeros else 1):
            assert bv.select0(k) == naive_select(ref, 0, k)

    def test_word_boundaries(self):
        # All ones at multiples of 64 exercises word-boundary arithmetic.
        n = 64 * 5 + 3
        bits = [1 if i % 64 == 0 else 0 for i in range(n)]
        bv = BitVector(bits)
        for k in range(1, 7):
            assert bv.select1(k) == naive_select(bits, 1, k)
        for i in (0, 63, 64, 65, 127, 128, n):
            assert bv.rank1(i) == naive_rank(bits, 1, i)

    def test_rank_select_inverse(self, rng):
        bits = (rng.random(777) < 0.3).astype(np.uint8)
        bv = BitVector(bits)
        for k in range(1, bv.num_ones + 1):
            pos = bv.select1(k)
            assert bv.rank1(pos) == k - 1
            assert bv[pos] == 1
        for k in range(1, bv.num_zeros + 1, 7):
            pos = bv.select0(k)
            assert bv.rank0(pos) == k - 1
            assert bv[pos] == 0

    def test_dispatching_rank_select(self):
        bits = [1, 0, 0, 1, 1]
        bv = BitVector(bits)
        assert bv.rank(1, 4) == bv.rank1(4)
        assert bv.rank(0, 4) == bv.rank0(4)
        assert bv.select(1, 2) == bv.select1(2)
        assert bv.select(0, 1) == bv.select0(1)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), max_size=400))
def test_property_rank_select_consistency(bits):
    bv = BitVector(bits)
    n = len(bits)
    # rank at n equals total counts
    assert bv.rank1(n) == sum(bits)
    assert bv.rank0(n) == n - sum(bits)
    # select inverts rank for every one
    for k in range(1, sum(bits) + 1):
        pos = bv.select1(k)
        assert bits[pos] == 1
        assert bv.rank1(pos + 1) == k
    # out-of-range selects return -1
    assert bv.select1(sum(bits) + 1) == -1
    assert bv.select0(n - sum(bits) + 1) == -1

"""Tests for suffix-sharing batch counting."""

from __future__ import annotations

import pytest

from repro import (
    ApproxIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    PrunedSuffixTree,
)
from repro.batch import SuffixSharingCounter
from repro.errors import PatternError
from repro.textutil import Text, mixed_workload

TEXT = Text("the cat sat on the mat and the rat sat too " * 25)


@pytest.fixture(
    params=["fm", "apx", "cpst", "pst"],
)
def wrapped(request):
    indexes = {
        "fm": lambda: FMIndex(TEXT),
        "apx": lambda: ApproxIndex(TEXT, 8),
        "cpst": lambda: CompactPrunedSuffixTree(TEXT, 8),
        "pst": lambda: PrunedSuffixTree(TEXT, 8),  # no automaton: fallback path
    }
    index = indexes[request.param]()
    return index, SuffixSharingCounter(index)


class TestSuffixSharingCounter:
    def test_matches_direct_counts(self, wrapped):
        index, counter = wrapped
        for pattern in mixed_workload(TEXT, lengths=(1, 2, 4, 9), per_length=10):
            assert counter.count(pattern) == index.count(pattern), pattern

    def test_count_many_order_preserved(self, wrapped):
        index, counter = wrapped
        patterns = ["the", "at", "the", "sat on", "zz"]
        assert counter.count_many(patterns) == [index.count(p) for p in patterns]

    def test_shared_suffixes_share_states(self):
        index = FMIndex(TEXT)
        counter = SuffixSharingCounter(index)
        counter.count("the cat")
        states_before = len(counter._states)
        counter.count("e cat")  # proper suffix: fully cached already
        assert len(counter._states) == states_before

    def test_overlapping_batch_is_cheap(self):
        """All substrings of one string need only O(p^2) automaton steps
        in total (each suffix extended once)."""
        index = FMIndex(TEXT)
        counter = SuffixSharingCounter(index)
        base = "the cat sat"
        patterns = [
            base[i:j]
            for i in range(len(base))
            for j in range(i + 1, len(base) + 1)
        ]
        results = counter.count_many(patterns)
        assert results == [index.count(p) for p in patterns]
        # distinct suffixes of distinct... states keyed by suffix of some
        # pattern: bounded by #distinct substrings.
        assert len(counter._states) <= len(set(patterns))

    def test_clear(self, wrapped):
        _, counter = wrapped
        counter.count("the")
        counter.clear()
        assert not counter._results and not counter._states

    def test_empty_pattern_rejected(self, wrapped):
        _, counter = wrapped
        with pytest.raises(PatternError):
            counter.count("")

    def test_unknown_character(self, wrapped):
        index, counter = wrapped
        assert counter.count("ZZZ") == index.count("ZZZ") == 0


class TestBoundedCache:
    def test_epoch_eviction_preserves_correctness(self):
        from repro.textutil import zipf_workload

        index = FMIndex(TEXT)
        bounded = SuffixSharingCounter(index, max_states=32)
        workload = zipf_workload(TEXT, num_queries=120, distinct=30, seed=4)
        assert bounded.count_many(workload) == [index.count(p) for p in workload]
        assert len(bounded._states) <= 32 + max(len(p) for p in workload)

    def test_invalid_bound(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            SuffixSharingCounter(FMIndex(TEXT), max_states=0)


class TestZipfWorkload:
    def test_shapes(self):
        from repro.textutil import zipf_workload

        workload = zipf_workload(TEXT, num_queries=200, distinct=20, seed=1)
        assert len(workload) == 200
        assert len(set(workload)) <= 20
        assert all(p in TEXT.raw for p in workload)
        # Zipf skew: the most popular pattern dominates.
        from collections import Counter
        top = Counter(workload).most_common(1)[0][1]
        assert top > 200 / 20

    def test_validation(self):
        from repro.errors import InvalidParameterError
        from repro.textutil import zipf_workload

        with pytest.raises(InvalidParameterError):
            zipf_workload(TEXT, distinct=0)
        with pytest.raises(InvalidParameterError):
            zipf_workload(TEXT, length_range=(5, 2))

    def test_deterministic(self):
        from repro.textutil import zipf_workload

        assert zipf_workload(TEXT, seed=9) == zipf_workload(TEXT, seed=9)


class TestCountOrNoneSharing:
    def test_matches_cpst_semantics(self):
        index = CompactPrunedSuffixTree(TEXT, 8)
        counter = SuffixSharingCounter(index)
        for pattern in mixed_workload(TEXT, lengths=(1, 3, 6), per_length=10):
            assert counter.count_or_none(pattern) == index.count_or_none(pattern)

    def test_requires_lower_sided(self):
        counter = SuffixSharingCounter(FMIndex(TEXT))
        with pytest.raises(PatternError):
            counter.count_or_none("the")

    def test_fallback_without_automaton(self):
        index = PrunedSuffixTree(TEXT, 8)
        counter = SuffixSharingCounter(index)
        assert counter.count_or_none("the") == index.count_or_none("the")
        assert counter.count_or_none("zzz") is None

"""Tests for the RRR-compressed bitvector and its wavelet integration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import BitVector, RRRBitVector, WaveletMatrix
from repro.bits.rrr import BLOCK, _decode_block, _encode_block
from repro.errors import InvalidParameterError


class TestEnumerativeCoding:
    def test_roundtrip_all_small_blocks(self):
        for value in range(1 << 12):  # 12-bit exhaustive slice of the space
            k, offset = _encode_block(value)
            assert k == bin(value).count("1")
            assert _decode_block(k, offset) == value

    def test_roundtrip_random_full_blocks(self, rng):
        for value in rng.integers(0, 1 << BLOCK, size=500):
            k, offset = _encode_block(int(value))
            assert _decode_block(k, offset) == int(value)

    def test_extremes(self):
        assert _encode_block(0) == (0, 0)
        full = (1 << BLOCK) - 1
        k, offset = _encode_block(full)
        assert k == BLOCK and offset == 0
        assert _decode_block(BLOCK, 0) == full


class TestRRRAgainstPlain:
    @pytest.mark.parametrize("n,p", [(1, 0.5), (15, 0.2), (16, 0.8), (480, 0.5),
                                     (481, 0.03), (1000, 0.97), (2000, 0.5)])
    def test_rank_select_access_match(self, n, p, rng):
        bits = (rng.random(n) < p).astype(np.uint8)
        plain = BitVector(bits)
        rrr = RRRBitVector(bits)
        assert len(rrr) == n
        assert rrr.num_ones == plain.num_ones
        step = max(1, n // 41)
        for i in range(0, n + 1, step):
            assert rrr.rank1(i) == plain.rank1(i), i
            assert rrr.rank0(i) == plain.rank0(i), i
        for i in range(0, n, step):
            assert rrr[i] == plain[i], i
        for k in range(1, plain.num_ones + 1, max(1, plain.num_ones // 23) or 1):
            assert rrr.select1(k) == plain.select1(k), k
        for k in range(1, plain.num_zeros + 1, max(1, plain.num_zeros // 23) or 1):
            assert rrr.select0(k) == plain.select0(k), k

    def test_to_array_roundtrip(self, rng):
        bits = (rng.random(333) < 0.4).astype(np.uint8)
        assert np.array_equal(RRRBitVector(bits).to_array(), bits)

    def test_empty(self):
        rrr = RRRBitVector([])
        assert len(rrr) == 0
        assert rrr.rank1(0) == 0
        assert rrr.select1(1) == -1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RRRBitVector([0, 2])
        rrr = RRRBitVector([1, 0])
        with pytest.raises(IndexError):
            rrr.rank1(3)
        with pytest.raises(IndexError):
            rrr[2]


class TestRRRCompression:
    def test_sparse_compresses(self, rng):
        n = 6000
        bits = np.zeros(n, dtype=np.uint8)
        bits[rng.integers(0, n, size=60)] = 1
        rrr = RRRBitVector(bits)
        plain = BitVector(bits)
        assert rrr.size_in_bits() < 0.6 * plain.size_in_bits()

    def test_dense_compresses(self):
        bits = np.ones(6000, dtype=np.uint8)
        assert RRRBitVector(bits).size_in_bits() < 0.5 * 6000

    def test_incompressible_stays_bounded(self, rng):
        bits = (rng.random(6000) < 0.5).astype(np.uint8)
        # Balanced random bits: payload <= n * (H0 + 4/15) + slack.
        assert RRRBitVector(bits).size_in_bits() < 1.35 * 6000

    def test_dispatch_rank_select(self):
        rrr = RRRBitVector([1, 0, 1, 1, 0])
        assert rrr.rank(1, 4) == 3
        assert rrr.select(0, 2) == 4


class TestCompressedWavelet:
    def test_matches_plain_wavelet(self, rng):
        data = rng.integers(0, 11, size=400)
        plain = WaveletMatrix(data)
        packed = WaveletMatrix(data, compressed=True)
        for c in range(11):
            for i in range(0, 401, 37):
                assert packed.rank(c, i) == plain.rank(c, i)
        np.testing.assert_array_equal(packed.to_array(), data)

    def test_skewed_data_compresses(self, rng):
        data = np.zeros(4000, dtype=np.int64)
        data[rng.integers(0, 4000, size=200)] = rng.integers(1, 16, size=200)
        plain = WaveletMatrix(data, sigma=16)
        packed = WaveletMatrix(data, sigma=16, compressed=True)
        assert packed.size_in_bits() < 0.5 * plain.size_in_bits()

    def test_fm_index_rrr_variant(self):
        from repro.baselines.fm import FMIndex
        from repro.textutil import Text

        t = Text("abracadabra" * 30)
        exact = FMIndex(t, wavelet="huffman")
        packed = FMIndex(t, wavelet="huffman-rrr")
        for pattern in ("abra", "cad", "zz", "a"):
            assert packed.count(pattern) == exact.count(pattern)

    def test_fm_rejects_unknown_kind(self):
        from repro.baselines.fm import FMIndex

        with pytest.raises(InvalidParameterError):
            FMIndex("abc", wavelet="huffman-zstd")
        with pytest.raises(InvalidParameterError):
            FMIndex("abc", wavelet="balanced")


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
def test_property_rrr_equals_plain(bits):
    plain = BitVector(bits)
    rrr = RRRBitVector(bits)
    n = len(bits)
    for i in range(n + 1):
        assert rrr.rank1(i) == plain.rank1(i)
    for k in range(1, sum(bits) + 1):
        assert rrr.select1(k) == plain.select1(k)

"""Unit tests for the asyncio serving front (repro.parallel.asyncserver).

Mirrors the thread-server suite: the :class:`AsyncQueryServer` must honor
the same admission/shedding/hedging contract as
:class:`~repro.service.server.QueryServer`, with coroutine control flow.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import (
    InvalidParameterError,
    PatternError,
    ServerClosedError,
)
from repro.parallel import AsyncBulkhead, AsyncQueryServer
from repro.service import (
    QueryOutcome,
    ResilientEstimator,
    ShedOutcome,
    Tier,
    build_default_ladder,
    run_async_probe,
)
from repro.service.tiers import TextStatsEstimator
from repro.textutil import Text

TEXT = Text("abracadabra_the_quick_brown_fox_" * 30)
L = 8


def make_server(**kwargs) -> AsyncQueryServer:
    service = build_default_ladder(TEXT, L, deadline_seconds=5.0)
    return AsyncQueryServer(service, **kwargs)


def run(coro):
    return asyncio.run(coro)


class TestAsyncBulkhead:
    def test_caps_and_counts_saturation(self):
        async def scenario():
            bulkhead = AsyncBulkhead({"cpst": 1})
            tier = Tier(TextStatsEstimator(TEXT), "cpst")
            assert await bulkhead.acquire(tier)
            assert not await bulkhead.acquire(tier)
            assert bulkhead.saturation == {"cpst": 1}
            bulkhead.release(tier)
            assert await bulkhead.acquire(tier)

        run(scenario())

    def test_unlisted_tier_unbounded_by_default(self):
        async def scenario():
            bulkhead = AsyncBulkhead({})
            tier = Tier(TextStatsEstimator(TEXT), "anything")
            for _ in range(50):
                assert await bulkhead.acquire(tier)

        run(scenario())

    def test_bounded_wait_times_out(self):
        async def scenario():
            bulkhead = AsyncBulkhead(default_limit=1)
            tier = Tier(TextStatsEstimator(TEXT), "t")
            assert await bulkhead.acquire(tier)
            assert not await bulkhead.acquire(tier, wait=0.01)
            assert bulkhead.saturation == {"t": 1}

        run(scenario())

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AsyncBulkhead({"x": 0})
        with pytest.raises(InvalidParameterError):
            AsyncBulkhead(default_limit=0)


class TestAsyncQueryServer:
    def test_serves_and_counts(self):
        async def scenario():
            async with make_server() as server:
                outcome = await server.query("abra")
                assert isinstance(outcome, QueryOutcome)
                assert outcome.count == TEXT.count_naive("abra")
                assert not outcome.shed
                stats = server.stats()
                assert stats.served == 1 and stats.shed == 0

        run(scenario())

    def test_rejects_bad_patterns(self):
        async def scenario():
            async with make_server() as server:
                with pytest.raises(PatternError):
                    await server.query("")

        run(scenario())

    def test_rate_limit_sheds_with_sound_answer(self):
        async def scenario():
            async with make_server(rate=0.0001, burst=1.0) as server:
                first = await server.query("abra")
                assert isinstance(first, QueryOutcome)
                second = await server.query("abra")
                assert isinstance(second, ShedOutcome)
                assert second.reason == "rate limited"
                assert second.tier == "stats"
                assert second.contract_holds(
                    TEXT.count_naive("abra"), len(TEXT)
                )
                assert server.stats().shed == 1

        run(scenario())

    def test_draining_sheds_then_close_raises(self):
        async def scenario():
            server = make_server()
            await server.drain()
            outcome = await server.query("abra")
            assert isinstance(outcome, ShedOutcome)
            assert outcome.reason == "draining"
            await server.close()
            with pytest.raises(ServerClosedError):
                await server.query("abra")

        run(scenario())

    def test_requires_always_available_tier(self):
        from repro.core import CompactPrunedSuffixTree

        bare = ResilientEstimator(
            [Tier(CompactPrunedSuffixTree(TEXT, L), "cpst")]
        )
        with pytest.raises(InvalidParameterError, match="always-available"):
            AsyncQueryServer(bare)

    def test_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            make_server(max_concurrent=0)
        with pytest.raises(InvalidParameterError):
            make_server(max_waiting=-1)
        with pytest.raises(InvalidParameterError):
            make_server(max_wait=-0.1)
        with pytest.raises(InvalidParameterError):
            make_server(hedge_after=0.0)
        with pytest.raises(InvalidParameterError):
            make_server(bulkhead_wait=-1.0)

    def test_admission_queue_full_sheds(self):
        # One slot, no waiting room: while a stalled query holds the
        # slot, the next arrival is shed with a sound stats answer.
        release = threading.Event()

        class StallingEstimator(TextStatsEstimator):
            def count(self, pattern):
                release.wait(5.0)
                return super().count(pattern)

        service = ResilientEstimator(
            [
                Tier(StallingEstimator(TEXT), "slow"),
                Tier(TextStatsEstimator(TEXT), "stats", always_available=True),
            ],
            deadline_seconds=10.0,
        )

        async def scenario():
            server = AsyncQueryServer(
                service, max_concurrent=1, max_waiting=0
            )
            blocked = asyncio.ensure_future(server.query("abra"))
            while not server._inflight:
                await asyncio.sleep(0.005)
            shed = await server.query("abra")
            assert isinstance(shed, ShedOutcome)
            assert shed.reason == "admission queue full"
            release.set()
            first = await blocked
            assert isinstance(first, QueryOutcome)
            await server.close()

        try:
            run(scenario())
        finally:
            release.set()

    def test_bulkhead_saturation_degrades_not_blocks(self):
        async def scenario():
            async with make_server(bulkhead_limits={"cpst": 1}) as server:
                cpst = server.service.tiers[0]
                assert await server._bulkhead.acquire(cpst)
                try:
                    outcome = await server.query("abra")
                finally:
                    server._bulkhead.release(cpst)
                assert isinstance(outcome, QueryOutcome)
                assert outcome.tier != "cpst"
                assert (
                    "cpst",
                    "skipped: bulkhead saturated",
                ) in outcome.failures

        run(scenario())

    def test_hedged_mode_returns_valid_answers(self):
        async def scenario():
            async with make_server(hedge_after=0.2) as server:
                for pattern in ("abra", "quick", "zzz_absent"):
                    outcome = await server.query(pattern)
                    assert isinstance(outcome, QueryOutcome)
                    assert outcome.contract_holds(
                        TEXT.count_naive(pattern), len(TEXT)
                    )

        run(scenario())

    def test_hedge_fires_when_primary_stalls(self):
        release = threading.Event()

        class StallingEstimator(TextStatsEstimator):
            def count(self, pattern):
                release.wait(5.0)
                return super().count(pattern)

        service = ResilientEstimator(
            [
                Tier(StallingEstimator(TEXT), "slow"),
                Tier(TextStatsEstimator(TEXT), "stats", always_available=True),
            ],
            deadline_seconds=10.0,
        )

        async def scenario():
            async with AsyncQueryServer(service, hedge_after=0.05) as server:
                outcome = await server.query("abra")
                assert outcome.tier == "stats"
                assert outcome.hedged
                assert server.stats().hedges_fired >= 1
            release.set()

        try:
            run(scenario())
        finally:
            release.set()

    def test_query_many_concurrent(self):
        async def scenario():
            async with make_server(max_concurrent=4, max_waiting=64,
                                   max_wait=2.0) as server:
                patterns = ["abra", "quick", "fox", "zzz", "the_"] * 4
                outcomes = await server.query_many(patterns)
                assert len(outcomes) == len(patterns)
                for pattern, outcome in zip(patterns, outcomes):
                    assert outcome.pattern == pattern
                    assert outcome.contract_holds(
                        TEXT.count_naive(pattern), len(TEXT)
                    )

        run(scenario())

    def test_drain_waits_for_inflight(self):
        release = threading.Event()

        class StallingEstimator(TextStatsEstimator):
            def count(self, pattern):
                release.wait(5.0)
                return super().count(pattern)

        service = ResilientEstimator(
            [
                Tier(StallingEstimator(TEXT), "slow", always_available=True),
            ],
            deadline_seconds=10.0,
        )

        async def scenario():
            server = AsyncQueryServer(service, max_concurrent=2)
            inflight = asyncio.ensure_future(server.query("abra"))
            while not server._inflight:
                await asyncio.sleep(0.005)
            assert not await server.drain(timeout=0.05)
            release.set()
            assert await server.drain(timeout=5.0)
            outcome = await inflight
            assert isinstance(outcome, QueryOutcome)
            await server.close()

        try:
            run(scenario())
        finally:
            release.set()


class TestAsyncProbe:
    def test_probe_loses_nothing(self):
        server = make_server(max_concurrent=4, max_waiting=64, max_wait=2.0)
        patterns = ["abra", "quick", "fox", "zzz", "the_"] * 8
        report = run_async_probe(server, patterns, concurrency=8)
        assert report.total == len(patterns)
        assert report.answered == len(patterns)
        from collections import Counter

        sent = Counter(patterns)
        got = Counter(outcome.pattern for outcome in report.outcomes)
        assert got == sent

    def test_probe_generates_workload_from_text(self):
        server = make_server()
        report = run_async_probe(server, text=TEXT, seed=1, concurrency=4)
        assert report.total > 0
        assert report.ok
        assert "serve-check PASS" in report.format()

"""Unit and ladder-integration tests for the frequency-aware hot tier.

The hot tier (:mod:`repro.hot`) is a cache with a *contract*: whatever it
serves is either a ladder-verified exact count from the current epoch, or
an ``UPPER_BOUND`` interval that contains the truth. These tests pin that
contract at every layer — fingerprints, count–min sketch, Space-Saving
table, store semantics (promotion, staleness, epoch demotion), the ladder
rung, and the serving integrations (feedback loop, shed upgrade, sharded
fan-out short-circuit, live-corpus invalidation).
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.interface import ErrorModel
from repro.errors import IndexCorruptedError
from repro.hot import (
    MOD,
    CountMinSketch,
    HotPatternTier,
    HotTierRung,
    RollingKarpRabin,
    SpaceSavingTable,
    with_hot_tier,
)
from repro.service import QueryServer, build_default_ladder
from repro.service.tiers import TierDeclined
from repro.shard import ShardPlan, build_sharded
from repro.textutil import Text

TEXT = Text("abracadabra_the_quick_brown_fox_" * 30)


# ---------------------------------------------------------------------------
# fingerprints


class TestRollingKarpRabin:
    def test_windows_match_scalar_fingerprint(self):
        kr = RollingKarpRabin()
        body = "abracadabra banana"
        codes = kr.encode(body)
        for length in (1, 2, 3, 5, 8):
            fps = kr.window_fingerprints(codes, length)
            assert fps.shape[0] == len(body) - length + 1
            for i in range(fps.shape[0]):
                assert int(fps[i]) == kr.fingerprint(body[i : i + length])

    def test_extend_chain_equals_direct(self):
        kr = RollingKarpRabin()
        codes = kr.encode("mississippi")
        fps = None
        for length in range(6):
            fps = kr.extend(fps, codes, length)
            direct = kr.window_fingerprints(codes, length + 1)
            assert np.array_equal(fps, direct)

    def test_fingerprints_stay_below_modulus(self):
        kr = RollingKarpRabin()
        codes = kr.encode("z" * 64 + "é世")
        fps = kr.window_fingerprints(codes, 7)
        assert int(fps.max()) < MOD

    def test_rejects_oversized_base(self):
        with pytest.raises(ValueError):
            RollingKarpRabin(base=1 << 21)


# ---------------------------------------------------------------------------
# count–min sketch


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=4, seed=7)
        rng = random.Random(3)
        truth = {}
        for _ in range(500):
            fp = rng.randrange(1 << 30)
            truth[fp] = truth.get(fp, 0) + 1
            sketch.add(fp)
        for fp, count in truth.items():
            assert sketch.estimate(fp) >= count

    def test_add_many_matches_scalar_adds(self):
        a = CountMinSketch(width=128, depth=3, seed=1)
        b = CountMinSketch(width=128, depth=3, seed=1)
        fps = np.array([5, 5, 9, 123456, 5, 9], dtype=np.uint64)
        a.add_many(fps)
        for fp in fps:
            b.add(int(fp))
        for fp in (5, 9, 123456, 777):
            assert a.estimate(fp) == b.estimate(fp)
        assert a.total == b.total == len(fps)

    def test_clone_empty_shares_geometry_not_counts(self):
        sketch = CountMinSketch(width=32, depth=2, seed=9)
        sketch.add(42)
        clone = sketch.clone_empty()
        assert clone.estimate(42) == 0
        assert sketch.estimate(42) >= 1
        clone.add(42)
        assert clone.estimate(42) == sketch.estimate(42)

    def test_space_bits_scale_with_geometry(self):
        small = CountMinSketch(width=32, depth=2).space_bits()
        big = CountMinSketch(width=64, depth=4).space_bits()
        assert 0 < small < big


# ---------------------------------------------------------------------------
# space-saving table


class TestSpaceSavingTable:
    def test_fills_then_evicts_minimum(self):
        table = SpaceSavingTable(2)
        a = table.admit("aa", 1)
        b = table.admit("bb", 1)
        assert a is not None and b is not None
        for _ in range(5):
            table.hit("aa")
        # Full table: a newcomer must beat the minimum to get in.
        assert table.admit("cc", 1) is None
        entry = table.admit("cc", table.min_hits() + 3)
        assert entry is not None
        assert "bb" not in table
        # Space-Saving inheritance: hits = victim + 1, overestimate = victim.
        assert entry.hits == b.hits + 1
        assert entry.overestimate == b.hits
        assert table.evictions == 1

    def test_would_admit_tracks_minimum(self):
        table = SpaceSavingTable(1)
        assert table.would_admit(1)
        table.admit("xx", 4)
        assert not table.would_admit(4)
        assert table.would_admit(5)

    def test_heavy_hitter_survives_a_zipf_stream(self):
        table = SpaceSavingTable(4)
        rng = random.Random(0)
        stream = ["hot"] * 200 + [f"cold{i}" for i in range(120)]
        rng.shuffle(stream)
        for pattern in stream:
            if table.hit(pattern) is None:
                table.admit(pattern, 1)
        assert "hot" in table
        entry = table.get("hot")
        # The estimate over-approximates but is bounded by the classic
        # overestimate invariant: hits - overestimate <= true arrivals.
        assert entry.hits >= 200
        assert entry.hits - entry.overestimate <= 200

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpaceSavingTable(0)


# ---------------------------------------------------------------------------
# the store


def _store(**kwargs) -> HotPatternTier:
    return HotPatternTier.from_text(TEXT.raw, **kwargs)


class TestHotPatternTier:
    def test_cold_pattern_misses(self):
        store = _store()
        assert store.lookup("abra") is None
        assert store.stats.misses == 1

    def test_exact_promotion_roundtrip(self):
        store = _store()
        truth = TEXT.count_naive("abra")
        store.observe_exact("abra", truth)
        ans = store.lookup("abra")
        assert ans is not None
        assert ans.model is ErrorModel.EXACT
        assert (ans.count, ans.lo, ans.hi) == (truth, truth, truth)
        assert store.stats.verifications == 1

    def test_warm_pattern_declines_once_for_promotion(self):
        store = _store()
        store.note_warm("abra")
        store.note_warm("abra")
        # Warm and admissible: decline so the ladder's answer reaches
        # observe().
        assert store.lookup("abra") is None
        misses = store.stats.misses
        store.observe_exact("abra", TEXT.count_naive("abra"))
        assert store.lookup("abra").model is ErrorModel.EXACT
        assert store.stats.misses == misses

    def test_unverifiable_pattern_falls_to_sketch(self):
        store = _store()
        truth = TEXT.count_naive("quick")
        # The ladder answered but could not certify (e.g. APX uniform):
        # after admission the sketch serves an upper bound instead of
        # declining forever.
        store.observe("quick", truth + 3, ErrorModel.UNIFORM)
        store.observe("quick", truth + 3, ErrorModel.UNIFORM)
        ans = store.lookup("quick")
        assert ans is not None
        assert ans.model is ErrorModel.UPPER_BOUND
        assert ans.lo == 0
        assert ans.hi >= truth
        assert store.stats.sketch_hits == 1

    def test_sketch_upper_bound_holds_for_every_window(self):
        body = "banana bandana cabana"
        store = HotPatternTier.from_text(body, warm_min=1, max_len=6)
        kr = store._kr
        for length in range(1, 7):
            for start in range(len(body) - length + 1):
                pattern = body[start : start + length]
                estimate = store._answers.estimate(kr.fingerprint(pattern))
                assert estimate >= body.count(pattern), pattern

    def test_append_widens_hi_and_contains_new_truth(self):
        store = _store()
        truth = TEXT.count_naive("abra")
        store.observe_exact("abra", truth)
        appended = "abracadabra"
        store.note_append(appended)
        ans = store.lookup("abra")
        assert ans.model is ErrorModel.UPPER_BOUND
        new_truth = truth + appended.count("abra")
        assert ans.lo <= new_truth <= ans.hi
        assert ans.lo == truth  # appends never remove occurrences
        assert store.stats.stale_hits == 1
        assert store.stats.demotions == 1

    def test_delete_widens_lo(self):
        store = _store()
        truth = TEXT.count_naive("abra")
        store.observe_exact("abra", truth)
        store.note_delete(10)
        ans = store.lookup("abra")
        assert ans.model is ErrorModel.UPPER_BOUND
        # A deleted document of length 10 removes at most 10 - 4 + 1
        # occurrences of a length-4 pattern.
        assert ans.lo == max(0, truth - 7)
        assert ans.hi == truth

    def test_epoch_bump_demotes_exact_to_point_interval(self):
        store = _store()
        truth = TEXT.count_naive("abra")
        store.observe_exact("abra", truth)
        store.bump_epoch()
        assert store.lookup_exact("abra") is None
        ans = store.lookup("abra")
        assert ans.model is ErrorModel.UPPER_BOUND
        assert (ans.lo, ans.hi) == (truth, truth)
        # Re-verification restores EXACT service.
        store.observe_exact("abra", truth)
        assert store.lookup("abra").model is ErrorModel.EXACT

    def test_stale_limit_drops_verification(self):
        store = _store(stale_limit=1)
        store.observe_exact("abra", TEXT.count_naive("abra"))
        store.note_append("xxxx")
        store.note_append("yyyy")
        ans = store.lookup("abra")
        # Too mutated to bound usefully: the verified count is gone and
        # the answer (if any) comes from the sketch.
        assert ans is None or ans.model is ErrorModel.UPPER_BOUND
        entry = next(iter(store._table.entries()), None)
        if entry is not None:
            assert entry.verified_count is None

    def test_length_only_append_adds_sketch_slack(self):
        store = HotPatternTier.from_text("banana", warm_min=1)
        store.observe("an", 2, ErrorModel.UNIFORM)
        store.observe("an", 2, ErrorModel.UNIFORM)
        base = store.lookup("an")
        assert base is not None and base.model is ErrorModel.UPPER_BOUND
        store.note_append(20)  # length only: the sketch can't ingest text
        widened = store.lookup("an")
        assert widened.hi == base.hi + (20 - 2 + 1)

    def test_lookup_exact_skips_fanout_only_when_current(self):
        store = _store()
        truth = TEXT.count_naive("abra")
        store.observe_exact("abra", truth)
        assert store.lookup_exact("abra") == truth
        assert store.stats.fanouts_skipped == 1
        store.bump_epoch()
        assert store.lookup_exact("abra") is None

    def test_rebuild_goes_dark_without_documents(self):
        store = _store(warm_min=1)
        store.observe_exact("abra", TEXT.count_naive("abra"))
        store.rebuild()
        # A zeroed sketch would answer 0 for occurring patterns; after a
        # blind rebuild the store must decline instead.
        store.note_warm("abra")
        store.note_warm("abra")
        store.observe("abra", 1, ErrorModel.UNIFORM)
        ans = store.lookup("abra")
        assert ans is None or ans.model is ErrorModel.EXACT

    def test_rebuild_with_documents_restores_the_sketch(self):
        store = _store()
        store.rebuild([("doc", "banana banana")])
        assert store.text_length == len("banana banana")
        store.observe("an", 2, ErrorModel.UNIFORM)
        store.observe("an", 2, ErrorModel.UNIFORM)
        ans = store.lookup("an")
        assert ans is not None
        assert ans.hi >= "banana banana".count("an")

    def test_space_report_names_every_component(self):
        report = _store().space_report()
        assert set(report.components) == {
            "topk_table", "freq_sketch", "answer_sketch",
        }
        assert report.total_bits > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HotPatternTier(max_len=0)
        with pytest.raises(ValueError):
            HotPatternTier(warm_min=0)
        with pytest.raises(ValueError):
            HotPatternTier(reverify_every=1)


# ---------------------------------------------------------------------------
# the ladder rung


class TestHotTierRung:
    def test_cold_pattern_declines(self):
        rung = HotTierRung(_store())
        with pytest.raises(TierDeclined):
            rung.answer("abra")

    def test_exact_answer_is_reliable(self):
        store = _store()
        truth = TEXT.count_naive("abra")
        store.observe_exact("abra", truth)
        rung = HotTierRung(store)
        count, model, threshold, reliable = rung.answer("abra")
        assert (count, model, threshold, reliable) == (
            truth, ErrorModel.EXACT, 1, True,
        )

    def test_infeasible_verified_count_is_caught(self):
        store = _store()
        store.observe_exact("abra", 10**9)
        rung = HotTierRung(store)
        with pytest.raises(IndexCorruptedError):
            rung.answer("abra")

    def test_sketch_answer_is_clamped_to_the_ceiling(self):
        store = HotPatternTier.from_text("aaaa", warm_min=1)
        store.note_warm("aa")
        store.note_warm("aa")
        store.observe("aa", 3, ErrorModel.UNIFORM)
        rung = HotTierRung(store)
        count, model, _, _ = rung.answer("aa")
        assert model is ErrorModel.UPPER_BOUND
        assert count <= len("aaaa") - 2 + 1

    def test_observe_rejects_unreliable_outcomes(self):
        store = _store()
        rung = HotTierRung(store)
        truth = TEXT.count_naive("abra")
        degraded = SimpleNamespace(
            count=truth, error_model=ErrorModel.EXACT, reliable=True,
            shards_degraded=("s1",), delta_pending=0,
        )
        rung.observe("abra", degraded)
        assert store.lookup_exact("abra") is None
        pending = SimpleNamespace(
            count=truth, error_model=ErrorModel.LOWER_SIDED, reliable=True,
            shards_degraded=(), delta_pending=3,
        )
        rung.observe("abra", pending)
        assert store.lookup_exact("abra") is None
        clean = SimpleNamespace(
            count=truth, error_model=ErrorModel.LOWER_SIDED, reliable=True,
            shards_degraded=(), delta_pending=0,
        )
        rung.observe("abra", clean)
        assert store.lookup_exact("abra") == truth

    def test_shed_lookup_never_raises_and_respects_quarantine(self):
        store = _store()
        truth = TEXT.count_naive("abra")
        store.observe_exact("abra", truth)
        rung = HotTierRung(store)
        assert rung.shed_lookup("abra") == (truth, ErrorModel.EXACT)
        assert rung.shed_lookup("never-seen-pattern") is None
        rung.quarantine("test")
        assert rung.shed_lookup("abra") is None


# ---------------------------------------------------------------------------
# ladder integration: the feedback loop end to end


class TestLadderFeedback:
    def test_repeated_queries_promote_and_serve_exact(self):
        service = build_default_ladder(TEXT, 4, hot=True)
        assert [tier.name for tier in service.tiers][0] == "hot"
        truth = TEXT.count_naive("abra")
        outcomes = [service.query("abra") for _ in range(6)]
        assert outcomes[-1].tier == "hot"
        assert outcomes[-1].error_model is ErrorModel.EXACT
        assert outcomes[-1].count == truth
        # Every outcome along the way was truthful.
        for outcome in outcomes:
            assert outcome.contract_holds(truth, len(TEXT))

    def test_prepend_tier_shares_underlying_tiers(self):
        service = build_default_ladder(TEXT, 4)
        layered, rung = with_hot_tier(service, _store())
        assert layered.tiers[0] is rung
        assert layered.tiers[1:] == service.tiers

    def test_prebuilt_store_is_used_verbatim(self):
        store = _store(capacity=3)
        service = build_default_ladder(TEXT, 4, hot=store)
        assert service.tiers[0].hot is store

    def test_shed_answers_upgrade_through_the_hot_store(self):
        service = build_default_ladder(TEXT, 4, hot=True)
        truth = TEXT.count_naive("abra")
        for _ in range(6):
            service.query("abra")
        server = QueryServer(service, rate=0.0001, burst=1)
        with server:
            outcomes = [server.query("abra") for _ in range(4)]
        shed = [o for o in outcomes if o.shed]
        assert shed, "the token bucket should have shed some queries"
        for outcome in shed:
            assert outcome.upgraded
            assert outcome.tier == "hot"
            assert outcome.error_model is ErrorModel.EXACT
            assert outcome.count == truth
        assert service.tiers[0].hot_stats.shed_upgrades >= len(shed)


# ---------------------------------------------------------------------------
# sharded fan-out short-circuit


class TestShardedShortCircuit:
    @pytest.fixture(scope="class")
    def setup(self):
        docs = [
            ("d0", "abracadabra banana " * 8),
            ("d1", "cabana bandana abra " * 8),
            ("d2", "the quick brown abra " * 8),
        ]
        plan = ShardPlan.for_documents(docs, 2)
        estimator, _ = build_sharded(plan, "cpst", l=4)
        store = HotPatternTier.from_documents(docs)
        estimator.attach_hot(store)
        truth = sum(body.count("abra") for _, body in docs)
        return estimator, store, truth

    def test_exact_merge_feeds_back_then_skips_the_fanout(self, setup):
        estimator, store, truth = setup
        first = estimator.merged_count("abra")
        assert first.exact and first.count == truth
        skipped_before = store.stats.fanouts_skipped
        second = estimator.merged_count("abra")
        assert store.stats.fanouts_skipped == skipped_before + 1
        assert second.exact and second.count == truth
        assert [a.shard for a in second.answers] == ["hot"]

    def test_epoch_bump_restores_the_full_fanout(self, setup):
        estimator, store, truth = setup
        estimator.merged_count("abra")
        store.bump_epoch()
        skipped_before = store.stats.fanouts_skipped
        answer = estimator.merged_count("abra")
        assert store.stats.fanouts_skipped == skipped_before
        assert len(answer.answers) > 1
        assert answer.count == truth


# ---------------------------------------------------------------------------
# live-corpus invalidation wiring


class TestLiveCorpusWiring:
    def test_mutations_and_commits_bump_the_hot_epoch(self, tmp_path):
        from repro.live import LiveCorpus

        corpus = LiveCorpus.create(tmp_path / "corpus", l=4)
        try:
            corpus.append("base", "abracadabra " * 6)
            store = HotPatternTier.from_documents(
                corpus.documents().items()
            )
            corpus.attach_hot(store)
            truth = corpus.count("abra")
            store.observe_exact("abra", truth)
            epoch = store.epoch
            corpus.append("extra", "abra lives here")
            assert store.epoch > epoch
            ans = store.lookup("abra")
            new_truth = corpus.count("abra")
            assert ans.model is ErrorModel.UPPER_BOUND
            assert ans.lo <= new_truth <= ans.hi
            epoch = store.epoch
            corpus.compact()
            assert store.epoch > epoch
            corpus.delete("extra")
            final = store.lookup("abra")
            if final is not None:
                assert final.lo <= corpus.count("abra") <= final.hi
        finally:
            corpus.close()

"""Tests for the q-gram table baseline and the MOC/MOLC estimators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MOCEstimator, MOEstimator, MOLCEstimator, MOLEstimator, QGramIndex
from repro.core.cpst import CompactPrunedSuffixTree
from repro.errors import InvalidParameterError, PatternError
from repro.textutil import Text


class TestQGramIndex:
    @pytest.fixture(scope="class")
    def index(self):
        return QGramIndex(Text("abracadabra" * 5), q=3)

    def test_exact_short_patterns(self, index):
        t = Text("abracadabra" * 5)
        for pattern in ("a", "ab", "bra", "cad", "xyz", "aaa"):
            assert index.count_or_none(pattern) == t.count_naive(pattern), pattern

    def test_long_patterns_unknown(self, index):
        assert index.count_or_none("abra") is None
        assert index.count("abra") == 0
        assert not index.is_reliable("abra")
        assert index.is_reliable("bra")

    def test_absent_character_short_is_exact_zero(self, index):
        assert index.count_or_none("z") == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            QGramIndex("abc", q=0)
        with pytest.raises(PatternError):
            QGramIndex("abc", q=2).count("")

    def test_space_grows_with_q(self):
        text = "the quick brown fox jumps " * 20
        sizes = [QGramIndex(text, q).space_report().payload_bits for q in (1, 2, 4)]
        assert sizes == sorted(sizes)

    def test_space_report_components(self):
        report = QGramIndex("banana", q=2).space_report()
        assert set(report.components) == {"1-grams", "2-grams"}

    def test_as_estimator_backend(self):
        # The classical pipeline: q-gram table + MO estimation.
        t = Text("the cat sat on the mat " * 30)
        estimator = MOEstimator(QGramIndex(t, q=4))
        assert estimator.estimate("the") == t.count_naive("the")
        value = estimator.estimate("the cat")
        assert 0.0 <= value <= len(t)


class TestConstrainedEstimators:
    @pytest.fixture(scope="class")
    def setup(self):
        words = ["lattice", "overlap", "estimate", "pattern", "suffix", "prune"]
        text = Text(" ".join(words[i % len(words)] for i in range(300)))
        return text, CompactPrunedSuffixTree(text, 16)

    def test_known_patterns_exact(self, setup):
        text, index = setup
        for cls in (MOCEstimator, MOLCEstimator):
            estimator = cls(index)
            assert estimator.estimate("lattice") == text.count_naive("lattice")

    def test_never_above_unconstrained(self, setup):
        text, index = setup
        moc, mo = MOCEstimator(index), MOEstimator(index)
        molc, mol = MOLCEstimator(index), MOLEstimator(index)
        patterns = ["lattice overlap", "prune suffix pat", "estimate pattern pr"]
        for pattern in patterns:
            assert moc.estimate(pattern) <= mo.estimate(pattern) + 1e-9
            assert molc.estimate(pattern) <= mol.estimate(pattern) + 1e-9

    def test_containment_constraint_enforced(self, setup):
        """The clamp: an estimate may not exceed the count of any certified
        substring of the pattern."""
        text, index = setup
        for cls in (MOCEstimator, MOLCEstimator):
            estimator = cls(index)
            for pattern in ("lattice overlap estimate", "suffix prune lattice"):
                estimate = estimator.estimate(pattern)
                for start in range(len(pattern)):
                    for end in range(start + 1, len(pattern) + 1):
                        certified = index.count_or_none(pattern[start:end])
                        if certified is not None:
                            assert estimate <= certified + 1e-6, (
                                pattern, pattern[start:end],
                            )

    def test_bounded(self, setup):
        text, index = setup
        for cls in (MOCEstimator, MOLCEstimator):
            value = cls(index).estimate("zzz qqq")
            assert 0.0 <= value <= len(text)


@settings(max_examples=25, deadline=None)
@given(st.text(alphabet="abc", min_size=1, max_size=10))
def test_property_constrained_le_unconstrained(pattern):
    text = Text("abcabcbacbab" * 20)
    index = CompactPrunedSuffixTree(text, 8)
    assert MOLCEstimator(index).estimate(pattern) <= (
        MOLEstimator(index).estimate(pattern) + 1e-9
    )

"""Daemon chaos suite: the flip-ordering and crash-only invariants.

Every fault here is injected deterministically (seeded specs, explicit
kill signals), and every assertion reduces to the three acceptance
claims of the daemon plane:

1. **No torn generation ever serves.** A crash at *any* publish/flip
   boundary leaves the supervisor answering soundly for either the old
   or the new generation — never a mixture — and a supervisor restart
   (:meth:`Supervisor.open`) recovers the latest committed corpus state
   including the WAL tail.
2. **Queries concurrent with ingest→reload cycles are sound for the
   generation that admitted them**, checked differentially against the
   document snapshot recorded at each publish.
3. **A crash-looping worker converges**: capped backoff, then
   condemnation with degraded-but-sound answers — no respawn storm —
   and an operator revive restores exact service.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core.interface import ErrorModel
from repro.daemon import BackoffPolicy, Supervisor
from repro.errors import ReproError
from repro.live import LiveCorpus
from repro.service.deadline import Deadline
from repro.service.faults import (
    DAEMON_SITES,
    DaemonFaultInjector,
    DaemonFaultSpec,
    SimulatedCrashError,
)

from conftest import naive_count

pytestmark = [pytest.mark.chaos, pytest.mark.slow, pytest.mark.timeout(300)]

DOCS = {
    "alpha": "abracadabra stew",
    "beta": "banana bandana cabana",
    "gamma": "the quick brown fox jumps over the lazy dog",
}

PROBES = ("ab", "an", "the", "abracadabra", "zz-absent")


def _make_corpus(path, docs=DOCS, l=16, shards=2):
    corpus = LiveCorpus.attach(path, l=l, shards=shards)
    for name, body in docs.items():
        corpus.append(name, body)
    corpus.compact()
    return corpus


def _truth(docs, pattern):
    return sum(naive_count(body, pattern) for body in docs.values())


def _assert_sound(answer, docs, pattern):
    truth = _truth(docs, pattern)
    assert answer.lo <= truth <= answer.hi, (
        pattern, answer.lo, truth, answer.hi,
    )


def _supervisor(corpus, **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.05)
    kwargs.setdefault("heartbeat_timeout", 1.0)
    kwargs.setdefault("worker_timeout", 20.0)
    supervisor = Supervisor(corpus, owns_corpus=True, **kwargs)
    supervisor.start()
    return supervisor


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- claim 1: crash at every flip boundary ------------------------------------


CRASH_SITES = tuple(s for s in DAEMON_SITES if s != "heartbeat")


class TestCrashAtEveryFlipBoundary:
    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_crash_leaves_old_or_new_never_torn(self, tmp_path, site):
        corpus = _make_corpus(tmp_path / "c")
        supervisor = _supervisor(corpus)
        try:
            docs_before = dict(corpus.documents())
            old_number = supervisor.generation.number

            corpus.append("crashdoc", "text only the new generation has")
            docs_after = dict(corpus.documents())

            supervisor.arm_faults(
                DaemonFaultInjector([DaemonFaultSpec(site, at=1)])
            )
            with pytest.raises(SimulatedCrashError):
                supervisor.reload(compact=False)
            supervisor.arm_faults(None)

            # Whatever the crash point, admission is all-or-nothing: the
            # serving generation is exactly the old or the new one, and
            # every answer is sound for the snapshot that generation
            # froze (pre-activate crashes keep serving the old state).
            for pattern in PROBES:
                answer = supervisor.merged_count(pattern)
                if answer.generation == old_number:
                    _assert_sound(answer, docs_before, pattern)
                else:
                    assert answer.generation > old_number
                    _assert_sound(answer, docs_after, pattern)
            if site in ("publish_export", "publish_segments",
                        "flip_attach", "flip_activate"):
                assert supervisor.generation.number == old_number
        finally:
            supervisor.close()

        # Crash-only recovery: a fresh supervisor over the directory
        # serves the latest committed manifest plus the WAL tail — the
        # appended document is there even though no flip ever served it.
        recovered = Supervisor.open(tmp_path / "c")
        try:
            for pattern in PROBES + ("generation",):
                _assert_sound(
                    recovered.merged_count(pattern), docs_after, pattern
                )
            assert recovered.merged_count("only the new").hi >= 1
        finally:
            recovered.close()

    def test_restart_recovers_wal_tail_without_any_flip(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        supervisor = _supervisor(corpus)
        # Mutations land durably; the supervisor "dies" before any
        # reload serves them.
        corpus.append("tail", "wal tail survivor")
        corpus.delete("alpha")
        expected = dict(corpus.documents())
        supervisor.close()

        recovered = Supervisor.open(tmp_path / "c")
        try:
            assert recovered.merged_count("survivor").hi >= 1
            for pattern in PROBES:
                _assert_sound(
                    recovered.merged_count(pattern), expected, pattern
                )
        finally:
            recovered.close()


# -- claim 2: soundness under concurrent reload cycles ------------------------


class TestConcurrentReloadSoundness:
    CYCLES = 20

    def test_twenty_ingest_reload_cycles_under_query_fire(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        supervisor = _supervisor(corpus, drain_timeout=10.0)
        try:
            snapshots = {
                supervisor.generation.number: dict(corpus.documents())
            }
            snapshot_lock = threading.Lock()
            stop = threading.Event()
            recorded = []
            errors = []

            def hammer():
                i = 0
                while not stop.is_set():
                    pattern = PROBES[i % len(PROBES)]
                    i += 1
                    try:
                        answer = supervisor.merged_count(pattern)
                    except ReproError as exc:  # pragma: no cover
                        errors.append((pattern, repr(exc)))
                        continue
                    recorded.append(
                        (pattern, answer.generation, answer.lo, answer.hi)
                    )

            threads = [
                threading.Thread(target=hammer) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                for cycle in range(self.CYCLES):
                    corpus.append(
                        f"cycle{cycle}", f"cycle body number {cycle} xyz"
                    )
                    if cycle % 7 == 3:
                        corpus.delete(f"cycle{cycle - 1}")
                    generation = supervisor.reload(
                        compact=(cycle % 5 == 4)
                    )
                    with snapshot_lock:
                        snapshots[generation.number] = dict(
                            corpus.documents()
                        )
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)

            assert not errors, errors[:5]
            assert recorded, "query threads never got an answer in"
            # The fire was genuinely concurrent with the flips: answers
            # span several distinct generations.
            generations_seen = {generation for _, generation, _, _ in recorded}
            assert len(generations_seen) >= 3
            # Every answer is sound for the snapshot of the generation
            # that admitted it — the differential core of the claim.
            for pattern, generation, lo, hi in recorded:
                docs = snapshots[generation]
                truth = _truth(docs, pattern)
                assert lo <= truth <= hi, (
                    pattern, generation, lo, truth, hi,
                )
            # Nothing stale is still held: the last generation retired
            # every predecessor once its in-flight queries finished.
            assert _wait_until(
                lambda: supervisor.status()["generations_held"]
                == [supervisor.generation.number]
            )
        finally:
            supervisor.close()


# -- claim 3: worker failures converge ----------------------------------------


class TestWorkerFailureConvergence:
    def test_sigkill_degrades_soundly_then_monitor_respawns(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        supervisor = _supervisor(
            corpus,
            backoff=BackoffPolicy(
                base=0.02, cap=0.1, max_failures=10, window=30.0
            ),
        )
        try:
            docs = dict(corpus.documents())
            exact = supervisor.merged_count("ab")
            assert not exact.degraded

            os.kill(supervisor.worker_pid(0), signal.SIGKILL)
            # The dead worker's segment degrades to its sound ceiling;
            # the answer stays an upper bound, never an under-count.
            def degraded_answer():
                answer = supervisor.merged_count("ab")
                return answer if answer.degraded else None

            assert _wait_until(lambda: degraded_answer() is not None)
            answer = supervisor.merged_count("ab")
            if answer.degraded:
                assert answer.error_model is ErrorModel.UPPER_BOUND
                _assert_sound(answer, docs, "ab")
                assert answer.hi >= exact.hi

            # The monitor respawns it against the same shared segments:
            # exact parity returns with no operator involvement.
            assert _wait_until(
                lambda: not supervisor.merged_count("ab").degraded
            )
            restored = supervisor.merged_count("ab")
            assert (restored.lo, restored.hi) == (exact.lo, exact.hi)
            assert supervisor.stats["respawns"] >= 1
        finally:
            supervisor.close()

    def test_sigstop_wedge_is_detected_and_replaced(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        supervisor = _supervisor(
            corpus,
            heartbeat_timeout=0.5,
            backoff=BackoffPolicy(
                base=0.02, cap=0.1, max_failures=10, window=30.0
            ),
        )
        try:
            docs = dict(corpus.documents())
            wedged_pid = supervisor.worker_pid(0)
            os.kill(wedged_pid, signal.SIGSTOP)
            try:
                # A deadline-bounded query during the wedge still
                # answers — degraded, but sound.
                answer = supervisor.merged_count("an", Deadline(1.0))
                _assert_sound(answer, docs, "an")
                # Heartbeats time out against the stopped process; the
                # monitor must replace it (SIGKILL path: terminate is
                # not deliverable to a stopped process group member).
                assert _wait_until(
                    lambda: supervisor.worker_pid(0) not in (None, wedged_pid)
                    and not supervisor.merged_count("an").degraded,
                    timeout=30.0,
                )
            finally:
                try:  # unwedge whatever is left, if anything
                    os.kill(wedged_pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            restored = supervisor.merged_count("an")
            assert not restored.degraded
            assert restored.hi == corpus.count_interval("an")[1]
        finally:
            supervisor.close()

    def test_crash_loop_condemns_within_budget_then_revives(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        budget = BackoffPolicy(
            base=0.01, cap=0.05, max_failures=3, window=8.0
        )
        supervisor = _supervisor(corpus, backoff=budget)
        try:
            docs = dict(corpus.documents())
            exact = supervisor.merged_count("ab")

            kills = 0
            deadline = time.monotonic() + 30.0
            last_pid = None
            while time.monotonic() < deadline:
                state = supervisor.worker_states()[0]
                if state["condemned"]:
                    break
                pid = state["pid"]
                if (
                    pid is not None
                    and pid != last_pid
                    and state["alive"]
                ):
                    os.kill(pid, signal.SIGKILL)
                    last_pid = pid
                    kills += 1
                time.sleep(0.02)
            state = supervisor.worker_states()[0]
            assert state["condemned"], state
            # Convergence, not a respawn storm: the budget bounds the
            # number of lifetimes the crash loop could consume.
            assert kills <= budget.max_failures + 2
            assert "condemned" in state["reason"]

            # Condemned != unavailable: answers continue, degraded and
            # sound, from the surviving workers + the dead slot's ceiling.
            answer = supervisor.merged_count("ab")
            assert answer.degraded
            assert answer.error_model is ErrorModel.UPPER_BOUND
            _assert_sound(answer, docs, "ab")

            # Operator override: revive clears the history and restores
            # exact service (the monitor must not re-kill the revived
            # worker off its stale pre-revive snapshot).
            supervisor.revive_worker(0)
            assert _wait_until(
                lambda: not supervisor.merged_count("ab").degraded,
                timeout=10.0,
            )
            restored = supervisor.merged_count("ab")
            assert (restored.lo, restored.hi) == (exact.lo, exact.hi)
        finally:
            supervisor.close()

    def test_heartbeat_loss_takes_the_restart_path(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        supervisor = _supervisor(corpus)
        try:
            baseline = supervisor.stats["respawns"]
            supervisor.arm_faults(
                DaemonFaultInjector(
                    [DaemonFaultSpec("heartbeat", at=2, mode="drop")]
                )
            )
            # A lost heartbeat from a healthy worker must be treated as
            # a failure: quarantine, then respawn — and service never
            # returns an unsound answer meanwhile.
            assert _wait_until(
                lambda: supervisor.stats["heartbeat_failures"] >= 1
            )
            assert _wait_until(
                lambda: supervisor.stats["respawns"] > baseline
            )
            supervisor.arm_faults(None)
            docs = dict(corpus.documents())
            for pattern in PROBES:
                _assert_sound(
                    supervisor.merged_count(pattern), docs, pattern
                )
            assert _wait_until(
                lambda: not supervisor.merged_count("ab").degraded
            )
        finally:
            supervisor.close()

"""Unit and property tests for the bit-packed IntVector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import IntVector, bits_needed
from repro.errors import InvalidParameterError


class TestBitsNeeded:
    def test_zero_needs_one_bit(self):
        assert bits_needed(0) == 1

    def test_powers_of_two(self):
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(3) == 2
        assert bits_needed(4) == 3
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            bits_needed(-1)


class TestIntVectorBasics:
    def test_roundtrip_small(self):
        values = [5, 0, 7, 3, 1, 6, 2, 4]
        iv = IntVector.from_array(values, width=3)
        assert list(iv) == values
        assert len(iv) == 8
        assert iv.width == 3

    def test_width_inferred(self):
        iv = IntVector.from_array([0, 1, 1000])
        assert iv.width == 10
        assert iv[2] == 1000

    def test_empty(self):
        iv = IntVector.from_array([])
        assert len(iv) == 0
        assert iv.to_array().size == 0
        assert iv.size_in_bits() == 0

    def test_negative_index(self):
        iv = IntVector.from_array([10, 20, 30])
        assert iv[-1] == 30
        assert iv[-3] == 10

    def test_out_of_range_index(self):
        iv = IntVector.from_array([1, 2])
        with pytest.raises(IndexError):
            iv[2]
        with pytest.raises(IndexError):
            iv[-3]

    def test_slice_access(self):
        iv = IntVector.from_array(list(range(10)))
        assert iv[2:5] == [2, 3, 4]

    def test_value_too_wide_rejected(self):
        with pytest.raises(InvalidParameterError):
            IntVector.from_array([8], width=3)

    def test_negative_value_rejected(self):
        with pytest.raises(InvalidParameterError):
            IntVector.from_array([-1])

    def test_size_in_bits(self):
        iv = IntVector.from_array([1] * 100, width=7)
        assert iv.size_in_bits() == 700

    def test_straddling_word_boundary(self):
        # Width 13 guarantees many elements straddle 64-bit word boundaries.
        values = [(i * 2654435761) % (1 << 13) for i in range(200)]
        iv = IntVector.from_array(values, width=13)
        assert list(iv) == values

    def test_width_62(self):
        values = [0, (1 << 62) - 1, 1234567890123456789]
        iv = IntVector.from_array(values, width=62)
        assert [iv[i] for i in range(3)] == values

    def test_equality(self):
        a = IntVector.from_array([1, 2, 3], width=5)
        b = IntVector.from_array([1, 2, 3], width=5)
        c = IntVector.from_array([1, 2, 4], width=5)
        assert a == b
        assert a != c


class TestIntVectorVectorised:
    def test_get_many_matches_scalar(self, rng):
        values = rng.integers(0, 1 << 17, size=500)
        iv = IntVector.from_array(values, width=17)
        idx = rng.integers(0, 500, size=200)
        np.testing.assert_array_equal(iv.get_many(idx), values[idx])

    def test_get_many_out_of_range(self):
        iv = IntVector.from_array([1, 2, 3])
        with pytest.raises(IndexError):
            iv.get_many(np.array([3]))

    def test_to_array_roundtrip(self, rng):
        values = rng.integers(0, 1 << 11, size=1000)
        iv = IntVector.from_array(values, width=11)
        np.testing.assert_array_equal(iv.to_array(), values)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), max_size=300),
    st.integers(min_value=20, max_value=40),
)
def test_property_roundtrip_any_width(values, width):
    iv = IntVector.from_array(values, width=width)
    assert list(iv) == values
    assert iv.size_in_bits() == len(values) * width

"""Differential suite: every index vs the exact FM ground truth, on every
synthetic corpus, with mixed (in-text / random / adversarial) workloads.

This is the end-to-end safety net: if any structure, on any corpus shape,
ever violates its error model, this module fails.
"""

from __future__ import annotations

import pytest

from repro import (
    ApproxIndex,
    ApproxIndexEF,
    CombinedIndex,
    CompactPrunedSuffixTree,
    FMIndex,
    PrunedPatriciaTrie,
    PrunedSuffixTree,
    QGramIndex,
)
from repro.datasets import dataset_names, generate
from repro.textutil import Text, mixed_workload

SIZE = 4_000
THRESHOLD = 16


@pytest.fixture(scope="module", params=dataset_names())
def corpus(request):
    text = Text(generate(request.param, SIZE, seed=1))
    fm = FMIndex(text)
    workload = mixed_workload(text, lengths=(1, 2, 4, 8, 16), per_length=12, seed=2)
    truths = {pattern: fm.count(pattern) for pattern in workload}
    return request.param, text, workload, truths


def test_fm_matches_naive_scan(corpus):
    name, text, workload, truths = corpus
    for pattern in workload[:40]:
        assert truths[pattern] == text.count_naive(pattern), (name, pattern)


def test_apx_uniform_bound(corpus):
    name, text, workload, truths = corpus
    apx = ApproxIndex(text, THRESHOLD)
    for pattern in workload:
        true = truths[pattern]
        est = apx.count(pattern)
        assert true <= est <= true + THRESHOLD - 1, (name, pattern, true, est)


def test_apx_ef_identical_to_apx(corpus):
    name, text, workload, _ = corpus
    paper = ApproxIndex(text, THRESHOLD)
    naive = ApproxIndexEF(text, THRESHOLD)
    for pattern in workload:
        assert paper.count_range(pattern) == naive.count_range(pattern), (
            name, pattern,
        )


def test_cpst_and_pst_lower_sided(corpus):
    name, text, workload, truths = corpus
    cpst = CompactPrunedSuffixTree(text, THRESHOLD)
    pst = PrunedSuffixTree(text, THRESHOLD)
    for pattern in workload:
        true = truths[pattern]
        for index_name, index in (("cpst", cpst), ("pst", pst)):
            got = index.count_or_none(pattern)
            if true >= THRESHOLD:
                assert got == true, (name, index_name, pattern, true, got)
            else:
                assert got is None, (name, index_name, pattern, true, got)


def test_combined_contract(corpus):
    name, text, workload, truths = corpus
    combined = CombinedIndex(text, THRESHOLD)
    for pattern in workload:
        true = truths[pattern]
        estimate, exact = combined.count_with_certainty(pattern)
        if true >= THRESHOLD:
            assert exact and estimate == true, (name, pattern)
        else:
            assert true <= estimate <= THRESHOLD - 1, (name, pattern, true, estimate)


def test_patricia_conditional_bound(corpus):
    name, text, workload, truths = corpus
    trie = PrunedPatriciaTrie(text, THRESHOLD)
    for pattern in workload:
        true = truths[pattern]
        if true >= THRESHOLD // 2:
            est = trie.count(pattern)
            assert abs(est - true) < THRESHOLD, (name, pattern, true, est)


def test_qgram_exact_short(corpus):
    name, text, workload, truths = corpus
    q = 4
    table = QGramIndex(text, q)
    for pattern in workload:
        if len(pattern) <= q:
            assert table.count_or_none(pattern) == truths[pattern], (name, pattern)
        else:
            assert table.count_or_none(pattern) is None

"""Tests for indexed document collections."""

from __future__ import annotations

import pytest

from repro.collections import DocumentCollection, Occurrence
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def library():
    documents = {
        "fruit": "banana apple banana cherry",
        "veg": "carrot potato carrot",
        "mixed": "banana carrot banana banana",
        "empty-ish": "x",
    }
    return documents, DocumentCollection(documents, estimate_threshold=2)


class TestConstruction:
    def test_requires_documents(self):
        with pytest.raises(InvalidParameterError):
            DocumentCollection({})

    def test_unique_names(self):
        with pytest.raises(InvalidParameterError):
            DocumentCollection([("a", "x"), ("a", "y")])

    def test_nonempty_documents(self):
        with pytest.raises(InvalidParameterError):
            DocumentCollection({"a": ""})

    def test_len_and_names(self, library):
        docs, coll = library
        assert len(coll) == 4
        assert coll.names == list(docs)

    def test_rejects_separator_in_document_body(self):
        # A body containing the separator would shift every later
        # document's offsets and make counts straddle document borders.
        from repro.textutil import ROW_SEPARATOR

        with pytest.raises(InvalidParameterError) as excinfo:
            DocumentCollection({"ok": "abc", "bad": f"x{ROW_SEPARATOR}y"})
        assert "bad" in str(excinfo.value)
        assert "separator" in str(excinfo.value)


class TestShardPlanExport:
    def test_to_shard_plan_covers_every_document(self, library):
        docs, coll = library
        plan = coll.to_shard_plan(2)
        assert len(plan.shards) == 2
        assert sorted(plan.manifest) == sorted(docs)
        # per-document bodies survive the round trip
        for shard in plan.shards:
            for name in shard.documents:
                assert docs[name] in shard.text.raw

    def test_to_shard_plan_counts_match_collection(self, library):
        docs, coll = library
        from repro.shard import build_sharded

        sharded, _ = build_sharded(coll.to_shard_plan(2), "fm", 2)
        for pattern in ("banana", "carrot", "an", "zzz"):
            assert sharded.count(pattern) == coll.count(pattern)


class TestCounting:
    def test_total_counts(self, library):
        docs, coll = library
        for pattern in ("banana", "carrot", "an", "zzz"):
            expected = sum(
                body.count(pattern) + _extra_overlaps(body, pattern)
                for body in docs.values()
            )
            assert coll.count(pattern) == _true_total(docs, pattern), pattern

    def test_count_never_straddles_documents(self, library):
        _, coll = library
        # 'cherrycarrot' spans fruit->veg in concatenation order.
        assert coll.count("cherrycarrot") == 0

    def test_count_in_document(self, library):
        docs, coll = library
        assert coll.count_in_document("banana", "fruit") == 2
        assert coll.count_in_document("banana", "mixed") == 3
        assert coll.count_in_document("banana", "veg") == 0

    def test_count_in_unknown_document(self, library):
        _, coll = library
        with pytest.raises(InvalidParameterError):
            coll.count_in_document("x", "nope")

    def test_estimated_tier(self, library):
        _, coll = library
        assert coll.count_estimated("banana") == 5
        assert coll.count_estimated("cherry") is None  # occurs once < 2

    def test_estimated_tier_absent(self):
        coll = DocumentCollection({"a": "xyz"})
        assert coll.count_estimated("x") is None


class TestLocation:
    def test_occurrences_have_correct_offsets(self, library):
        docs, coll = library
        for occ in coll.occurrences("banana"):
            body = docs[occ.document]
            assert body[occ.offset : occ.offset + 6] == "banana"

    def test_documents_containing(self, library):
        _, coll = library
        assert coll.documents_containing("banana") == ["fruit", "mixed"]
        assert coll.documents_containing("carrot") == ["veg", "mixed"]
        assert coll.documents_containing("zzz") == []

    def test_top_documents(self, library):
        _, coll = library
        assert coll.top_documents("banana", k=1) == [("mixed", 3)]
        assert coll.top_documents("banana", k=5) == [("mixed", 3), ("fruit", 2)]

    def test_top_documents_validation(self, library):
        _, coll = library
        with pytest.raises(InvalidParameterError):
            coll.top_documents("banana", k=0)

    def test_snippet(self, library):
        docs, coll = library
        occ = coll.occurrences("cherry")[0]
        snippet = coll.snippet(occ, context=7)
        assert "cherry" in snippet
        assert snippet in docs["fruit"]

    def test_document_of_rejects_separator_positions(self, library):
        _, coll = library
        with pytest.raises(InvalidParameterError):
            coll.document_of(0)  # leading separator


class TestSpace:
    def test_report_includes_both_tiers(self, library):
        _, coll = library
        report = coll.space_report()
        assert any(key.startswith("fm.") for key in report.components)
        assert any(key.startswith("cpst.") for key in report.components)


def _extra_overlaps(body: str, pattern: str) -> int:
    # str.count is non-overlapping; compute the difference to true count.
    return _true_count(body, pattern) - body.count(pattern)


def _true_count(body: str, pattern: str) -> int:
    count = 0
    start = body.find(pattern)
    while start >= 0:
        count += 1
        start = body.find(pattern, start + 1)
    return count


def _true_total(docs, pattern: str) -> int:
    return sum(_true_count(body, pattern) for body in docs.values())


class TestMutableOverlay:
    """append/delete/compact on a built collection stay exact."""

    DOCS = {
        "fruit": "banana apple banana cherry",
        "veg": "carrot potato carrot",
        "mixed": "banana carrot banana banana",
    }

    def fresh(self):
        return dict(self.DOCS), DocumentCollection(
            self.DOCS, estimate_threshold=2
        )

    def test_append_counts_immediately_and_exactly(self):
        docs, coll = self.fresh()
        coll.append("new", "banana boat bananas")
        docs["new"] = "banana boat bananas"
        assert len(coll) == 4
        assert coll.names[-1] == "new"
        assert coll.count("banana") == _true_total(docs, "banana")
        assert coll.count_in_document("banana", "new") == 2
        assert "new" in coll.documents_containing("banana")
        occ = [o for o in coll.occurrences("boat") if o.document == "new"]
        assert occ and "boat" in coll.snippet(occ[0], context=8)

    def test_append_validation(self):
        _, coll = self.fresh()
        with pytest.raises(InvalidParameterError):
            coll.append("fruit", "dup")  # live name already exists
        with pytest.raises(InvalidParameterError):
            coll.append("x", "")
        from repro.textutil import ROW_SEPARATOR

        with pytest.raises(InvalidParameterError):
            coll.append("x", f"a{ROW_SEPARATOR}b")

    def test_delete_of_uncompacted_doc_is_exact(self):
        docs, coll = self.fresh()
        coll.append("new", "kiwi kiwi")
        coll.delete("new")
        assert len(coll) == 3
        assert coll.count("kiwi") == 0
        # No tombstones: the estimated tier is still available.
        assert coll.count_estimated("banana") == _true_total(docs, "banana")

    def test_tombstone_keeps_counts_exact(self):
        docs, coll = self.fresh()
        coll.delete("mixed")
        del docs["mixed"]
        assert len(coll) == 2
        assert "mixed" not in coll.names
        for pattern in ("banana", "carrot", "apple"):
            assert coll.count(pattern) == _true_total(docs, pattern)
        assert all(
            o.document != "mixed" for o in coll.occurrences("banana")
        )
        assert "mixed" not in coll.documents_containing("banana")
        # The estimate tier cannot locate-filter: it declines.
        assert coll.count_estimated("banana") is None
        with pytest.raises(InvalidParameterError):
            coll.count_in_document("banana", "mixed")
        with pytest.raises(InvalidParameterError):
            coll.delete("mixed")  # no longer live

    def test_compact_folds_overlay_and_restores_tiers(self):
        docs, coll = self.fresh()
        coll.delete("veg")
        del docs["veg"]
        coll.append("new", "dragonfruit")
        docs["new"] = "dragonfruit"
        assert coll.pending == 2
        coll.compact()
        assert coll.pending == 0
        assert coll.names == list(docs)
        assert coll.get_documents() == docs
        for pattern in ("banana", "dragonfruit", "carrot"):
            assert coll.count(pattern) == _true_total(docs, pattern)
        assert coll.count_estimated("banana") == _true_total(docs, "banana")

    def test_space_report_shows_overlay(self):
        _, coll = self.fresh()
        coll.append("new", "dragonfruit")
        report = coll.space_report()
        assert report.components["delta.text"] == 8 * len("dragonfruit")
        assert "pending=1" in repr(coll)

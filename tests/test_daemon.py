"""Daemon control plane: generations, supervisor, control socket.

Chaos properties (crash injection at flip boundaries, SIGKILL fleets,
condemnation convergence, concurrent reload soundness) live in
``test_daemon_chaos.py``; this module covers the components and the
happy-path lifecycle: generation export/publish, supervised serving
parity with the in-process live corpus, hot reload, drain/resume, and
the ``ServingDaemon`` control socket + signal semantics.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time

import pytest

from repro.core.interface import ErrorModel
from repro.daemon import (
    DELTA_SEGMENT,
    BackoffPolicy,
    ControlServer,
    Generation,
    GenerationPublisher,
    SegmentRef,
    ServingDaemon,
    Supervisor,
    default_socket_path,
    send_control,
)
from repro.errors import (
    InvalidParameterError,
    PatternError,
    ReproError,
)
from repro.live import LiveCorpus
from repro.textutil import mixed_workload

from conftest import naive_count

pytestmark = [pytest.mark.slow, pytest.mark.timeout(180)]

DOCS = {
    "alpha": "abracadabra",
    "beta": "banana bandana",
    "gamma": "the quick brown fox jumps over the lazy dog",
    "delta": "mississippi",
}


def _make_corpus(path, docs=DOCS, l=16, shards=2, compact=True):
    corpus = LiveCorpus.attach(path, l=l, shards=shards)
    for name, body in docs.items():
        corpus.append(name, body)
    if compact:
        corpus.compact()
    return corpus


def _truth(corpus, pattern):
    """Per-document overlapping occurrences (patterns never cross the
    separator, so the corpus truth is the sum over live documents)."""
    return sum(
        naive_count(body, pattern) for body in corpus.documents().values()
    )


def _workload(corpus, seed=7):
    separator = corpus.config.separator
    bodies = list(corpus.documents().values())
    return [
        pattern
        for pattern in mixed_workload(
            separator.join(bodies), per_length=6, seed=seed
        )
        if separator not in pattern
    ]


@pytest.fixture(scope="module")
def sup(tmp_path_factory):
    corpus = _make_corpus(tmp_path_factory.mktemp("daemon") / "corpus")
    supervisor = Supervisor(
        corpus, owns_corpus=True, heartbeat_interval=0.1
    )
    supervisor.start()
    yield supervisor
    supervisor.close()


# -- backoff policy -----------------------------------------------------------


class TestBackoffPolicy:
    def test_delays_grow_exponentially_within_bounds(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, seed=3)
        for attempt in range(8):
            ceiling = min(1.0, 0.1 * 2**attempt)
            delay = policy.delay(attempt)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_jitter_varies_between_calls(self):
        policy = BackoffPolicy(base=1.0, cap=10.0, seed=1)
        delays = {policy.delay(0) for _ in range(16)}
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BackoffPolicy(base=-1)
        with pytest.raises(InvalidParameterError):
            BackoffPolicy(max_failures=0)
        with pytest.raises(InvalidParameterError):
            BackoffPolicy(window=0)


# -- generation record --------------------------------------------------------


def _ref(name="s0", threshold=8, text_length=100, model="lower_sided"):
    return SegmentRef(
        name=name,
        shm_name=f"shm-{name}",
        nbytes=1024,
        error_model=model,
        threshold=threshold,
        text_length=text_length,
        characters="ab",
    )


class TestGenerationRecord:
    def test_tombstone_widening_per_pattern_length(self):
        generation = Generation(
            number=3,
            corpus_generation=2,
            segments=(_ref(),),
            tombstones=(10, 4),
            documents=5,
        )
        # sum of max(0, m - |P| + 1) over tombstone lengths
        assert generation.widening(1) == 10 + 4
        assert generation.widening(5) == 6 + 0
        assert generation.widening(11) == 0
        with pytest.raises(InvalidParameterError):
            generation.widening(0)

    def test_threshold_adds_tombstone_mass(self):
        bare = Generation(1, 1, (_ref(threshold=8),), (), 3)
        widened = Generation(1, 1, (_ref(threshold=8),), (5, 5), 3)
        assert widened.threshold == bare.threshold + 10

    def test_segment_ceiling(self):
        ref = _ref(text_length=20)
        assert ref.ceiling(1) == 20
        assert ref.ceiling(5) == 16
        assert ref.ceiling(21) == 0
        assert ref.model is ErrorModel.LOWER_SIDED

    def test_as_dict_is_json_safe(self):
        generation = Generation(2, 1, (_ref(),), (3,), 4)
        payload = json.loads(json.dumps(generation.as_dict()))
        assert payload["number"] == 2
        assert payload["tombstones"] == 1
        assert payload["segments"][0]["name"] == "s0"


# -- publisher ----------------------------------------------------------------


class TestGenerationPublisher:
    def test_export_covers_shards_and_delta(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        try:
            corpus.append("epsilon", "fresh delta text")
            blobs, meta = GenerationPublisher(corpus).export()
            names = [name for name, _ in blobs]
            assert DELTA_SEGMENT in names
            assert len(names) == len(set(names))
            assert meta["corpus_generation"] == corpus.generation
            assert meta["documents"] == len(corpus.documents())
            assert meta["tombstones"] == ()
        finally:
            corpus.close()

    def test_export_carries_tombstone_lengths(self, tmp_path):
        corpus = _make_corpus(tmp_path / "c")
        try:
            corpus.delete("alpha")
            _, meta = GenerationPublisher(corpus).export()
            assert meta["tombstones"] == (len(DOCS["alpha"]),)
            assert meta["documents"] == len(DOCS) - 1
        finally:
            corpus.close()

    def test_publish_verified_segments(self, tmp_path):
        from repro.parallel.pool import attach_shared_segment

        corpus = _make_corpus(tmp_path / "c")
        try:
            generation, pool = GenerationPublisher(corpus).publish(7)
            try:
                assert generation.number == 7
                assert generation.corpus_generation == corpus.generation
                for ref in generation.segments:
                    shm, segment = attach_shared_segment(
                        ref.shm_name, verify=True
                    )
                    try:
                        assert segment.nbytes == ref.nbytes
                        header_meta = segment.header["meta"]
                        assert header_meta["threshold"] == ref.threshold
                    finally:
                        shm.close()
            finally:
                pool.close()
        finally:
            corpus.close()


# -- supervised serving -------------------------------------------------------


class TestSupervisedServing:
    def test_intervals_match_live_corpus_exactly(self, sup):
        for pattern in _workload(sup.corpus):
            assert sup.count_interval(pattern) == (
                sup.corpus.count_interval(pattern)
            ), pattern

    def test_intervals_bracket_ground_truth(self, sup):
        for pattern in _workload(sup.corpus, seed=11):
            answer = sup.merged_count(pattern)
            truth = _truth(sup.corpus, pattern)
            assert answer.lo <= truth <= answer.hi, pattern
            assert answer.count == answer.hi

    def test_batch_matches_singles_under_one_generation(self, sup):
        patterns = _workload(sup.corpus)[:8]
        batch = sup.merged_count_many(patterns)
        assert len({a.generation for a in batch}) == 1
        for pattern, merged in zip(patterns, batch):
            single = sup.merged_count(pattern)
            assert (merged.lo, merged.hi) == (single.lo, single.hi)

    def test_pattern_validation(self, sup):
        with pytest.raises(PatternError):
            sup.merged_count("")
        with pytest.raises(PatternError):
            sup.merged_count_many(["ab", ""])
        assert sup.merged_count_many([]) == []

    def test_estimator_surface(self, sup):
        generation = sup.generation
        assert sup.text_length == generation.text_length
        assert sup.threshold == generation.threshold
        assert sup.error_model in tuple(ErrorModel)
        assert set("abra").issubset(set(sup.alphabet.characters))
        assert sup.count("ab") == sup.merged_count("ab").hi
        exact = sup.count_or_none("abracadabra")
        if exact is not None:
            assert exact == _truth(sup.corpus, "abracadabra")

    def test_space_report_counts_segments_once(self, sup):
        report = sup.space_report()
        assert report.shared
        for ref in sup.generation.segments:
            assert report.shared[f"{ref.name}.segment"] == ref.nbytes * 8

    def test_status_shape(self, sup):
        status = sup.status()
        assert status["generation"]["number"] == sup.generation.number
        assert status["generations_held"] == [sup.generation.number]
        assert len(status["workers"]) >= len(sup.generation.segments)
        assert all(w["alive"] for w in status["workers"])
        assert status["stats"]["flips"] >= 1

    def test_double_start_rejected(self, sup):
        with pytest.raises(ReproError):
            sup.start()


class TestHotReload:
    def test_reload_serves_new_documents(self, sup):
        before = sup.generation.number
        sup.corpus.append("zeta", "zebra zigzag zone")
        # Not yet visible: the serving generation is immutable.
        assert sup.generation.number == before
        generation = sup.reload(compact=False)
        assert generation.number > before
        assert any(
            ref.name == DELTA_SEGMENT for ref in generation.segments
        )
        answer = sup.merged_count("zigzag")
        assert answer.generation == generation.number
        assert answer.lo >= 1
        assert sup.count_interval("zigzag") == (
            sup.corpus.count_interval("zigzag")
        )

    def test_old_generation_fully_retired(self, sup):
        from multiprocessing import shared_memory

        old = sup.generation
        new = sup.reload(compact=False)
        assert sup.status()["generations_held"] == [new.number]
        for ref in old.segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=ref.shm_name)

    def test_delete_widens_until_compaction(self, sup):
        # Deleting a *compacted-shard* document leaves a tombstone (the
        # immutable shards cannot forget it); the generation must carry
        # the tombstone and widen served intervals on the low side.
        assert "alpha" in sup.corpus.documents()
        sup.corpus.delete("alpha")
        generation = sup.reload(compact=False)
        assert generation.tombstones  # carried, not yet folded
        answer = sup.merged_count("abracadabra")
        assert answer.lo == 0  # tombstone widening admits the deletion
        assert sup.count_interval("abracadabra") == (
            sup.corpus.count_interval("abracadabra")
        )

    def test_commit_listener_flips_on_compaction(self, sup):
        sup.corpus.append("theta", "compaction trigger body")
        sup.corpus.compact()
        deadline = time.time() + 10.0
        while time.time() < deadline:
            generation = sup.generation
            if (
                generation.corpus_generation == sup.corpus.generation
                and not generation.tombstones
            ):
                break
            time.sleep(0.05)
        generation = sup.generation
        assert generation.corpus_generation == sup.corpus.generation
        assert sup.count_interval("compaction") == (
            sup.corpus.count_interval("compaction")
        )

    def test_reload_compacts_on_demand(self, sup):
        sup.corpus.append("iota", "sighup semantics body")
        assert sup.corpus.delta_pending
        generation = sup.reload(compact=True)
        assert sup.corpus.delta_pending == 0
        assert generation.corpus_generation == sup.corpus.generation
        assert all(
            ref.name != DELTA_SEGMENT for ref in generation.segments
        )


class TestDrainResume:
    def test_drain_blocks_admission_resume_reopens(self, sup):
        assert sup.drain() == 0
        assert sup.draining
        with pytest.raises(ReproError):
            sup.merged_count("ab")
        sup.resume()
        assert not sup.draining
        assert sup.merged_count("ab").hi >= 0

    def test_status_still_answers_while_draining(self, sup):
        sup.drain()
        try:
            status = sup.status()
            assert status["draining"] is True
        finally:
            sup.resume()


# -- control socket -----------------------------------------------------------


class TestControlServer:
    def test_round_trip_and_handler_errors(self, tmp_path):
        def handler(request):
            if request["op"] == "boom":
                raise InvalidParameterError("no such thing")
            return {"echo": request["op"]}

        path = tmp_path / "ctl.sock"
        with ControlServer(path, handler):
            assert send_control(path, {"op": "hi"}) == {"echo": "hi"}
            with pytest.raises(ReproError, match="no such thing"):
                send_control(path, {"op": "boom"})
        assert not path.exists()

    def test_non_object_request_rejected(self, tmp_path):
        path = tmp_path / "ctl.sock"
        with ControlServer(path, lambda request: "ok"):
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            client.settimeout(5.0)
            try:
                client.connect(str(path))
                client.sendall(b"[1, 2, 3]\n")
                reply = json.loads(client.recv(65536).decode())
            finally:
                client.close()
            assert reply["ok"] is False
            assert reply["type"] == "InvalidParameterError"

    def test_overlong_path_rejected(self, tmp_path):
        deep = tmp_path / ("x" * 120) / "ctl.sock"
        server = ControlServer(deep, lambda request: None)
        with pytest.raises(InvalidParameterError):
            server.start()

    def test_default_socket_path_falls_back_when_deep(self, tmp_path):
        shallow = default_socket_path(tmp_path)
        assert shallow == tmp_path / "daemon.sock"
        deep = tmp_path / ("y" * 150)
        fallback = default_socket_path(deep)
        assert len(str(fallback).encode()) <= 100


# -- serving daemon -----------------------------------------------------------


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("svc")
    corpus = _make_corpus(root / "corpus")
    corpus.close()
    served = ServingDaemon(
        root / "corpus",
        socket_path=root / "d.sock",
        heartbeat_interval=0.1,
    )
    served.start()
    yield served
    served.stop()


class TestServingDaemon:
    def test_status_and_count_over_socket(self, daemon):
        status = send_control(daemon.socket_path, {"op": "status"})
        assert status["generation"]["number"] >= 1
        assert status["socket"] == str(daemon.socket_path)
        answer = send_control(
            daemon.socket_path, {"op": "count", "pattern": "banana"}
        )
        local = daemon.supervisor.merged_count("banana")
        assert (answer["lo"], answer["hi"]) == (local.lo, local.hi)
        batch = send_control(
            daemon.socket_path,
            {"op": "count_many", "patterns": ["ab", "an"]},
        )
        assert len(batch) == 2

    def test_ingest_and_reload_over_socket(self, daemon):
        send_control(
            daemon.socket_path,
            {"op": "append", "name": "sock", "body": "socketable text"},
        )
        before = daemon.supervisor.generation.number
        reloaded = send_control(
            daemon.socket_path, {"op": "reload", "compact": False}
        )
        assert reloaded["number"] > before
        answer = send_control(
            daemon.socket_path, {"op": "count", "pattern": "socketable"}
        )
        assert answer["hi"] >= 1

    def test_drain_resume_over_socket(self, daemon):
        send_control(daemon.socket_path, {"op": "drain"})
        assert daemon.supervisor.draining
        with pytest.raises(ReproError):
            send_control(
                daemon.socket_path, {"op": "count", "pattern": "ab"}
            )
        send_control(daemon.socket_path, {"op": "resume"})
        assert not daemon.supervisor.draining

    def test_unknown_op_rejected(self, daemon):
        with pytest.raises(ReproError, match="unknown control op"):
            send_control(daemon.socket_path, {"op": "frobnicate"})

    def test_sighup_is_forced_compacting_reload(self, daemon):
        daemon.supervisor.corpus.append("hup", "sighup reload body")
        before = daemon.supervisor.generation.number
        daemon.handle_signal(signal.SIGHUP)
        generation = daemon.supervisor.generation
        assert generation.number > before
        assert daemon.supervisor.corpus.delta_pending == 0

    def test_sigterm_requests_stop(self, daemon):
        daemon.handle_signal(signal.SIGTERM)
        assert daemon._stop_event.is_set()
        daemon._stop_event.clear()  # keep the module fixture serving
        with pytest.raises(InvalidParameterError):
            daemon.handle_signal(signal.SIGUSR1)

    def test_stop_op_ends_serve_forever(self, tmp_path):
        corpus = _make_corpus(
            tmp_path / "c", docs={"one": "tiny body"}, shards=1
        )
        corpus.close()
        served = ServingDaemon(
            tmp_path / "c", socket_path=tmp_path / "d.sock"
        )
        served.start()
        loop = threading.Thread(
            target=served.serve_forever,
            kwargs={"install_signals": False, "poll_interval": 0.05},
        )
        loop.start()
        try:
            reply = send_control(served.socket_path, {"op": "stop"})
            assert reply == {"stopping": True}
            loop.join(timeout=10.0)
            assert not loop.is_alive()
            assert not served.socket_path.exists()
        finally:
            served.stop()
            loop.join(timeout=5.0)

    def test_start_twice_rejected(self, daemon):
        with pytest.raises(ReproError):
            daemon.start()

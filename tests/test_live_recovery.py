"""Crash-recovery properties of the live corpus plane.

The contract under test: **a crash at any durability boundary loses
nothing that was acknowledged**, and every ``count`` interval served
after recovery is identical to — or a sound widening of — the answer the
pre-crash corpus gave. Crashes are injected deterministically with
:class:`~repro.service.faults.DiskFaultInjector` at every WAL record
boundary and every manifest-commit boundary, including partial (torn)
writes, and a killed compaction must converge on identical shard digests
when retried.
"""

from __future__ import annotations

import random

import pytest

from repro.live import LiveCorpus
from repro.service import DiskFaultInjector, DiskFaultSpec, SimulatedCrashError

from conftest import naive_count

POOL = {
    "alpha": "abracadabra",
    "beta": "banana bandana",
    "gamma": "the quick brown fox jumps over the lazy dog",
    "delta": "mississippi",
    "epsilon": "how much wood would a woodchuck chuck",
    "zeta": "she sells sea shells by the sea shore",
}

PROBES = ("a", "an", "ana", "the", "ss", "ch", "sea shells", "zzz")


def live_truth(documents: dict, pattern: str) -> int:
    return sum(naive_count(body, pattern) for body in documents.values())


def assert_sound(corpus: LiveCorpus, documents: dict) -> dict:
    """Every probe interval brackets the live truth; returns the intervals."""
    intervals = {}
    for pattern in PROBES:
        lo, hi = corpus.count_interval(pattern)
        truth = live_truth(documents, pattern)
        assert lo <= truth <= hi, (
            f"{pattern!r}: [{lo}, {hi}] misses truth {truth}"
        )
        certified = corpus.count_or_none(pattern)
        if certified is not None:
            assert certified == truth
        intervals[pattern] = (lo, hi)
    return intervals


def apply_ops(corpus: LiveCorpus, ops, shadow: dict) -> None:
    """Apply scripted ops, mirroring acknowledged ones into ``shadow``."""
    for op in ops:
        if op[0] == "append":
            corpus.append(op[1], op[2])
            shadow[op[1]] = op[2]
        elif op[0] == "delete":
            corpus.delete(op[1])
            del shadow[op[1]]
        else:
            corpus.compact()


MUTATIONS = [
    ("append", "alpha", POOL["alpha"]),
    ("append", "beta", POOL["beta"]),
    ("append", "gamma", POOL["gamma"]),
    ("delete", "beta"),
    ("append", "delta", POOL["delta"]),
    ("append", "epsilon", POOL["epsilon"]),
]


class TestKillAtEveryWalBoundary:
    """Crash on every mutation's WAL append, with torn partial frames."""

    @pytest.mark.parametrize("at", range(1, len(MUTATIONS) + 1))
    @pytest.mark.parametrize("partial", [0.0, 0.5, 1.0])
    def test_recovery_keeps_exactly_the_acked_prefix(
        self, tmp_path, at, partial
    ):
        base = tmp_path / "corpus"
        LiveCorpus.create(base, l=8, shards=2).close()
        injector = DiskFaultInjector(
            DiskFaultSpec(site="wal_append", at=at, partial=partial)
        )
        corpus = LiveCorpus.open(base, injector=injector)
        shadow: dict = {}
        with pytest.raises(SimulatedCrashError):
            apply_ops(corpus, MUTATIONS, shadow)
        corpus.close()
        assert len(shadow) == len(
            [op for op in MUTATIONS[: at - 1] if op[0] == "append"]
        ) - len([op for op in MUTATIONS[: at - 1] if op[0] == "delete"])

        # What may survive: every acked mutation, plus — only when the
        # full frame reached the disk before the crash (partial == 1.0)
        # — the single in-flight, never-acknowledged one. Nothing else.
        in_flight = dict(shadow)
        op = MUTATIONS[at - 1]
        if op[0] == "append":
            in_flight[op[1]] = op[2]
        else:
            del in_flight[op[1]]
        acceptable = [shadow] if partial < 1.0 else [shadow, in_flight]

        with LiveCorpus.open(base) as recovered:
            survived = recovered.documents()
            assert survived in acceptable
            applied = at - 1 if survived == shadow else at
            intervals = assert_sound(recovered, survived)
            # No compaction ran, so recovery must reproduce exactly the
            # answers a crashless corpus with the same mutations gives.
            reference_dir = tmp_path / "reference"
            with LiveCorpus.create(reference_dir, l=8, shards=2) as ref:
                apply_ops(ref, MUTATIONS[:applied], {})
                for pattern in PROBES:
                    assert ref.count_interval(pattern) == intervals[pattern]
            shadow = survived
            # The healed log accepts new writes on a clean boundary.
            recovered.append("omega", "post recovery doc")
            shadow["omega"] = "post recovery doc"
        with LiveCorpus.open(base) as reopened:
            assert reopened.documents() == shadow


class TestKillAtEveryCompactionBoundary:
    """Crash at every boundary of the compaction commit protocol.

    ``manifest_temp``/``manifest_rename`` fire *before* the atomic
    rename: the old generation must keep serving, with the whole delta
    intact. ``manifest_committed``/``wal_rewrite`` fire *after*: the new
    generation is durable and the untrimmed WAL must be filtered by the
    sequence horizon. In every case a retried compaction converges on
    the digests of an uninterrupted run.
    """

    # (site, occurrence): create() itself commits the generation-0
    # manifest, so the compaction's manifest sites are occurrence 2.
    BOUNDARIES = [
        ("manifest_temp", 2, 0.0),
        ("manifest_temp", 2, 0.5),
        ("manifest_rename", 2, 1.0),
        ("manifest_committed", 2, 1.0),
        ("wal_rewrite", 1, 0.5),
    ]

    @pytest.mark.parametrize("site,at,partial", BOUNDARIES)
    def test_killed_compaction_serves_then_retries(
        self, tmp_path, site, at, partial
    ):
        base = tmp_path / "corpus"
        documents = {k: POOL[k] for k in ("alpha", "beta", "gamma", "delta")}
        injector = DiskFaultInjector(
            DiskFaultSpec(site=site, at=at, partial=partial)
        )
        corpus = LiveCorpus.create(base, l=8, shards=2, injector=injector)
        for name, body in documents.items():
            corpus.append(name, body)
        pre_crash = assert_sound(corpus, documents)
        with pytest.raises(SimulatedCrashError):
            corpus.compact()
        corpus.close()

        committed = site in ("manifest_committed", "wal_rewrite")
        with LiveCorpus.open(base) as recovered:
            assert recovered.documents() == documents
            assert recovered.generation == (1 if committed else 0)
            if not committed:
                # Old generation serving: the delta still holds all
                # documents and answers are identical to pre-crash.
                assert recovered.delta_pending == len(documents)
                for pattern in PROBES:
                    assert (
                        recovered.count_interval(pattern)
                        == pre_crash[pattern]
                    )
            assert_sound(recovered, documents)
            # The retry commits and converges on the same digests as an
            # uninterrupted compaction of the same live set.
            retried = recovered.compact()
            assert retried.committed
            assert_sound(recovered, documents)
        with LiveCorpus.create(tmp_path / "straight", l=8, shards=2) as ref:
            for name, body in documents.items():
                ref.append(name, body)
            straight = ref.compact()
        assert retried.shard_digests == straight.shard_digests

    def test_torn_manifest_temp_is_counted_not_trusted(self, tmp_path):
        base = tmp_path / "corpus"
        injector = DiskFaultInjector(
            DiskFaultSpec(site="manifest_rename", at=2)
        )
        corpus = LiveCorpus.create(base, l=8, shards=1, injector=injector)
        corpus.append("alpha", POOL["alpha"])
        with pytest.raises(SimulatedCrashError):
            corpus.compact()
        corpus.close()
        # The orphaned temp never shadows the serving manifest.
        with LiveCorpus.open(base) as recovered:
            assert recovered.generation == 0
            assert recovered.names == ["alpha"]

    def test_corrupt_index_file_is_rebuilt_from_segment(self, tmp_path):
        base = tmp_path / "corpus"
        with LiveCorpus.create(base, l=8, shards=2) as corpus:
            for name in ("alpha", "beta", "gamma"):
                corpus.append(name, POOL[name])
            corpus.compact()
            documents = corpus.documents()
            expected = {p: corpus.count_interval(p) for p in PROBES}
        for index_file in base.glob("idx-*.ridx"):
            index_file.write_bytes(b"garbage" * 10)
        with LiveCorpus.open(base) as recovered:
            assert recovered.indexes_rebuilt == 2
            assert recovered.documents() == documents
            for pattern in PROBES:
                assert recovered.count_interval(pattern) == expected[pattern]


class TestDifferentialIngestStream:
    """Random interleavings of append/delete/compact/crash vs a
    from-scratch rebuild of the surviving document set.

    After the stream (including one recovery mid-way), compacting the
    survivor and a freshly created corpus over the same documents must
    yield identical shard digests and identical count intervals — the
    canonical re-binning makes the corpus state a pure function of the
    live document set.
    """

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("policy", ["split", "widen"])
    def test_stream_matches_from_scratch_rebuild(
        self, tmp_path, shards, policy
    ):
        rng = random.Random(1000 * shards + len(policy))
        base = tmp_path / "corpus"
        corpus = LiveCorpus.create(base, l=16, shards=shards, policy=policy)
        shadow: dict = {}
        names = list(POOL)

        in_flight: list = []

        def random_op(corpus):
            roll = rng.random()
            absent = [n for n in names if n not in shadow]
            if roll < 0.5 and absent:
                name = rng.choice(absent)
                in_flight[:] = [("append", name)]
                corpus.append(name, POOL[name])
                shadow[name] = POOL[name]
            elif roll < 0.75 and shadow:
                name = rng.choice(sorted(shadow))
                in_flight[:] = [("delete", name)]
                corpus.delete(name)
                del shadow[name]
            else:
                in_flight[:] = []
                corpus.compact()

        for _ in range(10):
            random_op(corpus)
        assert_sound(corpus, shadow)
        corpus.close()

        # Crash at a random WAL boundary mid-stream, then recover.
        injector = DiskFaultInjector(
            DiskFaultSpec(
                site="wal_append",
                at=rng.randint(1, 3),
                partial=rng.choice([0.0, 0.5, 1.0]),
            )
        )
        corpus = LiveCorpus.open(base, injector=injector)
        assert corpus.documents() == shadow
        try:
            for _ in range(10):
                random_op(corpus)
        except SimulatedCrashError:
            pass  # the crashed op was never acked, so never shadowed
        corpus.close()
        corpus = LiveCorpus.open(base)
        # Recovery holds the acknowledged mutations, plus at most the
        # single in-flight one when its full frame hit the disk first.
        survived = corpus.documents()
        if survived != shadow:
            assert len(in_flight) == 1
            op, name = in_flight[0]
            if op == "append":
                shadow[name] = POOL[name]
            else:
                del shadow[name]
        assert survived == shadow
        for _ in range(6):
            random_op(corpus)
        assert_sound(corpus, shadow)
        if not shadow:  # ensure the final comparison is non-trivial
            corpus.append("alpha", POOL["alpha"])
            shadow["alpha"] = POOL["alpha"]
        final = corpus.compact()
        stream_intervals = {p: corpus.count_interval(p) for p in PROBES}
        corpus.close()

        with LiveCorpus.create(
            tmp_path / "scratch", l=16, shards=shards, policy=policy
        ) as scratch:
            for name, body in shadow.items():
                scratch.append(name, body)
            rebuilt = scratch.compact()
            assert rebuilt.shard_digests == final.shard_digests
            for pattern in PROBES:
                assert (
                    scratch.count_interval(pattern)
                    == stream_intervals[pattern]
                )
            assert_sound(scratch, shadow)

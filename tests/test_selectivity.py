"""Tests for the KVI / MO / MOL selectivity estimators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fm import FMIndex
from repro.baselines.pst import PrunedSuffixTree
from repro.core.cpst import CompactPrunedSuffixTree
from repro.errors import InvalidParameterError, PatternError
from repro.selectivity import CountOracle, KVIEstimator, MOEstimator, MOLEstimator
from repro.textutil import Text

ESTIMATORS = [KVIEstimator, MOEstimator, MOLEstimator]


@pytest.fixture(scope="module")
def english_like():
    words = ["the", "cat", "sat", "on", "a", "mat", "that", "rat", "chased"]
    text = " ".join(words[i % len(words)] for i in range(400))
    return Text(text)


class TestCountOracle:
    def test_wraps_lower_sided(self):
        oracle = CountOracle(CompactPrunedSuffixTree("abab", 2))
        assert oracle.known("ab") == 2
        assert oracle.known("ba") is None
        assert oracle.threshold == 2

    def test_wraps_exact(self):
        oracle = CountOracle(FMIndex("abab"))
        assert oracle.known("ba") == 1
        assert oracle.threshold == 1

    def test_rejects_non_index(self):
        with pytest.raises(InvalidParameterError):
            CountOracle(object())

    def test_longest_known(self):
        t = Text("abcabcabc")
        oracle = CountOracle(CompactPrunedSuffixTree(t, 2))
        # 'abcabc' occurs 2x (>=2) but 'abcabca' occurs once.
        assert oracle.longest_known("abcabcabc", 0) == 6
        assert oracle.longest_known("zzz", 0) == 0

    def test_cache_consistency(self):
        oracle = CountOracle(CompactPrunedSuffixTree("abab", 2))
        assert oracle.known("ab") == oracle.known("ab")
        assert oracle.known("xx") is None and oracle.known("xx") is None


@pytest.mark.parametrize("estimator_cls", ESTIMATORS)
class TestEstimatorsCommon:
    def test_known_patterns_are_exact(self, estimator_cls, english_like):
        index = CompactPrunedSuffixTree(english_like, 8)
        est = estimator_cls(index)
        for pattern in ("the", "at", "cat", " "):
            true = english_like.count_naive(pattern)
            if true >= 8:
                assert est.estimate(pattern) == true, pattern

    def test_estimates_are_bounded(self, estimator_cls, english_like):
        index = CompactPrunedSuffixTree(english_like, 16)
        est = estimator_cls(index)
        n = len(english_like)
        for pattern in ("the cat", "zzzq", "mat that", "rat chased a"):
            value = est.estimate(pattern)
            assert 0.0 <= value <= n

    def test_exact_backend_gives_exact_results(self, estimator_cls, english_like):
        est = estimator_cls(FMIndex(english_like))
        for pattern in ("the cat", "sat on", "zzz"):
            assert est.estimate(pattern) == english_like.count_naive(pattern)

    def test_empty_pattern_rejected(self, estimator_cls):
        est = estimator_cls(CompactPrunedSuffixTree("abab", 2))
        with pytest.raises(PatternError):
            est.estimate("")

    def test_selectivity_normalised(self, estimator_cls, english_like):
        est = estimator_cls(CompactPrunedSuffixTree(english_like, 8))
        assert 0.0 <= est.selectivity("the cat") <= 1.0

    def test_works_with_pst_backend(self, estimator_cls, english_like):
        est = estimator_cls(PrunedSuffixTree(english_like, 8))
        value = est.estimate("the cat sat")
        assert 0.0 <= value <= len(english_like)

    def test_default_count_validation(self, estimator_cls):
        with pytest.raises(InvalidParameterError):
            estimator_cls(CompactPrunedSuffixTree("abab", 2), default_count=0)


class TestParsers:
    def test_kvi_parse_covers_pattern(self, english_like):
        est = KVIEstimator(CompactPrunedSuffixTree(english_like, 8))
        pieces = est.explain("the cat sat on a mat")
        assert "".join(fragment for fragment, _ in pieces) == "the cat sat on a mat"

    def test_mo_parse_is_increasing_and_covering(self, english_like):
        est = MOEstimator(CompactPrunedSuffixTree(english_like, 8))
        pattern = "the cat sat"
        fragments = est.explain(pattern)
        starts = [s for s, _ in fragments]
        assert starts == sorted(starts)
        covered_end = max(s + len(f) for s, f in fragments)
        assert covered_end == len(pattern)
        assert fragments[0][0] == 0

    def test_mol_lattice_contains_known_substrings(self, english_like):
        est = MOLEstimator(CompactPrunedSuffixTree(english_like, 8))
        probs = est.lattice_probabilities("the cat")
        assert "the" in probs
        assert all(0.0 <= p <= 1.0 for p in probs.values())


class TestAccuracyOrdering:
    def test_mol_beats_kvi_on_average(self, english_like, rng):
        """MOL's conditioning should on average beat pure independence
        (the paper found MOL delivered the best estimates)."""
        index = CompactPrunedSuffixTree(english_like, 16)
        kvi = KVIEstimator(index)
        mol = MOLEstimator(index)
        text = english_like.raw
        kvi_err = mol_err = 0.0
        trials = 0
        for _ in range(80):
            length = int(rng.integers(6, 12))
            start = int(rng.integers(0, len(text) - length))
            pattern = text[start : start + length]
            true = english_like.count_naive(pattern)
            kvi_err += abs(kvi.estimate(pattern) - true)
            mol_err += abs(mol.estimate(pattern) - true)
            trials += 1
        assert mol_err <= kvi_err * 1.5  # MOL no worse; typically far better

    def test_smaller_l_gives_better_mol_estimates(self, english_like, rng):
        text = english_like.raw
        patterns = []
        for _ in range(60):
            length = int(rng.integers(6, 12))
            start = int(rng.integers(0, len(text) - length))
            patterns.append(text[start : start + length])

        def total_error(l):
            est = MOLEstimator(CompactPrunedSuffixTree(english_like, l))
            return sum(
                abs(est.estimate(p) - english_like.count_naive(p)) for p in patterns
            )

        assert total_error(4) <= total_error(64)


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet="ab", min_size=1, max_size=8))
def test_property_estimates_nonnegative_and_bounded(pattern):
    t = Text("abba" * 30)
    index = CompactPrunedSuffixTree(t, 4)
    for cls in ESTIMATORS:
        value = cls(index).estimate(pattern)
        assert 0.0 <= value <= len(t)

"""Tests for the pruned Patricia trie baseline (paper Section 7.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.patricia import PrunedPatriciaTrie
from repro.errors import InvalidParameterError, PatternError
from repro.textutil import Text


class TestPatriciaValidation:
    def test_l_must_be_even(self):
        with pytest.raises(InvalidParameterError):
            PrunedPatriciaTrie("abc", 5)

    def test_l_minimum(self):
        with pytest.raises(InvalidParameterError):
            PrunedPatriciaTrie("abc", 0)

    def test_empty_pattern(self):
        with pytest.raises(PatternError):
            PrunedPatriciaTrie("abc", 2).count("")


class TestPatriciaL2IsExactUpToRounding:
    def test_h1_samples_every_suffix(self):
        # h = 1: every suffix sampled, blind search is exact for patterns
        # that occur (counts multiplied by h = 1).
        text = "abracadabra"
        t = Text(text)
        trie = PrunedPatriciaTrie(t, 2)
        for pattern in ("a", "abra", "bra", "cad", "abracadabra"):
            assert trie.count(pattern) == t.count_naive(pattern), pattern


class TestPatriciaGuarantee:
    @pytest.mark.parametrize("l", [2, 4, 8, 16])
    def test_frequent_patterns_within_l(self, l, rng):
        chars = list("ab")
        text = "".join(rng.choice(chars, size=500))
        t = Text(text)
        trie = PrunedPatriciaTrie(t, l)
        h = l // 2
        for length in (1, 2, 3, 5):
            for _ in range(20):
                start = int(rng.integers(0, len(text) - length))
                pattern = text[start : start + length]
                true = t.count_naive(pattern)
                if true < h:
                    continue  # no guarantee below l/2 (paper's criticism)
                estimate = trie.count(pattern)
                assert abs(estimate - true) < l, (pattern, true, estimate, l)

    def test_unary_text(self):
        n, l = 50, 4
        t = Text("a" * n)
        trie = PrunedPatriciaTrie(t, l)
        h = l // 2
        for k in (1, 5, 20, 45):
            true = n - k + 1
            if true >= h:
                assert abs(trie.count("a" * k) - true) < l, k

    def test_absent_symbol(self):
        trie = PrunedPatriciaTrie("aabb", 2)
        assert trie.count("z") == 0

    def test_space_scales_inversely_with_l(self):
        text = "the quick brown fox jumps over the lazy dog " * 30
        sizes = [
            PrunedPatriciaTrie(text, l).space_report().payload_bits
            for l in (2, 8, 32)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_space_worse_than_cpst_shape(self):
        # Patricia stores Theta(log n) bits per sample: for texts whose PST
        # is small it loses to the CPST at equal threshold.
        from repro.core.cpst import CompactPrunedSuffixTree

        text = ("abcdefgh" * 10 + "x") * 20
        l = 8
        patricia_bits = PrunedPatriciaTrie(text, l).space_report().payload_bits
        cpst_bits = CompactPrunedSuffixTree(text, l).space_report().payload_bits
        assert cpst_bits < patricia_bits


@settings(max_examples=40, deadline=None)
@given(
    st.text(alphabet="abc", min_size=4, max_size=150),
    st.sampled_from([2, 4, 8]),
)
def test_property_frequent_patterns_bounded(text, l):
    t = Text(text)
    trie = PrunedPatriciaTrie(t, l)
    h = l // 2
    seen = set()
    for length in (1, 2, 3):
        for start in range(0, len(text) - length + 1, 3):
            seen.add(text[start : start + length])
    for pattern in seen:
        true = t.count_naive(pattern)
        if true >= h:
            assert abs(trie.count(pattern) - true) < l, (pattern, true)

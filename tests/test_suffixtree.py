"""Tests for lcp-interval enumeration and the pruned suffix tree structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.sa import lcp_array, suffix_array
from repro.suffixtree.intervals import (
    count_internal_nodes,
    lcp_intervals,
    lcp_intervals_pruned,
)
from repro.suffixtree.pruned import PrunedSuffixTreeStructure
from repro.textutil import Text


def intervals_of(text: str):
    data = Text(text).data
    sa = suffix_array(data)
    return sorted(lcp_intervals(lcp_array(data, sa)), key=lambda x: (x[1], -x[2]))


class TestLcpIntervals:
    def test_banana(self):
        # Internal nodes of ST(banana$): root, 'a', 'ana', 'na'.
        got = intervals_of("banana")
        assert got == [(0, 0, 6), (1, 1, 3), (3, 2, 3), (2, 5, 6)]

    def test_unary_text(self):
        # T = a^n: internal nodes are a^0..a^(n-1) — a chain of n nodes.
        got = intervals_of("a" * 10)
        assert len(got) == 10
        depths = sorted(d for d, _, __ in got)
        assert depths == list(range(10))

    def test_all_distinct_symbols(self):
        # abcd$: only the root is internal.
        assert intervals_of("abcd") == [(0, 0, 4)]

    def test_intervals_are_laminar(self, rng):
        text = "".join(rng.choice(list("ab"), size=120))
        nodes = intervals_of(text)
        for i, (_, lb1, rb1) in enumerate(nodes):
            for _, lb2, rb2 in nodes[i + 1 :]:
                disjoint = rb2 < lb1 or rb1 < lb2
                nested = (lb1 <= lb2 and rb2 <= rb1) or (lb2 <= lb1 and rb1 <= rb2)
                assert disjoint or nested

    def test_internal_node_count_bound(self, rng):
        text = "".join(rng.choice(list("abc"), size=200))
        data = Text(text).data
        lcp = lcp_array(data, suffix_array(data))
        assert count_internal_nodes(lcp) <= len(data)

    def test_pruned_requires_positive_min_size(self):
        with pytest.raises(InvalidParameterError):
            lcp_intervals_pruned(np.zeros(3, dtype=np.int64), 0)

    def test_pruned_filters_by_size(self):
        data = Text("banana").data
        lcp = lcp_array(data, suffix_array(data))
        pruned = lcp_intervals_pruned(lcp, 3)
        assert pruned == [(0, 0, 6), (1, 1, 3)]


class TestPrunedStructure:
    def test_requires_l_at_least_2(self):
        with pytest.raises(InvalidParameterError):
            PrunedSuffixTreeStructure("abc", 1)

    def test_counts_match_substring_counts(self):
        text = "banabananab"
        t = Text(text)
        pst = PrunedSuffixTreeStructure(t, 2)
        for node in pst.nodes:
            if node.depth == 0:
                assert node.count == len(text) + 1  # every suffix incl. '$'
            else:
                label = pst.path_label(node)
                assert node.count == t.count_naive(label), label

    def test_correction_factors_sum_to_all_leaves(self):
        for text in ("banabananab", "mississippi", "aaaa", "abcd"):
            for l in (2, 3, 4):
                pst = PrunedSuffixTreeStructure(text, l)
                assert int(pst.correction_factors().sum()) == len(text) + 1, (text, l)

    def test_observation1_bound(self, rng):
        # g(u) < sigma * l for every node (paper Observation 1).
        text = "".join(rng.choice(list("abcde"), size=400))
        for l in (2, 4, 8):
            pst = PrunedSuffixTreeStructure(text, l)
            sigma = pst.text.sigma
            assert all(node.g < sigma * l for node in pst.nodes), l

    def test_preorder_ids_and_children_order(self):
        pst = PrunedSuffixTreeStructure("banabananab", 2)
        for node in pst.nodes:
            assert pst.nodes[node.preorder_id] is node
            for a, b in zip(node.children, node.children[1:]):
                assert a < b
                # children ordered by branching symbol = SA order
                assert pst.nodes[a].lb < pst.nodes[b].lb
            if node.parent is not None:
                assert node.parent < node.preorder_id

    def test_subtree_counts_consistent(self):
        pst = PrunedSuffixTreeStructure("abracadabra" * 4, 3)
        for node in pst.nodes:
            kept_total = sum(pst.nodes[c].count for c in node.children)
            assert node.count == node.g + kept_total

    def test_suffix_links(self):
        pst = PrunedSuffixTreeStructure("banabananab", 2)
        for node in pst.nodes:
            if node.depth == 0:
                assert node.suffix_link is None
                continue
            target = pst.nodes[node.suffix_link]
            assert target.depth == node.depth - 1
            assert pst.path_label(node)[1:] == pst.path_label(target)

    def test_isl_symbols_match_suffix_links(self):
        pst = PrunedSuffixTreeStructure("abracadabra" * 3, 2)
        expected = {node.preorder_id: [] for node in pst.nodes}
        for node in pst.nodes:
            if node.suffix_link is not None:
                expected[node.suffix_link].append(node.first_symbol)
        for node in pst.nodes:
            assert node.isl_symbols == sorted(expected[node.preorder_id])

    def test_symbol_counts_give_contiguous_ranges(self):
        text = "mississippi" * 3
        pst = PrunedSuffixTreeStructure(text, 2)
        counts = pst.symbol_counts
        sigma = pst.text.sigma
        for c in range(1, sigma):
            ids = [
                n.preorder_id for n in pst.nodes if n.first_symbol == c
            ]
            lo, hi = int(counts[c]) + 1, int(counts[c + 1])
            assert ids == list(range(lo, hi + 1)), c

    def test_edge_labels_reconstruct_path_labels(self):
        pst = PrunedSuffixTreeStructure("banabananab", 2)
        for node in pst.nodes:
            pieces = []
            cur = node
            while cur.parent is not None:
                pieces.append(pst.edge_label(cur))
                cur = pst.nodes[cur.parent]
            assert "".join(reversed(pieces)) == pst.path_label(node)

    def test_total_label_length(self):
        pst = PrunedSuffixTreeStructure("banana", 2)
        total = sum(len(pst.edge_label(n)) for n in pst.nodes)
        assert pst.total_label_length() == total

    def test_rightmost_leaf(self):
        pst = PrunedSuffixTreeStructure("abracadabra" * 2, 2)
        for node in pst.nodes:
            leaf = pst.rightmost_leaf(node)
            assert leaf.rb == node.rb  # rightmost descendant shares rb
            assert not leaf.children
            # No kept node has a larger preorder id within the subtree.
            in_subtree = [
                x.preorder_id
                for x in pst.nodes
                if node.lb <= x.lb and x.rb <= node.rb and x.depth >= node.depth
            ]
            assert leaf.preorder_id == max(in_subtree)

    def test_unary_text_chain(self):
        # T = a^n with threshold l: kept nodes a^0..a^(n-l+1): n-l+2 nodes.
        n, l = 30, 4
        pst = PrunedSuffixTreeStructure("a" * n, l)
        assert pst.num_nodes == n - l + 2

    def test_tiny_text_root_only(self):
        pst = PrunedSuffixTreeStructure("ab", 8)
        assert pst.num_nodes == 1
        assert pst.root.g == 3


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="ab", min_size=2, max_size=100), st.sampled_from([2, 3, 5, 8]))
def test_property_structure_invariants(text, l):
    t = Text(text)
    pst = PrunedSuffixTreeStructure(t, l)
    # every kept node represents a string occurring >= l times (except root)
    for node in pst.nodes:
        if node.depth > 0:
            assert node.count >= l
            assert t.count_naive(pst.path_label(node)) == node.count
    # corrections account for every suffix exactly once
    assert int(pst.correction_factors().sum()) == len(text) + 1


def _brute_force_internal_nodes(text: str):
    """Internal suffix-tree nodes of text$ via explicit trie compaction."""
    suffixes = sorted(text[i:] + "$" for i in range(len(text))) + ["$"]
    suffixes.sort()
    nodes = set()
    # A string alpha is an internal node iff it prefixes >= 2 suffixes and
    # is right-branching (two different next symbols) — plus the root.
    from collections import defaultdict

    prefix_extensions = defaultdict(set)
    for suffix in suffixes:
        for k in range(len(suffix)):
            prefix_extensions[suffix[:k]].add(suffix[k])
    for alpha, extensions in prefix_extensions.items():
        if len(extensions) >= 2:
            nodes.add(alpha)
    return nodes


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "text", ["banana", "mississippi", "aaaa", "abcab" * 3, "ababab"]
    )
    def test_interval_nodes_match_brute_force(self, text):
        expected = _brute_force_internal_nodes(text)
        pst = PrunedSuffixTreeStructure(text, 2)  # l=2 keeps all internal nodes
        got = {pst.path_label(node) for node in pst.nodes}
        # l=2 prunes internal nodes with a single (doubled) leaf? No:
        # internal nodes have >= 2 leaves by branching, so sets must match.
        assert got == expected

    def test_counts_match_brute_force(self, rng):
        text = "".join(rng.choice(list("ab"), size=60))
        pst = PrunedSuffixTreeStructure(text, 2)
        for node in pst.nodes:
            if node.depth:
                label = pst.path_label(node)
                expected = sum(
                    1
                    for i in range(len(text) - len(label) + 1)
                    if text[i : i + len(label)] == label
                )
                assert node.count == expected

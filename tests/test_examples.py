"""Smoke tests: every example script must run to completion."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"

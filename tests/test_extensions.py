"""Tests for the extension indexes: combined, multiplicative, EF-ablation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ApproxIndex, ApproxIndexEF, CombinedIndex, MultiplicativeIndex
from repro.errors import InvalidParameterError
from repro.textutil import Text


def all_substrings(text: str, max_len: int):
    seen = set()
    for length in range(1, max_len + 1):
        for start in range(len(text) - length + 1):
            seen.add(text[start : start + length])
    return sorted(seen)


class TestCombinedIndex:
    @pytest.mark.parametrize("l", [2, 4, 8, 16])
    def test_exact_above_threshold(self, l):
        text = "abracadabra" * 4
        t = Text(text)
        combined = CombinedIndex(t, l)
        for pattern in all_substrings(text, 6):
            true = t.count_naive(pattern)
            estimate, exact = combined.count_with_certainty(pattern)
            if true >= l:
                assert exact and estimate == true, pattern
            else:
                assert not exact
                assert true <= estimate <= l - 1, (pattern, true, estimate)

    def test_count_bounds_contain_truth(self, rng):
        text = "".join(rng.choice(list("abc"), size=400))
        t = Text(text)
        combined = CombinedIndex(t, 8)
        patterns = all_substrings(text[:60], 4)
        for pattern in patterns:
            lo, hi = combined.count_bounds(pattern)
            true = t.count_naive(pattern)
            assert lo <= true <= hi, (pattern, lo, true, hi)

    def test_odd_threshold_accepted(self):
        combined = CombinedIndex("abcabcabc", 3)
        assert combined.threshold == 3
        assert combined.count("abc") == 3

    def test_clamp_tightens_apx(self):
        # Below-threshold estimates never exceed l - 1, unlike bare APX.
        t = Text("ab" * 40)
        l = 16
        combined = CombinedIndex(t, l)
        for pattern in ("aab", "bb", "aba" * 3):
            assert combined.count(pattern) <= l - 1

    def test_space_is_sum_of_parts(self):
        combined = CombinedIndex("banana" * 20, 8)
        report = combined.space_report()
        assert report.payload_bits > 0
        assert any("S_link_string" in key for key in report.components)
        assert any("B_block_string" in key for key in report.components)

    def test_backs_selectivity_estimators(self):
        from repro.selectivity import MOLEstimator

        t = Text("the cat sat on the mat " * 30)
        estimator = MOLEstimator(CombinedIndex(t, 8))
        assert estimator.estimate("the cat") == t.count_naive("the cat")


class TestMultiplicativeIndex:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MultiplicativeIndex("abc", epsilon=0.0, cutoff=10)
        with pytest.raises(InvalidParameterError):
            MultiplicativeIndex("abc", epsilon=0.5, cutoff=0)
        with pytest.raises(InvalidParameterError):
            MultiplicativeIndex("abc", epsilon=0.01, cutoff=10)  # eps*c < 2

    @pytest.mark.parametrize("epsilon,cutoff", [(0.5, 8), (0.25, 16), (1.0, 4)])
    def test_multiplicative_bound_above_cutoff(self, epsilon, cutoff, rng):
        text = "".join(rng.choice(list("ab"), size=600))
        t = Text(text)
        index = MultiplicativeIndex(t, epsilon, cutoff)
        for pattern in all_substrings(text[:50], 4):
            true = t.count_naive(pattern)
            if true < cutoff:
                continue
            estimate = index.count(pattern)
            assert true <= estimate <= (1 + epsilon) * true, (
                pattern, true, estimate, epsilon,
            )

    def test_certified_answers_are_exact(self):
        t = Text("abcabc" * 20)
        index = MultiplicativeIndex(t, epsilon=0.5, cutoff=8)
        estimate, certified = index.count_certified("abc")
        assert certified and estimate == t.count_naive("abc")
        estimate, certified = index.count_certified("cba")
        assert not certified

    def test_no_certifier_mode(self):
        index = MultiplicativeIndex("abcabc" * 20, 0.5, 8, certify=False)
        estimate, certified = index.count_certified("abc")
        assert not certified
        assert estimate >= 20

    def test_space_sublinear_in_cutoff(self):
        text = "the quick brown fox " * 100
        small = MultiplicativeIndex(text, 0.5, 64, certify=False)
        large = MultiplicativeIndex(text, 0.5, 8, certify=False)
        assert small.space_report().payload_bits < large.space_report().payload_bits


class TestApproxEFAblation:
    @pytest.mark.parametrize("l", [2, 4, 8, 16])
    def test_identical_answers_to_paper_encoding(self, l, rng):
        text = "".join(rng.choice(list("abcd"), size=400))
        t = Text(text)
        paper = ApproxIndex(t, l)
        ef = ApproxIndexEF(t, l)
        patterns = set(all_substrings(text[:50], 4))
        for length in (2, 5, 9):
            for _ in range(10):
                start = int(rng.integers(0, len(text) - length))
                patterns.add(text[start : start + length])
        for pattern in sorted(patterns):
            assert paper.count_range(pattern) == ef.count_range(pattern), pattern

    def test_uniform_bound_holds(self, rng):
        text = "".join(rng.choice(list("ab"), size=300))
        t = Text(text)
        l = 8
        ef = ApproxIndexEF(t, l)
        for pattern in all_substrings(text[:40], 5):
            true = t.count_naive(pattern)
            assert true <= ef.count(pattern) <= true + l - 1, pattern

    def test_space_report_structure(self):
        report = ApproxIndexEF("banana" * 30, 8).space_report()
        assert set(report.components) == {"D_positions", "D_directory", "C_array"}

    def test_same_discriminant_count(self):
        text = "mississippi" * 10
        assert (
            ApproxIndex(text, 8).num_discriminants
            == ApproxIndexEF(text, 8).num_discriminants
        )


@settings(max_examples=40, deadline=None)
@given(
    st.text(alphabet="abc", min_size=1, max_size=100),
    st.text(alphabet="abc", min_size=1, max_size=4),
    st.sampled_from([2, 4, 8]),
)
def test_property_ef_variant_matches_paper_variant(text, pattern, l):
    t = Text(text)
    assert (
        ApproxIndex(t, l).count_range(pattern)
        == ApproxIndexEF(t, l).count_range(pattern)
    )


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet="ab", min_size=1, max_size=80), st.sampled_from([2, 4, 8]))
def test_property_combined_never_worse_than_parts(text, l):
    t = Text(text)
    combined = CombinedIndex(t, l)
    for pattern in {text[:2], text[-2:], "ab", "ba"}:
        if not pattern:
            continue
        true = t.count_naive(pattern)
        estimate = combined.count(pattern)
        assert true <= estimate <= true + l - 1

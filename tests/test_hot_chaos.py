"""Chaos tests for the hot tier: the poisoned-sketch failure mode.

A hot tier that rots in memory is the nastiest corruption in the ladder:
its answers are cached, *feasible* (a silently decreased count never
trips the range check) and served on the fastest path, so a single bad
cell would repeat a wrong answer at cache speed. The ``hot_lookup``
fault site (:class:`~repro.service.faults.HotFaultInjector`) simulates
exactly that, and these tests prove the containment story end to end:
only a differential probe against recorded truth convicts the tier, the
:class:`~repro.service.watchdog.CorruptionWatchdog` quarantines it, a
registered rebuilder swaps in a cold store, and the feedback loop
re-verifies it back to exact service — while the ladder never stops
answering truthfully.
"""

from __future__ import annotations

import pytest

from repro.core.interface import ErrorModel
from repro.hot import HotPatternTier, HotTierRung, hot_rebuilder
from repro.service import (
    CORRUPT_MODES,
    FaultSpec,
    FaultyIndex,
    HotFaultInjector,
    build_default_ladder,
)
from repro.service.watchdog import CorruptionWatchdog, probes_from_text
from repro.textutil import Text

pytestmark = pytest.mark.chaos

SEED = 4321
TEXT = Text("abracadabra_the_quick_brown_fox_" * 30)
L = 4
HOT_PATTERNS = ["abra", "the_", "quick", "brown"]
TRUTH = {pattern: TEXT.count_naive(pattern) for pattern in HOT_PATTERNS}


def _poisoned_service(spec: FaultSpec):
    """A default ladder fronted by a hot rung with a fault injector."""
    store = HotPatternTier.from_text(TEXT.raw)
    injector = HotFaultInjector(spec, seed=SEED)
    rung = HotTierRung(store, injector=injector)
    service = build_default_ladder(TEXT, L).prepend_tier(rung)
    for pattern, truth in TRUTH.items():
        store.observe_exact(pattern, truth)
    return service, store, rung, injector


class TestHotChaos:
    def test_poison_slips_past_the_feasibility_check(self):
        # The motivating failure: a poisoned count is in range, so the
        # serving path happily returns it — wrong, EXACT-labelled, fast.
        service, _, _, injector = _poisoned_service(
            FaultSpec(corrupt_rate=1.0, corrupt_mode="poison")
        )
        outcome = service.query("abra")
        assert outcome.tier == "hot"
        assert outcome.error_model is ErrorModel.EXACT
        assert 0 <= outcome.count < TRUTH["abra"]
        assert injector.injections["hot_lookup", "corrupt"] >= 1

    def test_watchdog_quarantines_rebuilds_and_readmits(self):
        service, store, rung, _ = _poisoned_service(
            FaultSpec(corrupt_rate=1.0, corrupt_mode="poison")
        )
        watchdog = CorruptionWatchdog(
            service,
            probes_from_text(TEXT, patterns=HOT_PATTERNS),
            rebuilders={"hot": hot_rebuilder(TEXT.raw)},
            probes_per_round=len(HOT_PATTERNS),
            seed=SEED,
        )
        findings = watchdog.run_probe_round()
        hot_violations = [
            f for f in findings if f.tier == "hot" and not f.ok
        ]
        assert hot_violations, "the differential probe must convict"
        events = watchdog.events
        assert len(events) == 1
        event = events[0]
        assert event.tier == "hot"
        assert event.rebuilt and event.readmitted
        assert not rung.quarantined
        # The swapped-in store is cold and injector-free: re-verify via
        # the feedback loop, then exact service resumes — truthfully.
        assert rung.hot is not store
        for _ in range(5):
            outcome = service.query("abra")
        assert outcome.tier == "hot"
        assert outcome.error_model is ErrorModel.EXACT
        assert outcome.count == TRUTH["abra"]

    def test_quarantine_without_rebuilder_keeps_the_ladder_sound(self):
        service, _, rung, _ = _poisoned_service(
            FaultSpec(corrupt_rate=1.0, corrupt_mode="poison")
        )
        watchdog = CorruptionWatchdog(
            service,
            probes_from_text(TEXT, patterns=HOT_PATTERNS),
            probes_per_round=len(HOT_PATTERNS),
            seed=SEED,
        )
        watchdog.run_probe_round()
        assert rung.quarantined
        # The poisoned rung is out of the ladder: answers come from the
        # lower tiers and are truthful again.
        for pattern, truth in TRUTH.items():
            outcome = service.query(pattern)
            assert outcome.tier != "hot"
            assert outcome.contract_holds(truth, len(TEXT))

    def test_bitflip_on_the_hot_site_is_also_convicted(self):
        service, _, rung, _ = _poisoned_service(
            FaultSpec(corrupt_rate=1.0, corrupt_mode="bitflip")
        )
        watchdog = CorruptionWatchdog(
            service,
            probes_from_text(TEXT, patterns=HOT_PATTERNS),
            probes_per_round=len(HOT_PATTERNS),
            seed=SEED,
        )
        findings = watchdog.run_probe_round()
        assert any(f.tier == "hot" and not f.ok for f in findings)
        assert rung.quarantined

    def test_hot_error_faults_fall_through_to_the_ladder(self):
        service, _, _, injector = _poisoned_service(
            FaultSpec(error_rate=1.0)
        )
        for pattern, truth in TRUTH.items():
            outcome = service.query(pattern)
            assert outcome.tier != "hot"
            assert outcome.contract_holds(truth, len(TEXT))
        assert injector.injections["hot_lookup", "error"] >= len(TRUTH)

    def test_out_of_range_corruption_is_caught_inline(self):
        # Sanity for the detectable mode: the rung's feasibility check
        # rejects out-of-range counts before they are ever served, so
        # the ladder degrades to the next tier instead of lying.
        service, _, _, _ = _poisoned_service(
            FaultSpec(corrupt_rate=1.0, corrupt_mode="out_of_range")
        )
        for pattern, truth in TRUTH.items():
            outcome = service.query(pattern)
            assert outcome.contract_holds(truth, len(TEXT))


class TestPoisonCorruptMode:
    def test_poison_is_a_registered_mode(self):
        assert "poison" in CORRUPT_MODES

    def test_faulty_index_poison_undercounts_but_stays_feasible(self):
        from repro import CompactPrunedSuffixTree

        spec = FaultSpec(corrupt_rate=1.0, corrupt_mode="poison")
        index = FaultyIndex(
            CompactPrunedSuffixTree(TEXT, L),
            {"count_or_none": spec},
            seed=SEED,
        )
        truth = TRUTH["abra"]
        observed = index.count_or_none("abra")
        assert observed is not None
        assert 0 <= observed < truth
"""Tests for FM-index locate/extract (SA sampling)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fm import FMIndex
from repro.errors import InvalidParameterError
from repro.textutil import Text


def naive_locate(text: str, pattern: str):
    return [
        i
        for i in range(len(text) - len(pattern) + 1)
        if text[i : i + len(pattern)] == pattern
    ]


class TestLocate:
    @pytest.fixture(scope="class")
    def fm(self):
        return FMIndex(Text("abracadabra" * 10), sa_sample_rate=4)

    def test_matches_naive(self, fm):
        text = "abracadabra" * 10
        for pattern in ("abra", "a", "cadab", "abracadabraabra", "zzz"):
            assert fm.locate(pattern) == naive_locate(text, pattern), pattern

    def test_sample_rate_one(self):
        text = "banana"
        fm = FMIndex(Text(text), sa_sample_rate=1)
        assert fm.locate("an") == [1, 3]

    def test_requires_samples(self):
        fm = FMIndex("banana")
        with pytest.raises(InvalidParameterError):
            fm.locate("an")
        with pytest.raises(InvalidParameterError):
            fm.extract(0, 2)

    def test_invalid_rate(self):
        with pytest.raises(InvalidParameterError):
            FMIndex("banana", sa_sample_rate=0)

    def test_count_agrees_with_locate(self, fm):
        for pattern in ("ra", "ab", "dab"):
            assert fm.count(pattern) == len(fm.locate(pattern))


class TestExtract:
    @pytest.fixture(scope="class")
    def setup(self):
        text = "the quick brown fox jumps over the lazy dog " * 8
        return text, FMIndex(Text(text), sa_sample_rate=16)

    def test_every_alignment(self, setup):
        text, fm = setup
        for start in range(0, 60, 7):
            for length in (1, 3, 16, 17, 31):
                assert fm.extract(start, length) == text[start : start + length]

    def test_suffix_and_prefix(self, setup):
        text, fm = setup
        assert fm.extract(0, 5) == text[:5]
        assert fm.extract(len(text) - 5, 5) == text[-5:]
        assert fm.extract(0, len(text)) == text

    def test_empty_extract(self, setup):
        _, fm = setup
        assert fm.extract(10, 0) == ""

    def test_out_of_range(self, setup):
        text, fm = setup
        with pytest.raises(InvalidParameterError):
            fm.extract(-1, 2)
        with pytest.raises(InvalidParameterError):
            fm.extract(len(text) - 1, 2)

    def test_space_report_includes_samples(self, setup):
        _, fm = setup
        report = fm.space_report()
        assert "sa_samples" in report.components
        assert "isa_samples" in report.components

    def test_sampling_rate_space_tradeoff(self):
        text = "abcdefgh" * 200
        dense = FMIndex(Text(text), sa_sample_rate=2).space_report().payload_bits
        sparse = FMIndex(Text(text), sa_sample_rate=64).space_report().payload_bits
        assert sparse < dense


@settings(max_examples=30, deadline=None)
@given(
    st.text(alphabet="ab", min_size=2, max_size=80),
    st.integers(min_value=1, max_value=12),
)
def test_property_locate_and_extract(text, rate):
    t = Text(text)
    fm = FMIndex(t, sa_sample_rate=rate)
    pattern = text[: min(3, len(text))]
    assert fm.locate(pattern) == naive_locate(text, pattern)
    assert fm.extract(0, len(text)) == text

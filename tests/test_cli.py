"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv: str) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestCount:
    def test_count_on_builtin_corpus(self, capsys):
        out = run_cli(
            capsys, "count", "english", "--size", "3000",
            "--index", "cpst", "--l", "8", "the",
        )
        assert "'the':" in out

    def test_count_multiple_patterns(self, capsys):
        out = run_cli(
            capsys, "count", "dna", "--size", "2000",
            "--index", "apx", "--l", "16", "AC", "GT",
        )
        assert out.count(":") == 2

    def test_count_on_file(self, capsys, tmp_path):
        path = tmp_path / "text.txt"
        path.write_text("banana banana banana")
        out = run_cli(capsys, "count", str(path), "--index", "fm", "banana")
        assert "'banana': 3" in out

    def test_missing_file_errors(self, capsys):
        assert main(["count", "/no/such/file", "x"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_vectorize_matches_vectorized_counts(self, capsys):
        import json

        runs = {}
        for flag in ([], ["--no-vectorize"]):
            out = run_cli(
                capsys, "count", "dna", "--size", "2000", "--index", "fm",
                "--json", "--engine-stats", *flag, "ACG", "GT", "TTT",
            )
            runs[bool(flag)] = json.loads(out)
        assert runs[True]["counts"] == runs[False]["counts"]
        # The scalar path must never fire a bulk wave.
        assert runs[True]["engine"]["bulk_calls"] == 0

    def test_no_vectorize_rejected_without_automaton(self, capsys):
        assert main([
            "count", "dna", "--size", "2000", "--index", "qgram",
            "--no-vectorize", "AC",
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestBuildAndQuery:
    def test_roundtrip(self, capsys, tmp_path):
        index_file = tmp_path / "index.pkl"
        out = run_cli(
            capsys, "build", "english", "--size", "3000",
            "--index", "cpst", "--l", "16", "-o", str(index_file),
        )
        assert "payload bits" in out
        assert index_file.exists()
        out = run_cli(capsys, "query", str(index_file), "the")
        assert "'the':" in out

    @pytest.mark.parametrize("index_kind", ["apx", "cpst", "pst", "patricia", "fm", "rlfm", "qgram"])
    def test_every_index_kind_builds(self, capsys, tmp_path, index_kind):
        index_file = tmp_path / f"{index_kind}.pkl"
        run_cli(
            capsys, "build", "dna", "--size", "1500",
            "--index", index_kind, "--l", "8", "-o", str(index_file),
        )
        out = run_cli(capsys, "query", str(index_file), "AC")
        assert "'AC':" in out


class TestProcessCli:
    @pytest.mark.slow
    def test_serve_check_with_processes_passes(self, capsys):
        out = run_cli(
            capsys, "serve-check", "dna", "--size", "3000",
            "--l", "8", "--processes", "2",
        )
        assert "2 worker processes over shared segments" in out
        assert "shared bytes (one copy per host)" in out
        assert "serve-check PASS" in out

    @pytest.mark.slow
    def test_serve_check_processes_with_async_front(self, capsys):
        out = run_cli(
            capsys, "serve-check", "dna", "--size", "3000",
            "--l", "8", "--processes", "2", "--concurrency", "4",
        )
        assert "asyncio server" in out
        assert "serve-check PASS" in out
        assert "server: served" in out

    def test_processes_reject_shards_combination(self, capsys):
        assert main([
            "serve-check", "dna", "--size", "2000",
            "--l", "8", "--processes", "2", "--shards", "2",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_processes_reject_fault_injection(self, capsys):
        assert main([
            "serve-check", "dna", "--size", "2000",
            "--l", "8", "--processes", "2", "--fault-rate", "0.5",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_processes_reject_no_vectorize(self, capsys):
        # Worker processes are spawned fresh and would silently ignore
        # the process-global scalar override.
        assert main([
            "serve-check", "dna", "--size", "2000",
            "--l", "8", "--processes", "2", "--no-vectorize",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_check_no_vectorize_passes_in_process(self, capsys):
        from repro.engine import default_vectorize, set_default_vectorize

        try:
            out = run_cli(
                capsys, "serve-check", "dna", "--size", "2000",
                "--l", "8", "--no-vectorize",
            )
            assert "serve-check PASS" in out
            assert not default_vectorize()  # the scalar override really engaged
        finally:
            set_default_vectorize(True)


class TestShardedCli:
    def test_build_with_shards_saves_one_index_per_shard(self, capsys, tmp_path):
        index_file = tmp_path / "sharded.pkl"
        out = run_cli(
            capsys, "build", "english", "--size", "3000",
            "--index", "apx", "--l", "8", "--shards", "3",
            "-o", str(index_file),
        )
        assert "shard plan: 3 shard(s)" in out
        for name in ("shard0", "shard1", "shard2"):
            assert f"saved apx shard {name}" in out
            saved = tmp_path / f"sharded.pkl.{name}"
            assert saved.exists()
        assert "payload bits" in out  # merged space rollup

    def test_serve_check_with_shards_passes(self, capsys):
        out = run_cli(
            capsys, "serve-check", "english", "--size", "3000",
            "--l", "8", "--shards", "3",
        )
        assert "sharded ladder: 3 shards" in out
        assert "serve-check PASS" in out

    def test_serve_check_shards_with_widen_policy(self, capsys):
        out = run_cli(
            capsys, "serve-check", "dna", "--size", "2000",
            "--l", "8", "--shards", "2", "--merge-policy", "widen",
            "--concurrency", "4",
        )
        assert "serve-check PASS" in out

    def test_shards_reject_fault_injection(self, capsys):
        assert main([
            "serve-check", "dna", "--size", "2000",
            "--l", "8", "--shards", "2", "--fault-rate", "0.5",
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_stats(self, capsys):
        out = run_cli(capsys, "stats", "english", "--size", "2000", "--l", "8")
        assert "H0:" in out
        assert "|PST_l|" in out

    def test_dataset_generation(self, capsys, tmp_path):
        out_file = tmp_path / "corpus.txt"
        run_cli(capsys, "dataset", "sources", "--size", "1000", "-o", str(out_file))
        assert len(out_file.read_text()) == 1000

    def test_experiment_figure7(self, capsys):
        out = run_cli(capsys, "experiment", "figure7", "--size", "4000")
        assert "Figure 7" in out
        assert "PASS" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestSelectivityCommand:
    def test_selectivity_output(self, capsys):
        out = run_cli(
            capsys, "selectivity", "english", "--size", "3000",
            "--l", "16", "--estimator", "mol", "the",
        )
        assert "occurrences" in out and "selectivity" in out

    @pytest.mark.parametrize("estimator", ["kvi", "mo", "moc", "mol", "molc"])
    def test_every_estimator_kind(self, capsys, estimator):
        out = run_cli(
            capsys, "selectivity", "dna", "--size", "2000",
            "--l", "8", "--estimator", estimator, "ACG",
        )
        assert "'ACG':" in out


class TestValidateCommand:
    def test_all_contracts_hold(self, capsys):
        out = run_cli(capsys, "validate", "dna", "--size", "2000", "--l", "8")
        assert "all contracts hold" in out
        assert "FMIndex" in out


class TestJsonOutput:
    def test_count_json(self, capsys):
        import json

        out = run_cli(
            capsys, "count", "dna", "--size", "2000", "--index", "fm",
            "--json", "AC", "GT",
        )
        payload = json.loads(out)
        assert set(payload) == {"AC", "GT"}
        assert all(isinstance(v, int) for v in payload.values())


class TestIngest:
    def test_create_append_count(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        out = run_cli(
            capsys, "ingest", str(corpus),
            "--append", "a=abracadabra", "--append", "b=banana",
            "--count", "ana",
        )
        assert "append 'a' -> wal seq 0" in out
        assert "'ana': [2, 2] (exact)" in out
        assert "2 document(s)" in out

    def test_compact_then_delete_json(self, capsys, tmp_path):
        import json

        corpus = tmp_path / "corpus"
        run_cli(
            capsys, "ingest", str(corpus), "--l", "8",
            "--append", "a=abracadabra", "--append", "b=banana",
            "--compact",
        )
        out = run_cli(
            capsys, "ingest", str(corpus), "--delete", "b", "--json",
        )
        payload = json.loads(out)
        assert payload["actions"] == [
            {"op": "delete", "name": "b", "seq": 2}
        ]
        assert payload["status"]["generation"] == 1
        assert payload["status"]["tombstones"] == 1

    def test_append_file(self, capsys, tmp_path):
        source = tmp_path / "doc.txt"
        source.write_text("from a file")
        out = run_cli(
            capsys, "ingest", str(tmp_path / "corpus"),
            "--append-file", f"doc={source}",
            "--count", "file",
        )
        assert "'file': [1, 1] (exact)" in out

    def test_bad_specs_error(self, capsys, tmp_path):
        assert main(["ingest", str(tmp_path / "c"), "--append", "nobody"]) == 1
        assert "NAME=BODY" in capsys.readouterr().err
        assert main(
            ["ingest", str(tmp_path / "c2"), "--append-file", "a=/no/such"]
        ) == 1
        assert "no such file" in capsys.readouterr().err


class TestSpace:
    def test_live_corpus_rollup(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        run_cli(
            capsys, "ingest", str(corpus), "--l", "8",
            "--append", "a=abracadabra", "--append", "b=banana",
            "--compact",
        )
        out = run_cli(capsys, "space", str(corpus))
        assert "LiveCorpus" in out
        assert "durable bytes:" in out
        assert "segments=" in out

    def test_live_corpus_rollup_json(self, capsys, tmp_path):
        import json

        corpus = tmp_path / "corpus"
        run_cli(
            capsys, "ingest", str(corpus), "--append", "a=abracadabra",
        )
        payload = json.loads(run_cli(capsys, "space", str(corpus), "--json"))
        assert payload["durable_bytes"]["wal"] > 0
        assert payload["status"]["documents"] == 1

    def test_saved_index_file(self, capsys, tmp_path):
        target = tmp_path / "index.bin"
        run_cli(
            capsys, "build", "dna", "--size", "2000",
            "--index", "cpst", "--l", "16", "-o", str(target),
        )
        out = run_cli(capsys, "space", str(target))
        assert "payload bits" in out

    def test_non_corpus_directory_errors(self, capsys, tmp_path):
        assert main(["space", str(tmp_path)]) == 1
        assert "manifest" in capsys.readouterr().err


class TestServeCheckLive:
    def test_probe_over_live_corpus(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        run_cli(
            capsys, "ingest", str(corpus), "--l", "8",
            "--append", "a=abracadabra abracadabra",
            "--append", "b=banana bandana banana",
            "--compact",
        )
        out = run_cli(capsys, "serve-check", "--live", str(corpus))
        assert "live ladder: generation 1" in out
        assert "serve-check PASS" in out

    def test_uncompacted_delta_is_served(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        run_cli(
            capsys, "ingest", str(corpus),
            "--append", "a=abracadabra abracadabra",
        )
        out = run_cli(capsys, "serve-check", "--live", str(corpus))
        assert "1 pending mutation(s)" in out
        assert "serve-check PASS" in out

    def test_live_excludes_other_modes(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        run_cli(capsys, "ingest", str(corpus), "--append", "a=xyz")
        assert main(["serve-check", "dna", "--live", str(corpus)]) == 1
        assert "drop the text" in capsys.readouterr().err
        assert main(
            ["serve-check", "--live", str(corpus), "--shards", "2"]
        ) == 1
        capsys.readouterr()
        assert main(["serve-check"]) == 1
        assert "needs a text source" in capsys.readouterr().err

    def test_empty_live_corpus_errors(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        run_cli(capsys, "ingest", str(corpus))
        assert main(["serve-check", "--live", str(corpus)]) == 1
        assert "no documents" in capsys.readouterr().err

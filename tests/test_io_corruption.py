"""Corruption-path tests for the checksummed persistence format (v2).

Every structural failure — flipped payload bytes, truncation at each
header boundary, a rewritten digest, trailing garbage — must surface as
:class:`IndexCorruptedError` *before* the unpickler runs; synthesized
version-1 files must keep loading (with a deprecation warning).
"""

from __future__ import annotations

import hashlib
import pickle

import pytest

import repro.io as io_mod
from repro import FMIndex
from repro.errors import IndexCorruptedError, ReproError
from repro.io import FORMAT_VERSION, MAGIC, load_index, save_index
from repro.textutil import Text

TEXT = Text("the quick brown fox jumps over the lazy dog " * 12)


@pytest.fixture
def saved(tmp_path):
    index = FMIndex(TEXT)
    path = save_index(index, tmp_path / "index.ridx")
    return index, path


def _header_length(raw: bytes) -> int:
    """Offset of the first payload byte in a v2 file."""
    name_length = int.from_bytes(raw[len(MAGIC) + 2 : len(MAGIC) + 4], "big")
    return len(MAGIC) + 2 + 2 + name_length + 8 + 32


class _ExplodingUnpickler:
    """Stand-in proving corrupted payloads never reach the unpickler."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("unpickler was invoked on a corrupted file")


class TestFormatV2:
    def test_writes_version_2_with_valid_digest(self, saved):
        _, path = saved
        raw = path.read_bytes()
        assert raw[: len(MAGIC)] == MAGIC
        assert int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 2], "big") == 2
        assert FORMAT_VERSION == 2
        header = _header_length(raw)
        payload = raw[header:]
        stored_digest = raw[header - 32 : header]
        assert hashlib.sha256(payload).digest() == stored_digest
        stored_length = int.from_bytes(raw[header - 40 : header - 32], "big")
        assert stored_length == len(payload)

    def test_roundtrip(self, saved):
        index, path = saved
        loaded = load_index(path)
        for pattern in ("the", "fox", "zebra"):
            assert loaded.count(pattern) == index.count(pattern)


class TestPayloadCorruption:
    def test_flipped_payload_byte_raises_before_unpickling(
        self, saved, monkeypatch
    ):
        _, path = saved
        raw = bytearray(path.read_bytes())
        header = _header_length(bytes(raw))
        monkeypatch.setattr(io_mod, "_RestrictedUnpickler", _ExplodingUnpickler)
        # Flip a byte at the start, middle and end of the payload.
        for offset in (header, (header + len(raw)) // 2, len(raw) - 1):
            corrupted = bytearray(raw)
            corrupted[offset] ^= 0x40
            path.write_bytes(bytes(corrupted))
            with pytest.raises(IndexCorruptedError, match="integrity"):
                load_index(path)

    def test_rewritten_digest_raises(self, saved, monkeypatch):
        _, path = saved
        raw = bytearray(path.read_bytes())
        header = _header_length(bytes(raw))
        raw[header - 32 : header] = hashlib.sha256(b"not the payload").digest()
        path.write_bytes(bytes(raw))
        monkeypatch.setattr(io_mod, "_RestrictedUnpickler", _ExplodingUnpickler)
        with pytest.raises(IndexCorruptedError, match="integrity"):
            load_index(path)

    def test_trailing_garbage_raises(self, saved):
        _, path = saved
        path.write_bytes(path.read_bytes() + b"\x00garbage")
        with pytest.raises(IndexCorruptedError, match="trailing"):
            load_index(path)


class TestTruncation:
    def test_truncation_at_every_header_boundary(self, saved):
        _, path = saved
        raw = path.read_bytes()
        header = _header_length(raw)
        # Every prefix length within the header, plus mid- and end-payload
        # cuts: all must fail loudly, never mis-parse silently.
        cuts = list(range(header + 1)) + [
            header + (len(raw) - header) // 2,
            len(raw) - 1,
        ]
        for cut in cuts:
            path.write_bytes(raw[:cut])
            with pytest.raises((IndexCorruptedError, ReproError)):
                load_index(path)

    def test_short_reads_name_the_missing_field(self, saved):
        _, path = saved
        raw = path.read_bytes()
        for cut, field in [
            (4, "magic"),
            (len(MAGIC) + 1, "format version"),
            (len(MAGIC) + 3, "name length"),
            (len(MAGIC) + 5, "class name"),
        ]:
            path.write_bytes(raw[:cut])
            with pytest.raises(IndexCorruptedError, match=field):
                load_index(path)


class TestVersion1Compat:
    def _write_v1(self, path, index):
        name = type(index).__name__.encode("ascii")
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write((1).to_bytes(2, "big"))
            handle.write(len(name).to_bytes(2, "big"))
            handle.write(name)
            pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def test_v1_file_still_loads_with_warning(self, tmp_path):
        index = FMIndex(TEXT)
        path = tmp_path / "legacy.ridx"
        self._write_v1(path, index)
        with pytest.warns(UserWarning, match="version 1"):
            loaded = load_index(path)
        for pattern in ("quick", "lazy", "absent!"):
            assert loaded.count(pattern) == index.count(pattern)

    def test_strict_mode_rejects_v1(self, tmp_path):
        index = FMIndex(TEXT)
        path = tmp_path / "legacy.ridx"
        self._write_v1(path, index)
        with pytest.raises(IndexCorruptedError, match="version 1"):
            load_index(path, strict=True)

    def test_strict_mode_accepts_v2(self, tmp_path):
        index = FMIndex(TEXT)
        path = save_index(index, tmp_path / "current.ridx")
        loaded = load_index(path, strict=True)
        assert loaded.count("quick") == index.count("quick")

    def test_resaving_v1_upgrades_to_v2(self, tmp_path):
        index = FMIndex(TEXT)
        legacy = tmp_path / "legacy.ridx"
        self._write_v1(legacy, index)
        with pytest.warns(UserWarning):
            loaded = load_index(legacy)
        upgraded = save_index(loaded, tmp_path / "upgraded.ridx")
        raw = upgraded.read_bytes()
        assert int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 2], "big") == 2
        load_index(upgraded)  # no warning machinery needed; must not raise


class TestRestrictedUnpickler:
    @pytest.mark.parametrize("evil", [getattr, setattr, breakpoint, eval, exec])
    def test_dangerous_builtins_rejected(self, evil):
        stream = pickle.dumps(evil)
        with pytest.raises(ReproError, match="refusing to unpickle"):
            io_mod._RestrictedUnpickler(io_mod._io.BytesIO(stream)).load()

    @pytest.mark.parametrize(
        "value", [slice(1, 5), range(3), complex(2, 3), frozenset({1})]
    )
    def test_safe_builtin_constructors_allowed(self, value):
        stream = pickle.dumps(value)
        assert io_mod._RestrictedUnpickler(io_mod._io.BytesIO(stream)).load() == value

    def test_foreign_module_rejected(self):
        import textwrap

        stream = pickle.dumps(textwrap.dedent)
        with pytest.raises(ReproError, match="refusing to unpickle"):
            io_mod._RestrictedUnpickler(io_mod._io.BytesIO(stream)).load()

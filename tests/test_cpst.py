"""Tests for the Compact Pruned Suffix Tree (paper Section 5).

Key properties (paper Theorems 8 and 10):
* exact counts whenever ``Count(P) >= l``;
* detection (``None``) whenever ``Count(P) < l``;
* space independent of edge-label mass.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pst import PrunedSuffixTree
from repro.core.cpst import CompactPrunedSuffixTree
from repro.core.interface import ErrorModel
from repro.errors import PatternError
from repro.suffixtree.pruned import PrunedSuffixTreeStructure
from repro.textutil import Text


def all_substrings(text: str, max_len: int):
    seen = set()
    for length in range(1, max_len + 1):
        for start in range(len(text) - length + 1):
            seen.add(text[start : start + length])
    return sorted(seen)


def assert_lower_sided(index, t: Text, patterns):
    l = index.threshold
    for pattern in patterns:
        true = t.count_naive(pattern)
        got = index.count_or_none(pattern)
        if true >= l:
            assert got == true, (pattern, true, got)
        else:
            assert got is None, (pattern, true, got)


INDEX_CLASSES = [CompactPrunedSuffixTree, PrunedSuffixTree]


@pytest.mark.parametrize("cls", INDEX_CLASSES)
class TestLowerSidedIndexes:
    def test_figure5_text(self, cls):
        # The paper's running example: banabananab with threshold 2.
        text = "banabananab"
        t = Text(text)
        index = cls(t, 2)
        assert_lower_sided(index, t, all_substrings(text, len(text)))

    @pytest.mark.parametrize("l", [2, 3, 4, 8])
    def test_exhaustive_abracadabra(self, cls, l):
        text = "abracadabra" * 3
        t = Text(text)
        assert_lower_sided(cls(t, l), t, all_substrings(text, 8))

    @pytest.mark.parametrize("l", [2, 4, 16])
    def test_unary_text(self, cls, l):
        n = 40
        t = Text("a" * n)
        index = cls(t, l)
        for k in range(1, n + 1):
            true = n - k + 1
            got = index.count_or_none("a" * k)
            assert got == (true if true >= l else None), k

    def test_random_text(self, cls, rng):
        chars = list("abcd")
        text = "".join(rng.choice(chars, size=600))
        t = Text(text)
        index = cls(t, 8)
        patterns = set(all_substrings(text[:80], 3))
        for length in (2, 4, 7):
            for _ in range(25):
                start = int(rng.integers(0, len(text) - length))
                patterns.add(text[start : start + length])
                patterns.add("".join(rng.choice(chars, size=length)))
        assert_lower_sided(index, t, sorted(patterns))

    def test_absent_symbols(self, cls):
        index = cls("aabbaabb", 2)
        assert index.count_or_none("z") is None
        assert index.count_or_none("az") is None
        assert index.count("z") == 0

    def test_empty_pattern_rejected(self, cls):
        with pytest.raises(PatternError):
            cls("abc", 2).count("")

    def test_count_wrapper(self, cls):
        t = Text("abab")
        index = cls(t, 2)
        assert index.count("ab") == 2
        assert index.count("ba") == 0  # occurs once: below threshold -> 0

    def test_is_reliable(self, cls):
        index = cls("abab", 2)
        assert index.is_reliable("ab")
        assert not index.is_reliable("ba")

    def test_tiny_text(self, cls):
        index = cls("ab", 8)
        assert index.count_or_none("a") is None
        assert index.count_or_none("ab") is None

    def test_error_model(self, cls):
        assert cls("abc", 2).error_model is ErrorModel.LOWER_SIDED


class TestCPSTInternals:
    def test_s_string_symbol_counts(self):
        # Invariant: #occurrences of c in S == number of nodes whose path
        # label starts with c (every such node is the image of one ISL).
        text = "mississippi" * 4
        t = Text(text)
        cpst = CompactPrunedSuffixTree(t, 3)
        for c in range(1, t.sigma):
            in_s = cpst._s.rank(c, len(cpst._s))
            assert in_s == int(cpst._c[c + 1] - cpst._c[c]), c

    def test_s_has_one_hash_per_node(self):
        cpst = CompactPrunedSuffixTree("banabananab", 2)
        assert cpst._s.rank(cpst._hash_sym, len(cpst._s)) == cpst.num_nodes

    def test_cnt_matches_structure(self):
        text = "abracadabra" * 3
        structure = PrunedSuffixTreeStructure(text, 2)
        cpst = CompactPrunedSuffixTree.from_structure(structure)
        for node in structure.nodes:
            z = structure.subtree_last_id(node)
            assert cpst._cnt(node.preorder_id, z) == node.count

    def test_from_structure_equivalent(self):
        text = "banana" * 10
        structure = PrunedSuffixTreeStructure(text, 4)
        a = CompactPrunedSuffixTree.from_structure(structure)
        b = CompactPrunedSuffixTree(text, 4)
        t = Text(text)
        for pattern in all_substrings("banana", 6):
            assert a.count_or_none(pattern) == b.count_or_none(pattern)


class TestSpaceComparison:
    def test_cpst_has_no_label_term(self):
        # A text with long repeated substrings blows up PST labels but not
        # CPST (the paper's 'sources' phenomenon).
        block = "qwertyuiopasdfghjklzxcvbnm" * 4
        text = (block + "0") * 12
        structure = PrunedSuffixTreeStructure(text, 4)
        pst = PrunedSuffixTree.from_structure(structure)
        cpst = CompactPrunedSuffixTree.from_structure(structure)
        assert pst.space_report().payload_bits > 4 * cpst.space_report().payload_bits

    def test_space_shrinks_with_l(self):
        text = "the quick brown fox jumps over the lazy dog " * 30
        sizes = [
            CompactPrunedSuffixTree(text, l).space_report().payload_bits
            for l in (2, 8, 32, 128)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_reports_have_expected_components(self):
        rep = CompactPrunedSuffixTree("banana" * 5, 2).space_report()
        assert set(rep.components) == {"S_link_string", "G_corrections", "C_array"}
        rep = PrunedSuffixTree("banana" * 5, 2).space_report()
        assert set(rep.components) == {"nodes", "edge_labels"}


@settings(max_examples=50, deadline=None)
@given(
    st.text(alphabet="abc", min_size=1, max_size=120),
    st.text(alphabet="abc", min_size=1, max_size=5),
    st.sampled_from([2, 3, 4, 8]),
)
def test_property_cpst_lower_sided(text, pattern, l):
    t = Text(text)
    cpst = CompactPrunedSuffixTree(t, l)
    true = t.count_naive(pattern)
    got = cpst.count_or_none(pattern)
    if true >= l:
        assert got == true
    else:
        assert got is None


@settings(max_examples=50, deadline=None)
@given(
    st.text(alphabet="ab", min_size=1, max_size=100),
    st.text(alphabet="ab", min_size=1, max_size=5),
    st.sampled_from([2, 4, 6]),
)
def test_property_pst_cpst_agree(text, pattern, l):
    structure = PrunedSuffixTreeStructure(Text(text), l)
    pst = PrunedSuffixTree.from_structure(structure)
    cpst = CompactPrunedSuffixTree.from_structure(structure)
    assert pst.count_or_none(pattern) == cpst.count_or_none(pattern)


class TestFrequentMining:
    def test_iter_frequent_counts_are_exact(self):
        text = "banabananab"
        t = Text(text)
        pst = PrunedSuffixTree(t, 2)
        for substring, count in pst.iter_frequent():
            assert t.count_naive(substring) == count, substring
            assert count >= 2

    def test_all_right_maximal_frequent_substrings_enumerated(self):
        text = "abracadabra" * 2
        t = Text(text)
        l = 3
        pst = PrunedSuffixTree(t, l)
        enumerated = {s for s, _ in pst.iter_frequent()}
        # Every frequent substring must be a prefix of an enumerated one.
        for length in range(1, 8):
            for start in range(len(text) - length + 1):
                s = text[start : start + length]
                if t.count_naive(s) >= l:
                    assert any(e.startswith(s) for e in enumerated), s

    def test_most_frequent_ordering(self):
        pst = PrunedSuffixTree("abababab", 2)
        top = pst.most_frequent(3)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_min_length_filter(self):
        pst = PrunedSuffixTree("abababab", 2)
        assert all(len(s) >= 2 for s, _ in pst.iter_frequent(min_length=2))

"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.textutil import (
    Text,
    absent_patterns,
    adversarial_patterns,
    mixed_workload,
    random_patterns,
    sample_from_text,
)


class TestSampleFromText:
    def test_patterns_occur(self):
        text = "the quick brown fox"
        for pattern in sample_from_text(text, 4, 20, seed=1):
            assert pattern in text
            assert len(pattern) == 4

    def test_deterministic(self):
        assert sample_from_text("abcdef" * 10, 3, 5, seed=2) == sample_from_text(
            "abcdef" * 10, 3, 5, seed=2
        )

    def test_accepts_text_objects(self):
        t = Text("banana")
        assert all(p in "banana" for p in sample_from_text(t, 2, 5))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            sample_from_text("abc", 0, 1)
        with pytest.raises(InvalidParameterError):
            sample_from_text("abc", 4, 1)


class TestRandomAndAbsent:
    def test_random_patterns_shape(self):
        patterns = random_patterns("xy", 5, 7, seed=3)
        assert len(patterns) == 7
        assert all(len(p) == 5 and set(p) <= {"x", "y"} for p in patterns)

    def test_random_requires_alphabet(self):
        with pytest.raises(InvalidParameterError):
            random_patterns("", 3, 1)

    def test_absent_patterns_are_absent(self):
        text = "abcabcabc"
        for pattern in absent_patterns(text, 4, 10, seed=1):
            assert pattern not in text

    def test_absent_unfindable_raises(self):
        # Single-symbol alphabet: every string a^k <= text length occurs.
        with pytest.raises(InvalidParameterError):
            absent_patterns("aaaaaaaa", 2, 3, max_tries=3)


class TestAdversarialAndMixed:
    def test_adversarial_includes_key_shapes(self):
        text = "aabbbba"
        patterns = adversarial_patterns(text)
        assert text in patterns  # whole text
        assert "bbbb" in patterns  # longest unary run
        assert "bbbbb" in patterns  # run + 1 (absent)
        assert text + text[0] in patterns  # one-past-the-end

    def test_mixed_workload_dedup_sorted(self):
        workload = mixed_workload("abcabc" * 20, lengths=(2, 4), per_length=10)
        assert workload == sorted(set(workload))
        assert len(workload) > 5

    def test_mixed_workload_respects_text_length(self):
        # Lengths longer than the text are skipped, not an error.
        workload = mixed_workload("ab", lengths=(1, 50), per_length=4)
        assert all(len(p) <= 3 for p in workload)

    def test_indexes_survive_adversarial_patterns(self):
        from repro import ApproxIndex, CompactPrunedSuffixTree, FMIndex

        text = "mississippi" * 5
        t = Text(text)
        fm = FMIndex(t)
        apx = ApproxIndex(t, 8)
        cpst = CompactPrunedSuffixTree(t, 8)
        for pattern in adversarial_patterns(t):
            true = t.count_naive(pattern)
            assert fm.count(pattern) == true
            assert true <= apx.count(pattern) <= true + 7
            got = cpst.count_or_none(pattern)
            assert got == (true if true >= 8 else None)

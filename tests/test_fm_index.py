"""Tests for the exact FM-index baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fm import FMIndex
from repro.core.interface import ErrorModel
from repro.errors import PatternError
from repro.textutil import Text


@pytest.fixture(params=["huffman", "matrix"])
def build(request):
    def make(text):
        return FMIndex(text, wavelet=request.param)

    return make


class TestFMIndexCounting:
    def test_abracadabra(self, build):
        fm = build("abracadabra")
        assert fm.count("abra") == 2
        assert fm.count("a") == 5
        assert fm.count("bra") == 2
        assert fm.count("abracadabra") == 1
        assert fm.count("cad") == 1
        assert fm.count("zzz") == 0
        assert fm.count("abraz") == 0

    def test_overlapping(self, build):
        fm = build("aaaa")
        assert fm.count("aa") == 3
        assert fm.count("aaa") == 2

    def test_pattern_longer_than_text(self, build):
        fm = build("ab")
        assert fm.count("aba") == 0

    def test_single_char_text(self, build):
        fm = build("x")
        assert fm.count("x") == 1
        assert fm.count("xx") == 0

    def test_empty_pattern_rejected(self, build):
        with pytest.raises(PatternError):
            build("abc").count("")

    def test_non_string_pattern_rejected(self, build):
        with pytest.raises(PatternError):
            build("abc").count(b"a")  # type: ignore[arg-type]

    def test_count_range_shape(self, build):
        fm = build("mississippi")
        first, last = fm.count_range("ssi")
        assert last - first == 2
        assert fm.count_range("xyz") == (0, 0)

    def test_random_against_naive(self, build, rng):
        chars = list("abc")
        text = "".join(rng.choice(chars, size=300))
        t = Text(text)
        fm = build(t)
        for length in (1, 2, 3, 5, 8):
            for _ in range(20):
                start = int(rng.integers(0, len(text) - length))
                pat = text[start : start + length]
                assert fm.count(pat) == t.count_naive(pat), pat
        # patterns unlikely to occur
        for pat in ("cccacccbcc", "abababababab"):
            assert fm.count(pat) == t.count_naive(pat)


class TestFMIndexInterface:
    def test_metadata(self):
        fm = FMIndex("banana")
        assert fm.error_model is ErrorModel.EXACT
        assert fm.threshold == 1
        assert fm.text_length == 6
        assert fm.is_reliable("an")

    def test_space_report(self):
        fm = FMIndex("banana" * 50)
        rep = fm.space_report()
        assert rep.payload_bits > 0
        assert "bwt_wavelet" in rep.components
        assert rep.total_bits >= rep.payload_bits

    def test_huffman_smaller_on_skewed_text(self):
        text = "a" * 2000 + "bcdefgh" * 10
        small = FMIndex(text, wavelet="huffman").space_report().payload_bits
        big = FMIndex(text, wavelet="matrix").space_report().payload_bits
        assert small < big


@settings(max_examples=40, deadline=None)
@given(
    st.text(alphabet="ab", min_size=1, max_size=120),
    st.text(alphabet="ab", min_size=1, max_size=6),
)
def test_property_fm_exact(text, pattern):
    t = Text(text)
    assert FMIndex(t).count(pattern) == t.count_naive(pattern)

"""Differential suite for the hot tier: every answer against brute force.

A seeded Zipfian query log is driven through serving planes with the hot
tier attached, and *every* answer is checked against the naive
ground-truth count:

- an ``EXACT`` (or exact-merged) answer must equal the truth;
- any other answer must be an interval that contains the truth;

across shard counts k ∈ {1, 2, 4}, both merge policies, and epoch bumps
(content-preserving ``bump_epoch`` mid-stream for the sharded plane, real
appends/deletes/compactions for the live corpus). The suite also pins the
operational claim: under a skewed log the hot tier actually absorbs the
fan-out (short-circuits fire) instead of merely being sound.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.interface import ErrorModel
from repro.hot import HotPatternTier, with_hot_tier
from repro.service import ResilientEstimator, TextStatsEstimator, Tier
from repro.shard import ShardPlan, build_sharded
from repro.textutil import Text

SEED = 20260809


def _documents(n_docs: int = 12, seed: int = SEED):
    rng = random.Random(seed)
    alphabet = "abracdbn_ "
    docs = []
    for i in range(n_docs):
        body = "".join(
            rng.choice(alphabet) for _ in range(rng.randint(120, 260))
        )
        # Salt in a handful of guaranteed-hot substrings so the log's
        # head has real occurrences to verify.
        body += " abracadabra banana" * rng.randint(1, 3)
        docs.append((f"doc{i}", body))
    return docs


def _zipf_log(
    docs, num_queries: int = 600, distinct: int = 40,
    exponent: float = 1.2, seed: int = SEED,
):
    """A Zipf(``exponent``) query log over within-document substrings."""
    rng = np.random.default_rng(seed)
    bodies = [body for _, body in docs]
    universe = []
    for _ in range(distinct):
        body = bodies[int(rng.integers(0, len(bodies)))]
        length = int(rng.integers(3, 11))
        start = int(rng.integers(0, len(body) - length + 1))
        universe.append(body[start : start + length])
    weights = 1.0 / np.arange(1, distinct + 1) ** exponent
    weights /= weights.sum()
    picks = rng.choice(distinct, size=num_queries, p=weights)
    return [universe[i] for i in picks]


def _truth(docs, pattern: str) -> int:
    """Overlapping occurrence count (``str.count`` skips overlaps)."""
    return sum(
        sum(
            body.startswith(pattern, i)
            for i in range(len(body) - len(pattern) + 1)
        )
        for _, body in docs
    )


class TestShardedDifferential:
    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("policy", ["split", "widen"])
    def test_every_answer_contains_the_truth(self, k, policy):
        docs = _documents()
        plan = ShardPlan.for_documents(docs, k)
        estimator, _ = build_sharded(plan, "cpst", l=8, policy=policy)
        store = HotPatternTier.from_documents(docs)
        estimator.attach_hot(store)
        log = _zipf_log(docs)
        bump_at = {len(log) // 3, 2 * len(log) // 3}
        for i, pattern in enumerate(log):
            if i in bump_at:
                # A compaction-shaped invalidation: content unchanged,
                # every verified entry demoted until re-verified.
                store.bump_epoch()
            answer = estimator.merged_count(pattern)
            truth = _truth(docs, pattern)
            assert answer.lo <= truth <= answer.hi, (
                pattern, answer.lo, answer.hi, truth,
            )
            if answer.exact:
                assert answer.count == truth, (pattern, answer.count, truth)
        # The operational half: a skewed log must actually hit the store.
        stats = store.stats
        assert stats.fanouts_skipped > 0
        assert stats.exact_hits > 0

    @pytest.mark.slow
    def test_process_batch_path_matches_single_and_skips_fanouts(self):
        from repro.shard import build_process_sharded

        docs = _documents(n_docs=8)
        plan = ShardPlan.for_documents(docs, 2)
        estimator, _ = build_process_sharded(plan, "cpst", l=8)
        with estimator:
            store = HotPatternTier.from_documents(docs)
            estimator.attach_hot(store)
            log = _zipf_log(docs, num_queries=120, distinct=20)
            # Warm pass (verifies the head), then a batch pass over the
            # same log: the batch must return one answer per query, in
            # order, each identical to the single-query path, with the
            # warm head short-circuited out of the worker fan-out.
            for pattern in log:
                estimator.merged_count(pattern)
            skipped_before = store.stats.fanouts_skipped
            merged = estimator.merged_count_many(log)
            assert len(merged) == len(log)
            for pattern, answer in zip(log, merged):
                single = estimator.merged_count(pattern)
                assert (answer.lo, answer.hi) == (single.lo, single.hi)
                truth = _truth(docs, pattern)
                assert answer.lo <= truth <= answer.hi
            assert store.stats.fanouts_skipped > skipped_before


class TestLiveCorpusDifferential:
    def test_hot_answers_track_a_mutating_corpus(self, tmp_path):
        from repro.live import LiveCorpus

        docs = _documents(n_docs=6)
        corpus = LiveCorpus.create(tmp_path / "corpus", l=8)
        try:
            for name, body in docs:
                corpus.append(name, body)
            store = HotPatternTier.from_documents(
                corpus.documents().items()
            )
            corpus.attach_hot(store)
            text = Text.from_rows(
                list(corpus.documents().values()),
                separator=corpus.config.separator,
            )
            service, rung = with_hot_tier(
                ResilientEstimator(
                    [
                        Tier(corpus, "live"),
                        Tier(TextStatsEstimator(text), "stats",
                             always_available=True),
                    ],
                    deadline_seconds=2.0,
                ),
                store,
            )
            log = _zipf_log(docs, num_queries=300, distinct=25)
            third = len(log) // 3
            # The live ladder serves merged intervals (never flagged
            # reliable), so exact counts enter the store the way the
            # sharded and daemon planes feed them: verified against the
            # current generation. The head of the log is pre-verified
            # here; the corpus mutations below must demote every one.
            for pattern in set(log):
                store.observe_exact(
                    pattern,
                    _truth(list(corpus.documents().items()), pattern),
                )

            def check(pattern):
                outcome = service.query(pattern)
                truth = _truth(
                    list(corpus.documents().items()), pattern
                )
                if outcome.tier != rung.name:
                    return
                if outcome.error_model is ErrorModel.EXACT:
                    assert outcome.count == truth, (pattern, outcome.count)
                else:
                    assert outcome.error_model is ErrorModel.UPPER_BOUND
                    assert outcome.count >= truth, (pattern, outcome.count)

            for pattern in log[:third]:
                check(pattern)
            assert store.stats.exact_hits > 0
            # Mutations mid-stream: every verified entry must demote and
            # the widened intervals must still contain the new truth.
            corpus.append("late", "abracadabra banana " * 4)
            assert store.stats.demotions > 0
            for pattern in log[third : 2 * third]:
                check(pattern)
            corpus.compact()
            corpus.delete("late")
            for pattern in log[2 * third :]:
                check(pattern)
            assert store.stats.hits > 0
        finally:
            corpus.close()

"""Unit tests for the concurrent serving front (repro.service.server).

Admission control and the token bucket run on ManualClock; tests that
exercise real threads keep workloads tiny so the suite stays fast.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    InvalidParameterError,
    PatternError,
    ServerClosedError,
)
from repro.service import (
    AdmissionController,
    Bulkhead,
    CancellableDeadline,
    Deadline,
    LatencyTracker,
    ManualClock,
    QueryOutcome,
    QueryServer,
    ShedOutcome,
    Tier,
    TokenBucket,
    build_default_ladder,
    run_concurrent_probe,
)
from repro.service.tiers import TextStatsEstimator
from repro.textutil import Text

TEXT = Text("abracadabra_the_quick_brown_fox_" * 30)
L = 8


def make_server(**kwargs):
    service = build_default_ladder(TEXT, L, deadline_seconds=5.0)
    return QueryServer(service, **kwargs)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_admits_up_to_capacity_then_sheds(self):
        ctrl = AdmissionController(max_concurrent=2, max_waiting=0)
        assert ctrl.admit() is None
        assert ctrl.admit() is None
        assert ctrl.admit() == "admission queue full"
        ctrl.release()
        assert ctrl.admit() is None

    def test_expired_deadline_is_never_queued(self):
        clock = ManualClock()
        ctrl = AdmissionController(max_concurrent=1, max_waiting=4, max_wait=1.0)
        assert ctrl.admit() is None
        spent = Deadline(0.0, clock)
        assert ctrl.admit(spent) == "admission queue full"

    def test_draining_sheds_everything(self):
        ctrl = AdmissionController(max_concurrent=4)
        ctrl.set_draining(True)
        assert ctrl.admit() == "draining"
        stats = ctrl.stats()
        assert stats.drained == 1 and stats.shed == 1

    def test_release_without_admit_raises(self):
        ctrl = AdmissionController()
        with pytest.raises(InvalidParameterError):
            ctrl.release()

    def test_waiter_proceeds_when_slot_frees(self):
        ctrl = AdmissionController(max_concurrent=1, max_waiting=1, max_wait=5.0)
        assert ctrl.admit() is None
        result = {}

        def waiter():
            result["reason"] = ctrl.admit()

        thread = threading.Thread(target=waiter)
        thread.start()
        # Give the waiter time to enter the queue, then free the slot.
        deadline = threading.Event()
        deadline.wait(0.05)
        ctrl.release()
        thread.join(timeout=5.0)
        assert result["reason"] is None
        assert ctrl.stats().admitted == 2

    def test_wait_idle_reports_drain(self):
        ctrl = AdmissionController(max_concurrent=2)
        assert ctrl.admit() is None
        assert not ctrl.wait_idle(timeout=0.01)
        ctrl.release()
        assert ctrl.wait_idle(timeout=1.0)


class TestBulkhead:
    def _tier(self, name):
        return Tier(TextStatsEstimator(TEXT), name)

    def test_caps_and_counts_saturation(self):
        tier = self._tier("cpst")
        bulkhead = Bulkhead({"cpst": 2})
        assert bulkhead.acquire(tier)
        assert bulkhead.acquire(tier)
        assert not bulkhead.acquire(tier)
        assert bulkhead.saturation["cpst"] == 1
        bulkhead.release(tier)
        assert bulkhead.acquire(tier)

    def test_unlisted_tier_unbounded_by_default(self):
        tier = self._tier("stats")
        bulkhead = Bulkhead({"cpst": 1})
        for _ in range(50):
            assert bulkhead.acquire(tier)

    def test_default_limit_applies_to_unlisted(self):
        tier = self._tier("apx")
        bulkhead = Bulkhead({}, default_limit=1)
        assert bulkhead.acquire(tier)
        assert not bulkhead.acquire(tier)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Bulkhead({"cpst": 0})
        with pytest.raises(InvalidParameterError):
            Bulkhead({}, default_limit=0)


class TestLatencyTracker:
    def test_percentile_needs_min_samples(self):
        tracker = LatencyTracker()
        tracker.record("cpst", 0.5)
        assert tracker.percentile("cpst", 95.0) is None
        assert tracker.percentile("cpst", 95.0, min_samples=1) == 0.5

    def test_percentile_ranks(self):
        tracker = LatencyTracker()
        for ms in range(1, 11):
            tracker.record("apx", ms / 1000.0)
        assert tracker.percentile("apx", 0.0) == pytest.approx(0.001)
        assert tracker.percentile("apx", 100.0) == pytest.approx(0.010)

    def test_window_evicts_old_samples(self):
        tracker = LatencyTracker(window=4)
        for _ in range(10):
            tracker.record("t", 1.0)
        for _ in range(4):
            tracker.record("t", 2.0)
        assert tracker.percentile("t", 0.0, min_samples=1) == 2.0


class TestCancellableDeadline:
    def test_cancel_is_sticky_and_checks_fail(self):
        cdl = CancellableDeadline(None)
        assert not cdl.expired()
        cdl.cancel()
        assert cdl.cancelled and cdl.expired()
        assert cdl.remaining() == 0.0
        with pytest.raises(Exception, match="cancelled"):
            cdl.check()

    def test_from_deadline_inherits_budget(self):
        clock = ManualClock()
        base = Deadline(2.0, clock)
        clock.advance(0.5)
        cdl = CancellableDeadline.from_deadline(base)
        assert cdl.remaining() == pytest.approx(1.5)
        unbounded = CancellableDeadline.from_deadline(Deadline(None, clock))
        assert unbounded.remaining() == float("inf")


class TestQueryServer:
    def test_serves_and_counts(self):
        with make_server() as server:
            outcome = server.query("abra")
            assert isinstance(outcome, QueryOutcome)
            assert outcome.count == TEXT.count_naive("abra")
            assert not outcome.shed
            stats = server.stats()
            assert stats.served == 1 and stats.shed == 0

    def test_rejects_bad_patterns(self):
        with make_server() as server:
            with pytest.raises(PatternError):
                server.query("")

    def test_rate_limit_sheds_with_sound_answer(self):
        clock = ManualClock()
        with make_server(rate=1.0, burst=1.0, clock=clock) as server:
            first = server.query("abra")
            assert isinstance(first, QueryOutcome)
            second = server.query("abra")
            assert isinstance(second, ShedOutcome)
            assert second.reason == "rate limited"
            assert second.tier == "stats"
            # The shed answer is still a sound upper bound.
            assert second.contract_holds(TEXT.count_naive("abra"), len(TEXT))
            assert server.stats().shed == 1

    def test_draining_sheds_then_close_raises(self):
        server = make_server()
        server.drain()
        outcome = server.query("abra")
        assert isinstance(outcome, ShedOutcome) and outcome.reason == "draining"
        server.close()
        with pytest.raises(ServerClosedError):
            server.query("abra")

    def test_requires_always_available_tier(self):
        from repro.core import CompactPrunedSuffixTree
        from repro.service import ResilientEstimator

        bare = ResilientEstimator([Tier(CompactPrunedSuffixTree(TEXT, L), "cpst")])
        with pytest.raises(InvalidParameterError, match="always-available"):
            QueryServer(bare)

    def test_bulkhead_saturation_degrades_not_blocks(self):
        # A one-slot cpst bulkhead held by the test forces queries past
        # the primary tier without blocking.
        with make_server(bulkhead_limits={"cpst": 1}) as server:
            cpst = server.service.tiers[0]
            assert server._bulkhead.acquire(cpst)
            try:
                outcome = server.query("abra")
            finally:
                server._bulkhead.release(cpst)
            assert isinstance(outcome, QueryOutcome)
            assert outcome.tier != "cpst"
            assert ("cpst", "skipped: bulkhead saturated") in outcome.failures

    def test_hedged_mode_returns_valid_answers(self):
        with make_server(hedge_after=0.2) as server:
            for pattern in ("abra", "quick", "zzz_absent"):
                outcome = server.query(pattern)
                assert isinstance(outcome, QueryOutcome)
                assert outcome.contract_holds(
                    TEXT.count_naive(pattern), len(TEXT)
                )

    def test_hedge_fires_when_primary_stalls(self):
        # A primary that blocks until released: the hedge timer must fire
        # and the next tier must win without waiting for the primary.
        release = threading.Event()

        class StallingEstimator(TextStatsEstimator):
            def count(self, pattern):
                release.wait(5.0)
                return super().count(pattern)

        from repro.service import ResilientEstimator

        service = ResilientEstimator(
            [
                Tier(StallingEstimator(TEXT), "slow"),
                Tier(TextStatsEstimator(TEXT), "stats", always_available=True),
            ],
            deadline_seconds=10.0,
        )
        try:
            with QueryServer(service, hedge_after=0.05) as server:
                outcome = server.query("abra")
                assert outcome.tier == "stats"
                assert outcome.hedged
                assert server.stats().hedges_fired >= 1
        finally:
            release.set()

    def test_concurrent_probe_loses_nothing(self):
        with make_server(max_concurrent=4, max_waiting=64, max_wait=2.0) as server:
            patterns = ["abra", "quick", "fox", "zzz", "the_"] * 8
            report = run_concurrent_probe(
                server, patterns, concurrency=8
            )
            assert report.total == len(patterns)
            assert report.answered == len(patterns)
            assert len(report.outcomes) == len(patterns)
            # Exactly-once: per-pattern reply counts match the workload.
            from collections import Counter

            sent = Counter(patterns)
            got = Counter(outcome.pattern for outcome in report.outcomes)
            assert got == sent

    def test_engine_columns_populated(self):
        with make_server() as server:
            report = run_concurrent_probe(
                server, ["abracadabra", "quick_brown"], concurrency=2
            )
            by_name = {tier.name: tier for tier in report.tiers}
            assert by_name["cpst"].automaton_steps > 0
            assert by_name["cpst"].rank_calls > 0
            assert "steps" in report.format()

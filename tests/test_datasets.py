"""Tests for the synthetic corpus generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    dataset_names,
    generate,
    generate_dblp,
    generate_dna,
    generate_english,
    generate_sources,
    load,
)
from repro.errors import InvalidParameterError
from repro.suffixtree.pruned import PrunedSuffixTreeStructure
from repro.textutil import zeroth_order_entropy

GENERATOR_FUNCS = [generate_dna, generate_english, generate_dblp, generate_sources]


@pytest.mark.parametrize("gen", GENERATOR_FUNCS)
class TestGeneratorContracts:
    def test_exact_size(self, gen):
        for size in (1, 100, 5000):
            assert len(gen(size, seed=1)) == size

    def test_deterministic(self, gen):
        assert gen(2000, seed=7) == gen(2000, seed=7)

    def test_seed_changes_output(self, gen):
        assert gen(2000, seed=1) != gen(2000, seed=2)

    def test_rejects_empty(self, gen):
        with pytest.raises(InvalidParameterError):
            gen(0)


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["dblp", "dna", "english", "sources"]

    def test_generate_dispatch(self):
        assert generate("dna", 500) == generate_dna(500, 0)

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            generate("proteins", 100)

    def test_load_returns_text(self):
        t = load("english", 3000)
        assert len(t) == 3000
        assert t.sigma > 2


class TestCorpusShapes:
    """The statistical properties DESIGN.md promises the stand-ins have."""

    def test_dna_alphabet_small(self):
        text = generate_dna(20000, seed=3)
        sigma = len(set(text))
        assert 4 <= sigma <= 18
        core = sum(text.count(b) for b in "ACGT")
        assert core > 0.9 * len(text)

    def test_english_alphabet_moderate(self):
        text = generate_english(20000, seed=3)
        assert 25 <= len(set(text)) <= 70
        assert " the " in text.lower()

    def test_dblp_is_structured(self):
        text = generate_dblp(20000, seed=3)
        assert text.count("<author>") > 10
        assert text.count("</year>") > 10

    def test_sources_have_long_repeats(self):
        # Whole template bodies repeat: the long-label regime.
        text = generate_sources(30000, seed=3)
        marker = "if (self->items == NULL) {"
        assert text.count(marker) >= 2

    def test_entropy_ordering(self):
        # dna (4-ish symbols) has lower H0 than english.
        dna_h = zeroth_order_entropy(generate_dna(20000, seed=1))
        english_h = zeroth_order_entropy(generate_english(20000, seed=1))
        assert dna_h < english_h

    def test_sources_label_mass_dominates(self):
        """On sources the summed PST edge-label length should dwarf the node
        count (paper Figure 7's signature for this corpus)."""
        text = generate_sources(20000, seed=1)
        structure = PrunedSuffixTreeStructure(text, 8)
        assert structure.total_label_length() > 10 * structure.num_nodes

    def test_dblp_pst_is_small(self):
        """Structured XML prunes hard: m well below n/l * 2."""
        size = 20000
        structure = PrunedSuffixTreeStructure(generate_dblp(size, seed=1), 64)
        assert structure.num_nodes < 2 * size / 64

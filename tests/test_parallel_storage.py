"""Differential tests for the buffer-backed storage protocol and segments.

Every succinct structure and every index family must answer queries
bit-identically after a round trip through ``export_storage`` →
:class:`~repro.parallel.SegmentWriter` → :meth:`~repro.parallel.Segment.parse`
→ ``attach`` — and the attached object must be a **zero-copy view** over
the segment buffer (read-only, sharing memory with the blob, no payload
reallocation).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.fm import FMIndex
from repro.bits import (
    BitVector,
    EliasFano,
    HuffmanWaveletTree,
    IntVector,
    RRRBitVector,
    SparseBitVector,
    WaveletMatrix,
)
from repro.bits.storage import StorageBundle, attach_structure
from repro.core.approx import ApproxIndex
from repro.core.approx_ef import ApproxIndexEF
from repro.core.combined import CombinedIndex
from repro.core.cpst import CompactPrunedSuffixTree
from repro.errors import (
    IndexCorruptedError,
    InvalidParameterError,
    ReproError,
)
from repro.parallel import (
    ALIGNMENT,
    Segment,
    SegmentWriter,
    write_estimator_segment,
)
from repro.textutil import mixed_workload

from conftest import naive_count


def _roundtrip(obj, key: str = "s"):
    """Export → segment bytes → parse → attach; returns (attached, blob)."""
    writer = SegmentWriter("test")
    writer.add(key, obj)
    blob = writer.to_bytes()
    segment = Segment.parse(blob)
    return segment.attach(key), blob


def _segment_views(blob: bytes, key: str = "s"):
    """All arrays of the attached bundle, as resolved views."""
    segment = Segment.parse(blob)
    bundle = segment.bundle(key)
    return [arr for _, arr in bundle.walk_arrays()]


class TestBitStructureDifferential:
    """attach(segment) must be query-identical to the owning structure."""

    def _bits(self, rng, n=700, p=0.4):
        return (rng.random(n) < p).astype(np.uint8)

    def test_bitvector(self, rng):
        bits = self._bits(rng)
        owning = BitVector(bits)
        attached, _ = _roundtrip(owning)
        n = len(bits)
        assert all(attached.rank1(i) == owning.rank1(i) for i in range(n + 1))
        ones = owning.rank1(n)
        assert all(
            attached.select1(k) == owning.select1(k) for k in range(1, ones + 1)
        )
        assert all(attached[i] == owning[i] for i in range(n))

    def test_rrr(self, rng):
        bits = self._bits(rng, p=0.15)
        owning = RRRBitVector(bits)
        attached, _ = _roundtrip(owning)
        n = len(bits)
        assert all(attached.rank1(i) == owning.rank1(i) for i in range(n + 1))
        ones = owning.rank1(n)
        assert all(
            attached.select1(k) == owning.select1(k) for k in range(1, ones + 1)
        )

    def test_eliasfano(self, rng):
        values = np.sort(rng.integers(0, 10_000, size=400))
        owning = EliasFano(values, universe=10_000)
        attached, _ = _roundtrip(owning)
        assert list(attached) == list(owning)
        for x in rng.integers(0, 10_000, size=50):
            assert attached.predecessor(int(x)) == owning.predecessor(int(x))
            assert attached.successor(int(x)) == owning.successor(int(x))

    def test_sparse_bitvector(self, rng):
        positions = np.unique(rng.integers(0, 2_000, size=120))
        owning = SparseBitVector(positions, length=2_000)
        attached, _ = _roundtrip(owning)
        for i in range(0, 2_001, 7):
            assert attached.rank1(i) == owning.rank1(i)

    def test_intvector(self, rng):
        values = rng.integers(0, 1 << 17, size=500)
        owning = IntVector.from_array(values)
        attached, _ = _roundtrip(owning)
        assert list(attached) == list(owning)
        idx = rng.integers(0, 500, size=64)
        assert np.array_equal(attached.get_many(idx), owning.get_many(idx))

    @pytest.mark.parametrize("compressed", [False, True])
    def test_wavelet_matrix(self, rng, compressed):
        data = rng.integers(0, 11, size=600)
        owning = WaveletMatrix(data, compressed=compressed)
        attached, _ = _roundtrip(owning)
        for c in range(11):
            for i in range(0, 601, 13):
                assert attached.rank(c, i) == owning.rank(c, i)

    @pytest.mark.parametrize("compressed", [False, True])
    def test_huffman_wavelet(self, rng, compressed):
        data = rng.integers(0, 7, size=600)
        owning = HuffmanWaveletTree(data, compressed=compressed)
        attached, _ = _roundtrip(owning)
        for c in range(7):
            for i in range(0, 601, 13):
                assert attached.rank(c, i) == owning.rank(c, i)


class TestIndexFamilyDifferential:
    """All five index families survive the segment round trip."""

    @pytest.fixture(scope="class")
    def text(self):
        random.seed(41)
        return "".join(
            random.choice("abcd" if i % 97 else "xyz") for i in range(3_000)
        )

    @pytest.fixture(scope="class")
    def patterns(self, text):
        return [p for p in mixed_workload(text, per_length=6, seed=5)]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda t: CompactPrunedSuffixTree(t, l=16),
            lambda t: ApproxIndex(t, l=16),
            lambda t: ApproxIndexEF(t, l=16),
            lambda t: CombinedIndex(t, l=16),
            lambda t: FMIndex(t),
        ],
        ids=["cpst", "apx", "apx-ef", "combined", "fm"],
    )
    def test_estimator_roundtrip(self, factory, text, patterns):
        owning = factory(text)
        blob = write_estimator_segment(owning, "shard-0")
        segment = Segment.parse(blob)
        attached = segment.attach("index")
        assert segment.meta["kind"] == type(owning).__name__
        assert segment.meta["text_length"] == owning.text_length
        for pattern in patterns:
            assert attached.count(pattern) == owning.count(pattern), pattern
            assert attached.count_interval(pattern) == owning.count_interval(
                pattern
            ), pattern
            if hasattr(owning, "count_or_none"):
                assert attached.count_or_none(
                    pattern
                ) == owning.count_or_none(pattern), pattern

    def test_exact_attach_matches_naive(self, text):
        owning = FMIndex(text)
        attached, _ = _roundtrip(owning)
        for pattern in ["ab", "xyz", "dcba", "aaa"]:
            assert attached.count(pattern) == naive_count(text, pattern)


class TestSegmentFormat:
    def _sample_blob(self):
        writer = SegmentWriter("fmt", meta={"note": "format test"})
        writer.add("bv", BitVector(np.arange(300) % 3 == 0))
        writer.add("iv", IntVector.from_array(np.arange(123)))
        return writer.to_bytes()

    def test_offsets_are_aligned(self):
        blob = self._sample_blob()
        segment = Segment.parse(blob)
        for entry in segment.header["relocation"]:
            assert entry["offset"] % ALIGNMENT == 0
        assert segment._payload_start % ALIGNMENT == 0
        assert segment.nbytes <= len(blob)

    def test_views_are_read_only_and_zero_copy(self):
        blob = self._sample_blob()
        raw = np.frombuffer(blob, dtype=np.uint8)
        for arr in _segment_views(blob, "bv") + _segment_views(blob, "iv"):
            assert not arr.flags.writeable
            assert np.shares_memory(arr, raw)
            with pytest.raises((ValueError, RuntimeError)):
                arr[...] = 0

    def test_second_attach_shares_the_same_bytes(self):
        blob = self._sample_blob()
        segment = Segment.parse(blob)
        first = segment.attach("bv")
        second = segment.attach("bv")
        assert first is not second
        assert np.shares_memory(
            first._words, second._words  # noqa: SLF001 - the point of the test
        )

    def test_header_corruption_detected(self):
        blob = bytearray(self._sample_blob())
        blob[60] ^= 0xFF  # inside the header JSON
        with pytest.raises(IndexCorruptedError):
            Segment.parse(bytes(blob))

    def test_payload_corruption_detected(self):
        blob = bytearray(self._sample_blob())
        blob[-1] ^= 0x01
        with pytest.raises(IndexCorruptedError):
            Segment.parse(bytes(blob))

    def test_truncation_detected(self):
        blob = self._sample_blob()
        with pytest.raises(IndexCorruptedError):
            Segment.parse(blob[: len(blob) - 16])
        with pytest.raises(IndexCorruptedError):
            Segment.parse(blob[:40])

    def test_bad_magic_rejected(self):
        blob = b"NOTASEGM" + self._sample_blob()[8:]
        with pytest.raises(ReproError):
            Segment.parse(blob)

    def test_verify_false_skips_digests(self):
        blob = bytearray(self._sample_blob())
        blob[-1] ^= 0x01
        segment = Segment.parse(bytes(blob), verify=False)
        assert segment.keys == ["bv", "iv"]

    def test_duplicate_and_bad_keys_rejected(self):
        writer = SegmentWriter("bad")
        writer.add("ok", BitVector([1, 0, 1]))
        with pytest.raises(InvalidParameterError):
            writer.add("ok", BitVector([1]))
        with pytest.raises(InvalidParameterError):
            writer.add("dotted.key", BitVector([1]))
        with pytest.raises(InvalidParameterError):
            SegmentWriter("empty").to_bytes()

    def test_bundle_header_mismatch_rejected(self):
        bundle = StorageBundle(kind="BitVector")
        with pytest.raises(InvalidParameterError):
            attach_structure(
                StorageBundle(kind="NoSuchStructure", meta={}, arrays={})
            )
        assert bundle.kind == "BitVector"

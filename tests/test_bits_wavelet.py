"""Tests for the wavelet matrix and Huffman wavelet tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import HuffmanWaveletTree, WaveletMatrix, canonical_code, code_lengths
from repro.errors import InvalidParameterError

symbol_lists = st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=250)


def naive_rank(seq, c, i):
    return sum(1 for x in seq[:i] if x == c)


def naive_select(seq, c, k):
    seen = 0
    for pos, x in enumerate(seq):
        if x == c:
            seen += 1
            if seen == k:
                return pos
    return -1


@pytest.fixture(params=["matrix", "huffman"])
def make_structure(request):
    def build(data, sigma=None):
        if request.param == "matrix":
            return WaveletMatrix(np.asarray(data), sigma)
        return HuffmanWaveletTree(np.asarray(data), sigma)

    return build


class TestWaveletCommon:
    def test_access_roundtrip(self, make_structure, rng):
        data = rng.integers(0, 17, size=300)
        wt = make_structure(data)
        np.testing.assert_array_equal(wt.to_array(), data)

    def test_rank_matches_naive(self, make_structure, rng):
        data = rng.integers(0, 9, size=200).tolist()
        wt = make_structure(data)
        for c in range(10):
            for i in range(0, 201, 13):
                assert wt.rank(c, i) == naive_rank(data, c, i), (c, i)

    def test_select_matches_naive(self, make_structure, rng):
        data = rng.integers(0, 6, size=150).tolist()
        wt = make_structure(data)
        for c in range(7):
            total = naive_rank(data, c, len(data))
            for k in range(1, total + 1):
                assert wt.select(c, k) == naive_select(data, c, k)
            assert wt.select(c, total + 1) == -1

    def test_select_rank_inverse(self, make_structure, rng):
        data = rng.integers(0, 4, size=99).tolist()
        wt = make_structure(data)
        for c in set(data):
            for k in range(1, naive_rank(data, c, len(data)) + 1):
                pos = wt.select(c, k)
                assert wt.rank(c, pos) == k - 1
                assert wt.access(pos) == c

    def test_absent_symbol(self, make_structure):
        wt = make_structure([0, 1, 0, 1], sigma=8)
        assert wt.rank(5, 4) == 0
        assert wt.select(5, 1) == -1

    def test_single_symbol(self, make_structure):
        wt = make_structure([3] * 10, sigma=4)
        assert wt.rank(3, 10) == 10
        assert wt.select(3, 10) == 9
        assert wt.access(0) == 3

    def test_rank_out_of_range(self, make_structure):
        wt = make_structure([0, 1])
        with pytest.raises(IndexError):
            wt.rank(0, 3)

    def test_access_out_of_range(self, make_structure):
        wt = make_structure([0, 1])
        with pytest.raises(IndexError):
            wt.access(2)

    def test_space_accounting_positive(self, make_structure):
        wt = make_structure(list(range(8)) * 10)
        assert wt.size_in_bits() > 0
        assert wt.overhead_in_bits() >= 0


class TestWaveletMatrixSpecific:
    def test_empty(self):
        wm = WaveletMatrix(np.array([], dtype=np.int64), sigma=4)
        assert len(wm) == 0
        assert wm.rank(0, 0) == 0

    def test_sigma_validation(self):
        with pytest.raises(InvalidParameterError):
            WaveletMatrix(np.array([4]), sigma=4)

    def test_negative_symbol(self):
        with pytest.raises(InvalidParameterError):
            WaveletMatrix(np.array([-1]))


class TestHuffmanSpecific:
    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            HuffmanWaveletTree(np.array([], dtype=np.int64))

    def test_space_near_entropy(self, rng):
        # Heavily skewed distribution: Huffman payload far below log(sigma)*n.
        data = np.concatenate([np.zeros(900, dtype=np.int64), rng.integers(1, 16, 100)])
        rng.shuffle(data)
        hwt = HuffmanWaveletTree(data, sigma=16)
        wm = WaveletMatrix(data, sigma=16)
        assert hwt.size_in_bits() < 0.6 * wm.size_in_bits()


class TestHuffmanCodes:
    def test_lengths_satisfy_kraft(self):
        freqs = [10, 1, 1, 5, 0, 3]
        lengths = code_lengths(freqs)
        assert 4 not in lengths  # zero-frequency symbol has no code
        assert sum(2 ** -l for l in lengths.values()) == pytest.approx(1.0)

    def test_single_symbol_gets_one_bit(self):
        assert code_lengths([0, 7, 0]) == {1: 1}

    def test_no_symbols_rejected(self):
        with pytest.raises(InvalidParameterError):
            code_lengths([0, 0])

    def test_canonical_codes_prefix_free(self):
        freqs = [50, 20, 20, 5, 3, 1, 1]
        code = canonical_code(freqs)
        items = list(code.codes.items())
        for i, (sym_a, code_a) in enumerate(items):
            len_a = code.lengths[sym_a]
            for sym_b, code_b in items[i + 1 :]:
                len_b = code.lengths[sym_b]
                shorter, longer, ls, ll = (
                    (code_a, code_b, len_a, len_b)
                    if len_a <= len_b
                    else (code_b, code_a, len_b, len_a)
                )
                assert (longer >> (ll - ls)) != shorter, (sym_a, sym_b)

    def test_more_frequent_not_longer(self):
        freqs = [100, 1, 1, 1]
        lengths = code_lengths(freqs)
        assert lengths[0] <= min(lengths[1], lengths[2], lengths[3])

    def test_encoded_length(self):
        freqs = [3, 1]
        code = canonical_code(freqs)
        assert code.encoded_length(freqs) == 3 * code.lengths[0] + 1 * code.lengths[1]


@settings(max_examples=50, deadline=None)
@given(symbol_lists)
def test_property_wavelet_matrix_rank_access(data):
    wm = WaveletMatrix(np.asarray(data))
    assert wm.to_array().tolist() == data
    for c in set(data):
        assert wm.rank(c, len(data)) == data.count(c)


@settings(max_examples=50, deadline=None)
@given(symbol_lists)
def test_property_huffman_tree_rank_access(data):
    hwt = HuffmanWaveletTree(np.asarray(data))
    assert hwt.to_array().tolist() == data
    for c in set(data):
        assert hwt.rank(c, len(data)) == data.count(c)
        assert hwt.select(c, data.count(c)) == max(
            i for i, x in enumerate(data) if x == c
        )

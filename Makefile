# Convenience targets mirroring the development loop.

PYTHON ?= python

.PHONY: install test bench examples experiments report clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

experiments:
	$(PYTHON) -m repro.experiments all --size 50000

report:
	$(PYTHON) -m repro report --size 50000 -o reproduction_report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis \
		benchmarks/results reproduction_report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
